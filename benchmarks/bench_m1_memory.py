"""EXP-M1 / ABL-4 — the §Intro memory claim.

"About 48K bytes of memory are available … Even though the APT for the
LINGUIST-86 attribute grammar is more than 42K bytes long, everything
fits because at any one time most of the APT is stored in temporary
disk files."

Reproduced shape: for growing inputs, the file-paradigm evaluator's
**peak resident** node bytes stay roughly proportional to tree *depth*
(the root-to-node stack), while the total APT grows linearly with input
size — so peak/total falls.  ABL-4 contrasts the in-memory oracle,
whose residency is the whole tree.
"""

import pytest

from repro.core import Linguist
from repro.grammars import load_source
from repro.grammars.scanners import binary_scanner_spec
from repro.evalgen.oracle import OracleEvaluator
from repro.workloads import generate_binary_numeral


@pytest.fixture(scope="module")
def translator(linguist_binary):
    return linguist_binary.make_translator(binary_scanner_spec())


def measure(linguist_binary, translator, n_bits: int):
    from repro.apt.build import APTBuilder
    from repro.apt.storage import MemorySpool

    numeral = generate_binary_numeral(n_bits=n_bits)
    # Total APT size: attribute the fully built tree.
    spool = MemorySpool(channel="x")
    builder = APTBuilder(linguist_binary.ag, spool, build_tree=True)
    translator.parser.parse(
        translator.scanner.tokens(numeral), listener=builder, build_tree=False
    )
    builder.finish()
    oracle = OracleEvaluator(linguist_binary.ag, translator.library)
    oracle.evaluate(builder.root)
    total = oracle.total_tree_bytes
    # Peak residency of the file paradigm, read from the run's unified
    # telemetry registry (the same "mem.peak_bytes" the profile CLI shows).
    translator.translate(numeral)
    peak = translator.last_driver.metrics.snapshot()["mem.peak_bytes"]
    return total, peak


def test_m1_memory_table(linguist_binary, translator, report):
    rows = []
    for n_bits in (16, 64, 256, 1024):
        total, peak = measure(linguist_binary, translator, n_bits)
        rows.append((n_bits, total, peak))
    lines = [
        "EXP-M1: whole-APT size vs peak resident bytes (binary numerals)",
        "paper: APT > 42K bytes evaluated inside a 48K dynamic-memory "
        "budget (most of the APT on disk)",
        f"{'input bits':>10} {'total APT B':>12} {'peak resident B':>16} "
        f"{'resident share':>15}",
    ]
    for n_bits, total, peak in rows:
        lines.append(
            f"{n_bits:>10} {total:>12} {peak:>16} {100 * peak / total:>14.1f}%"
        )
    report("m1_memory", "\n".join(lines))

    # Shape: residency share falls as input grows... for this grammar the
    # tree is a left spine, so residency tracks depth; the share must at
    # least never reach the whole tree and must shrink markedly overall.
    first_share = rows[0][2] / rows[0][1]
    last_share = rows[-1][2] / rows[-1][1]
    assert last_share < 1.0
    assert last_share <= first_share


def test_m1_oracle_keeps_whole_tree(linguist_binary, translator):
    """ABL-4: the in-memory baseline's working set IS the whole APT."""
    total, peak = measure(linguist_binary, translator, 256)
    # The file paradigm's peak is below the whole-tree footprint.
    assert peak < total


def test_m1_balanced_trees_log_residency(pascal_translator, report, metrics_snapshot):
    """On the Pascal grammar (statement lists), residency grows with
    nesting depth, not with statement count."""
    from repro.workloads import generate_pascal_program

    shallow = generate_pascal_program(n_statements=40, seed=3)
    long_ = generate_pascal_program(n_statements=400, seed=3)
    pascal_translator.translate(shallow)
    snap = metrics_snapshot(pascal_translator)
    peak_shallow = snap["mem.peak_bytes"]
    io_shallow = snap["io.bytes_written"]
    pascal_translator.translate(long_)
    snap = metrics_snapshot(pascal_translator)
    peak_long = snap["mem.peak_bytes"]
    io_long = snap["io.bytes_written"]
    text = (
        "EXP-M1b: statement-list scaling (Pascal)\n"
        f"  40 statements:  peak {peak_shallow:>8} B, file traffic {io_shallow:>9} B\n"
        f"  400 statements: peak {peak_long:>8} B, file traffic {io_long:>9} B\n"
        f"  peak growth {peak_long / peak_shallow:.1f}x vs "
        f"traffic growth {io_long / io_shallow:.1f}x"
    )
    report("m1b_scaling", text)
    # File traffic grows ~10x with input; peak residency grows much less
    # per unit of traffic... for a left-recursive statement list the
    # spine deepens linearly too, so just require peak << traffic.
    assert peak_long < io_long / 2


def test_m1_benchmark(benchmark, translator):
    numeral = generate_binary_numeral(n_bits=128)
    benchmark(lambda: translator.translate(numeral))
