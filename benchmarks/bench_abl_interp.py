"""ABL-3 — generated in-line code vs the interpretive evaluator.

§II: "Although Schulz describes an interpretive approach that uses a
single intermediate file, LINGUIST-86 generates in-line code to read
and write APT nodes and to evaluate semantic functions."  The design
choice to measure: how much does generating code (vs interpreting the
plans) buy, given that evaluation is largely I/O?
"""

import time

import pytest

from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec
from repro.workloads import generate_pascal_program


@pytest.fixture(scope="module")
def translators(linguist_pascal):
    lib = library_for("pascal")
    spec = pascal_scanner_spec()
    return {
        "generated": linguist_pascal.make_translator(spec, library=lib,
                                                     backend="generated"),
        "interp": linguist_pascal.make_translator(spec, library=lib,
                                                  backend="interp"),
    }


def test_abl3_backends_agree(translators):
    program = generate_pascal_program(n_statements=60, seed=29)
    r1 = translators["generated"].translate(program)
    r2 = translators["interp"].translate(program)
    assert list(r1["CODE"]) == list(r2["CODE"])
    assert list(r1["MSGS"]) == list(r2["MSGS"])


def test_abl3_speed_comparison(translators, report):
    program = generate_pascal_program(n_statements=200, seed=37)

    def best_of(fn, n=3):
        best = float("inf")
        for _ in range(n):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    for t in translators.values():
        t.translate(program)  # warm
    gen_s = best_of(lambda: translators["generated"].translate(program))
    int_s = best_of(lambda: translators["interp"].translate(program))
    text = (
        "ABL-3: generated in-line code vs interpretive evaluator "
        "(200-statement Pascal program)\n"
        f"  generated: {gen_s * 1000:8.1f} ms\n"
        f"  interpretive: {int_s * 1000:6.1f} ms\n"
        f"  interp/generated ratio: {int_s / gen_s:.2f}x"
    )
    report("abl3_interp", text)
    # Generated code should not be slower by any meaningful margin.
    assert gen_s < int_s * 1.5


def test_abl3_generated_benchmark(benchmark, translators):
    program = generate_pascal_program(n_statements=60, seed=41)
    benchmark(lambda: translators["generated"].translate(program))


def test_abl3_interp_benchmark(benchmark, translators):
    program = generate_pascal_program(n_statements=60, seed=41)
    benchmark(lambda: translators["interp"].translate(program))
