"""CI benchmark regression gate.

Measures the calc-workload translation throughput (the cheap,
per-input half of the paper's §V economics) and the cold-vs-warm build
cost (the expensive, once-per-grammar half, which ``repro.buildcache``
amortizes), then compares throughput against the committed baseline in
``benchmarks/results/baseline_t4.json``:

* **throughput gate** — fail when measured lines/min drops more than
  ``THRESHOLD`` (25%) below the baseline;
* **cache smoke** — fail unless a warm (cache-rehydrated) ``Linguist``
  construction is measurably faster than a cold build (< half the
  cold time; in practice it is ~20x faster, so this margin absorbs CI
  noise).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update-baseline

Refresh the baseline (on the reference machine) whenever a deliberate
performance change lands, and commit the JSON diff alongside it.
Exit status: 0 pass, 1 regression/smoke failure, 2 missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "baseline_t4.json"
)

#: Maximum tolerated throughput drop relative to the committed baseline.
THRESHOLD = 0.25

#: The warm build must cost less than this fraction of the cold build.
WARM_FRACTION = 0.5


def measure_calc_throughput(rounds: int = 5, n_statements: int = 200) -> dict:
    """Best-of-``rounds`` translation throughput over a generated calc
    program (lines per minute, generated backend, warm translator)."""
    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.workloads import generate_calc_program

    spec, library = scanner_and_library("calc")
    translator = Linguist(load_source("calc")).make_translator(
        spec, library=library
    )
    program = generate_calc_program(n_statements, seed=17)
    n_lines = len(program.splitlines())
    translator.translate(program)  # warm the path once
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        translator.translate(program)
        best = min(best, time.perf_counter() - start)
    return {
        "n_lines": n_lines,
        "rounds": rounds,
        "best_seconds": best,
        "lines_per_minute": n_lines / best * 60.0,
    }


def measure_cold_vs_warm(rounds: int = 3) -> dict:
    """Once-per-grammar build cost, cold (full pipeline + seal) vs warm
    (cache rehydration), best-of-``rounds`` each."""
    from repro.buildcache import BuildCache
    from repro.core import Linguist
    from repro.grammars import load_source

    source = load_source("calc")
    cold_best = warm_best = float("inf")
    with tempfile.TemporaryDirectory() as root:
        for _ in range(rounds):
            cache = BuildCache(root)
            cache.clear()
            start = time.perf_counter()
            Linguist(source, cache=cache)
            cold_best = min(cold_best, time.perf_counter() - start)
            # cache is now sealed: time the warm rebuild
            start = time.perf_counter()
            warm = Linguist(source, cache=BuildCache(root))
            warm_best = min(warm_best, time.perf_counter() - start)
            assert warm.from_cache, "warm rebuild missed the cache"
    return {
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "speedup": cold_best / warm_best if warm_best > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"rewrite {BASELINE_PATH} from this run's measurements",
    )
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    throughput = measure_calc_throughput(rounds=args.rounds)
    cache = measure_cold_vs_warm()

    lpm = throughput["lines_per_minute"]
    print(
        f"calc throughput: {lpm:,.0f} lines/min "
        f"({throughput['n_lines']} lines, best of {throughput['rounds']})"
    )
    print(
        f"build cost: cold {cache['cold_seconds'] * 1000:.1f} ms, "
        f"warm {cache['warm_seconds'] * 1000:.1f} ms "
        f"({cache['speedup']:.1f}x speedup from the artifact cache)"
    )

    if args.update_baseline:
        baseline = {
            "benchmark": "calc-workload throughput (EXP-T4 family)",
            "lines_per_minute": lpm,
            "threshold": THRESHOLD,
            "machine": platform.platform(),
            "python": platform.python_version(),
            "cold_seconds": cache["cold_seconds"],
            "warm_seconds": cache["warm_seconds"],
        }
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(
            f"error: no baseline at {BASELINE_PATH}; run with "
            "--update-baseline on the reference machine and commit it",
            file=sys.stderr,
        )
        return 2
    with open(BASELINE_PATH, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    floor = baseline["lines_per_minute"] * (1.0 - THRESHOLD)

    ok = True
    if lpm < floor:
        drop = 100.0 * (1.0 - lpm / baseline["lines_per_minute"])
        print(
            f"FAIL throughput regression: {lpm:,.0f} lines/min is "
            f"{drop:.0f}% below baseline "
            f"{baseline['lines_per_minute']:,.0f} "
            f"(tolerated: {100 * THRESHOLD:.0f}%)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"PASS throughput: {lpm:,.0f} >= floor {floor:,.0f} lines/min "
            f"(baseline {baseline['lines_per_minute']:,.0f} - "
            f"{100 * THRESHOLD:.0f}%)"
        )

    warm_limit = cache["cold_seconds"] * WARM_FRACTION
    if cache["warm_seconds"] >= warm_limit:
        print(
            f"FAIL cache smoke: warm build {cache['warm_seconds'] * 1000:.1f} ms "
            f"is not measurably faster than cold "
            f"{cache['cold_seconds'] * 1000:.1f} ms "
            f"(must be < {100 * WARM_FRACTION:.0f}%)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"PASS cache smoke: warm {cache['warm_seconds'] * 1000:.1f} ms < "
            f"{100 * WARM_FRACTION:.0f}% of cold "
            f"{cache['cold_seconds'] * 1000:.1f} ms"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
