"""CI benchmark regression gate.

Measures the calc-workload translation throughput (the cheap,
per-input half of the paper's §V economics) and the cold-vs-warm build
cost (the expensive, once-per-grammar half, which ``repro.buildcache``
amortizes), then compares throughput against the committed baseline in
``benchmarks/results/baseline_t4.json``:

* **throughput gate** — fail when measured lines/min drops more than
  ``THRESHOLD`` (25%) below the baseline;
* **cache smoke** — fail unless a warm (cache-rehydrated) ``Linguist``
  construction is measurably faster than a cold build (< half the
  cold time; in practice it is ~20x faster, so this margin absorbs CI
  noise);
* **codec gate** — fail when the on-disk bytes/record of a sealed v3
  spool grows more than ``THRESHOLD`` above the baseline (the APT
  encoding is the constant that multiplies through every pass's I/O);
* **fusion gate** — fail when the calc grammar's scheduled pass count
  exceeds the baseline (a fusion regression silently doubles the
  streaming work per translation);
* **provenance gate** — fail when translation throughput with
  provenance recording *disabled* drops more than
  ``PROVENANCE_THRESHOLD`` (3%) below the baseline: the recorder is
  opt-in, and the ``rec is None`` checks threaded through the
  evaluators must stay free when nobody opted in;
* **serve gate** — fail when the serve daemon's sustained requests/s
  (in-process, supervised workers — see ``docs/serving.md`` and
  ``bench_t8_serve.py``) drops more than ``THRESHOLD`` below the
  baseline;
* **incremental gate** — fail when the memo-spliced single-token-edit
  re-translation speedup (see ``bench_t10_incremental.py`` and
  docs/performance.md) drops more than ``THRESHOLD`` below the
  baseline, or when the spliced-record hit rate falls below
  ``INCREMENTAL_HIT_FLOOR`` (the hit rate is deterministic for a
  given grammar + edit, so a drop means the memo keying broke, not
  noise); the memo-disabled no-tax promise rides the existing 3%
  provenance disabled-mode gate, which times the same ``translate``
  path with both opt-in features off;
* **batch-scaling gate** — fail when parallel batch efficiency
  (speedup/jobs at ``-j 4`` over the shared-memory artifact plane —
  see ``bench_t9_batch_scaling.py`` and docs/performance.md) drops
  below ``SCALING_FLOOR`` (skipped on hosts with fewer than 4 CPUs,
  which cannot express parallel speedup), when the warm per-worker
  plane attach grows more than ``ATTACH_HEADROOM`` above the baseline,
  or when a plane-attached worker does *any* build-cache work (the
  zero-rehydration invariant, enforced on every host).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update-baseline

Refresh the baseline (on the reference machine) whenever a deliberate
performance change lands, and commit the JSON diff alongside it.
Exit status: 0 pass, 1 regression/smoke failure, 2 missing baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "baseline_t4.json"
)

#: Maximum tolerated throughput drop relative to the committed baseline.
THRESHOLD = 0.25

#: The warm build must cost less than this fraction of the cold build.
WARM_FRACTION = 0.5

#: Maximum tolerated throughput drop with provenance recording DISABLED
#: (the feature's pay-for-use promise — see bench_t7_provenance.py).
PROVENANCE_THRESHOLD = 0.03

#: Minimum parallel batch efficiency (speedup / jobs) at -j 4, enforced
#: only on hosts with >= 4 CPUs.
SCALING_FLOOR = 0.75

#: Tolerated growth of the warm per-worker plane attach over baseline
#: (a millisecond-scale operation, so the headroom is generous).
ATTACH_HEADROOM = 1.0

#: Minimum fraction of output records a single-token-edit re-run must
#: splice from the memo (deterministic, so the floor is tight).
INCREMENTAL_HIT_FLOOR = 0.90


def measure_calc_throughput(rounds: int = 5, n_statements: int = 200) -> dict:
    """Best-of-``rounds`` translation throughput over a generated calc
    program (lines per minute, generated backend, warm translator)."""
    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.workloads import generate_calc_program

    spec, library = scanner_and_library("calc")
    translator = Linguist(load_source("calc")).make_translator(
        spec, library=library
    )
    program = generate_calc_program(n_statements, seed=17)
    n_lines = len(program.splitlines())
    translator.translate(program)  # warm the path once
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        translator.translate(program)
        best = min(best, time.perf_counter() - start)
    return {
        "n_lines": n_lines,
        "rounds": rounds,
        "best_seconds": best,
        "lines_per_minute": n_lines / best * 60.0,
    }


def measure_cold_vs_warm(rounds: int = 3) -> dict:
    """Once-per-grammar build cost, cold (full pipeline + seal) vs warm
    (cache rehydration), best-of-``rounds`` each."""
    from repro.buildcache import BuildCache
    from repro.core import Linguist
    from repro.grammars import load_source

    source = load_source("calc")
    cold_best = warm_best = float("inf")
    with tempfile.TemporaryDirectory() as root:
        for _ in range(rounds):
            cache = BuildCache(root)
            cache.clear()
            start = time.perf_counter()
            Linguist(source, cache=cache)
            cold_best = min(cold_best, time.perf_counter() - start)
            # cache is now sealed: time the warm rebuild
            start = time.perf_counter()
            warm = Linguist(source, cache=BuildCache(root))
            warm_best = min(warm_best, time.perf_counter() - start)
            assert warm.from_cache, "warm rebuild missed the cache"
    return {
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "speedup": cold_best / warm_best if warm_best > 0 else float("inf"),
    }


def measure_spool_codec(n_statements: int = 200) -> dict:
    """On-disk bytes/record of the sealed v3 spool format versus the v2
    pickle-per-record framing, over a real calc initial-APT stream, and
    the fused pass count the scheduler produced for calc."""
    from repro.apt.build import APTBuilder
    from repro.apt.storage import (
        FORMAT_V2,
        FORMAT_V3,
        DiskSpool,
        MemorySpool,
    )
    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.workloads import generate_calc_program

    spec, library = scanner_and_library("calc")
    linguist = Linguist(load_source("calc"))
    translator = linguist.make_translator(spec, library=library)
    program = generate_calc_program(n_statements, seed=17)
    tokens = list(translator.scanner.tokens(program))
    mem = MemorySpool(channel="initial")
    builder = APTBuilder(linguist.ag, mem, build_tree=False)
    translator.parser.parse(tokens, listener=builder, build_tree=False)
    builder.finish()
    records = list(mem.read_forward())

    sizes = {}
    with tempfile.TemporaryDirectory() as root:
        for name, fmt in (("v2", FORMAT_V2), ("v3", FORMAT_V3)):
            path = os.path.join(root, f"{name}.spool")
            spool = DiskSpool(path, format_version=fmt)
            for record in records:
                spool.append(record)
            spool.finalize()
            sizes[name] = os.path.getsize(path)
    n = len(records)
    return {
        "n_records": n,
        "v2_bytes_per_record": sizes["v2"] / n,
        "v3_bytes_per_record": sizes["v3"] / n,
        "shrink": sizes["v2"] / sizes["v3"],
        "calc_n_passes": linguist.n_passes,
    }


def measure_provenance_overhead(
    rounds: int = 5, n_statements: int = 200
) -> dict:
    """Throughput with provenance recording disabled vs enabled, on the
    same warm translator and workload as :func:`measure_calc_throughput`
    (the disabled number is what the 3% gate compares)."""
    import shutil

    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.workloads import generate_calc_program

    spec, library = scanner_and_library("calc")
    translator = Linguist(load_source("calc")).make_translator(
        spec, library=library
    )
    program = generate_calc_program(n_statements, seed=17)
    n_lines = len(program.splitlines())
    translator.translate(program)  # warm
    off_best = on_best = float("inf")
    with tempfile.TemporaryDirectory() as root:
        record_dir = os.path.join(root, "rec")
        for _ in range(rounds):
            start = time.perf_counter()
            translator.translate(program)
            off_best = min(off_best, time.perf_counter() - start)
            if os.path.exists(record_dir):
                shutil.rmtree(record_dir)
            start = time.perf_counter()
            translator.translate(program, record=record_dir)
            on_best = min(on_best, time.perf_counter() - start)
    return {
        "off_lines_per_minute": n_lines / off_best * 60.0,
        "on_lines_per_minute": n_lines / on_best * 60.0,
        "record_slowdown": on_best / off_best,
    }


def measure_serve(n_requests: int = 60, workers: int = 2) -> dict:
    """Serve-daemon latency and sustained throughput vs ``run_batch``
    over the same inputs (in-process server, HTTP layer excluded so the
    gate measures the service, not the socket stack)."""
    import asyncio
    import statistics

    from repro.batch import WorkerSpec, build_batch_translator
    from repro.grammars import load_source, source_path
    from repro.serve.daemon import ServeConfig, TranslationServer
    from repro.workloads import generate_calc_program

    texts = [
        generate_calc_program(5, seed=900 + i) for i in range(n_requests)
    ]
    with tempfile.TemporaryDirectory() as root:
        spec = WorkerSpec(
            source=load_source("calc"),
            filename=source_path("calc"),
            grammar_name="calc",
            direction="r2l",
            cache_dir=os.path.join(root, "cache"),
        )
        translator = build_batch_translator(spec)
        start = time.perf_counter()
        report = translator.translate_many(texts, jobs=workers)
        batch_seconds = time.perf_counter() - start
        assert report.ok, "batch reference run failed"

        async def drive():
            server = TranslationServer(
                {"calc": spec},
                ServeConfig(
                    workers=workers,
                    queue_depth=n_requests,  # gate measures service time
                ),
            )
            await server.start()
            try:
                await server.submit("calc", texts[0])  # warm
                latencies = []
                for text in texts:  # closed loop: per-request latency
                    t0 = time.perf_counter()
                    result = await server.submit("calc", text)
                    assert result.ok
                    latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()  # open loop: sustained RPS
                await asyncio.gather(
                    *[server.submit("calc", text) for text in texts]
                )
                concurrent_seconds = time.perf_counter() - t0
            finally:
                server.request_shutdown()
                await server.drain()
            return latencies, concurrent_seconds

        latencies, concurrent_seconds = asyncio.run(drive())
    latencies.sort()
    return {
        "n_requests": n_requests,
        "workers": workers,
        "p50_ms": statistics.median(latencies) * 1000.0,
        "p99_ms": latencies[
            min(len(latencies) - 1, int(len(latencies) * 0.99))
        ] * 1000.0,
        "serve_rps": n_requests / concurrent_seconds,
        "batch_rps": n_requests / batch_seconds,
    }


def measure_batch_scaling(
    n_inputs: int = 24, n_statements: int = 40, attach_rounds: int = 7
) -> dict:
    """Parallel batch fan-out over the shared-memory artifact plane
    (see bench_t9_batch_scaling.py for the full experiment): -j 1 vs
    -j 4 wall time, warm per-worker attach cost, and the
    zero-rehydration invariant of a plane-attached worker."""
    import dataclasses

    from repro.batch import (
        WorkerSpec,
        build_batch_translator,
        build_worker_translator,
    )
    from repro.buildcache.shm import attach_translator, export_translator_plane
    from repro.obs import MetricsRegistry
    from repro.workloads import generate_calc_program

    texts = [
        generate_calc_program(n_statements, seed=950 + i)
        for i in range(n_inputs)
    ]
    with tempfile.TemporaryDirectory() as root:
        spec = WorkerSpec(
            source=open("src/repro/grammars/calc.ag").read(),
            filename="src/repro/grammars/calc.ag",
            grammar_name="calc",
            direction="r2l",
            cache_dir=os.path.join(root, "cache"),
        )
        translator = build_batch_translator(spec)
        translator.translate_many(texts[:2], jobs=1)  # warm
        start = time.perf_counter()
        seq = translator.translate_many(texts, jobs=1)
        seq_seconds = time.perf_counter() - start
        start = time.perf_counter()
        par = translator.translate_many(texts, jobs=4)
        par_seconds = time.perf_counter() - start
        assert seq.ok and par.ok, "batch scaling reference run failed"

        plane = export_translator_plane(translator)
        try:
            plane_spec = dataclasses.replace(spec, shm_plane=plane.name)
            attach_translator(plane_spec)  # warm both hydration paths
            build_worker_translator(spec)
            attach_best = rehydrate_best = float("inf")
            for _ in range(attach_rounds):
                t0 = time.perf_counter()
                attach_translator(plane_spec)
                attach_best = min(attach_best, time.perf_counter() - t0)
                t0 = time.perf_counter()
                build_worker_translator(spec)
                rehydrate_best = min(
                    rehydrate_best, time.perf_counter() - t0
                )
            metrics = MetricsRegistry()
            build_worker_translator(plane_spec, metrics=metrics)
            snapshot = metrics.snapshot()
            cache_counters = sorted(
                k for k in snapshot if k.startswith("cache.")
            )
            attach_count = snapshot.get("batch.shm.attach", 0)
        finally:
            plane.unlink()
    speedup = seq_seconds / par_seconds
    return {
        "n_inputs": n_inputs,
        "seq_seconds": seq_seconds,
        "par_seconds": par_seconds,
        "speedup": speedup,
        "efficiency": speedup / 4,
        "attach_ms": attach_best * 1000.0,
        "rehydrate_ms": rehydrate_best * 1000.0,
        "attach_count": attach_count,
        "cache_counters": cache_counters,
    }


def measure_incremental(rounds: int = 3, n_statements: int = 200) -> dict:
    """Memo-spliced single-token-edit re-translation speedup and hit
    rate (the bench_t10_incremental.py experiment, condensed): each
    round warms a fresh memo from the base program, then times the
    edited re-translation against the from-scratch reference."""
    import re

    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.obs import MetricsRegistry
    from repro.workloads import generate_calc_program

    spec, library = scanner_and_library("calc")
    translator = Linguist(load_source("calc")).make_translator(
        spec, library=library
    )
    program = generate_calc_program(n_statements, seed=17)
    lines = program.split(" ;\n")
    edited_last, n = re.subn(
        r"\d+", lambda m: str(int(m.group()) + 1), lines[-1], count=1
    )
    assert n == 1, "no literal to edit in the last calc statement"
    edited = " ;\n".join(lines[:-1] + [edited_last])
    translator.translate(program)  # warm
    cold_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        translator.translate(edited)
        cold_best = min(cold_best, time.perf_counter() - start)
    inc_best = float("inf")
    with tempfile.TemporaryDirectory() as root:
        for r in range(rounds):
            memo = os.path.join(root, f"memo{r}")
            translator.translate(program, memo_dir=memo)
            start = time.perf_counter()
            translator.translate(edited, memo_dir=memo)
            inc_best = min(inc_best, time.perf_counter() - start)
        # Hit rate: spliced records on the edit over the full stream
        # length (a pure re-run splices every record).
        memo = os.path.join(root, "memo-count")
        translator.translate(program, memo_dir=memo)
        full = MetricsRegistry()
        translator.translate(program, memo_dir=memo, metrics=full)
        total = full.counter("incremental.spliced_records").value
        translator.translate(program, memo_dir=memo)  # re-warm
        metrics = MetricsRegistry()
        translator.translate(edited, memo_dir=memo, metrics=metrics)
        spliced = metrics.counter("incremental.spliced_records").value
    return {
        "cold_seconds": cold_best,
        "spliced_seconds": inc_best,
        "speedup": cold_best / inc_best if inc_best > 0 else float("inf"),
        "hit_rate": spliced / total if total else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"rewrite {BASELINE_PATH} from this run's measurements",
    )
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args(argv)

    throughput = measure_calc_throughput(rounds=args.rounds)
    cache = measure_cold_vs_warm()
    codec = measure_spool_codec()
    provenance = measure_provenance_overhead(rounds=args.rounds)
    serve = measure_serve()
    scaling = measure_batch_scaling()
    incremental = measure_incremental()

    lpm = throughput["lines_per_minute"]
    print(
        f"calc throughput: {lpm:,.0f} lines/min "
        f"({throughput['n_lines']} lines, best of {throughput['rounds']})"
    )
    print(
        f"build cost: cold {cache['cold_seconds'] * 1000:.1f} ms, "
        f"warm {cache['warm_seconds'] * 1000:.1f} ms "
        f"({cache['speedup']:.1f}x speedup from the artifact cache)"
    )
    print(
        f"spool codec: v3 {codec['v3_bytes_per_record']:.1f} bytes/record "
        f"vs v2 {codec['v2_bytes_per_record']:.1f} "
        f"({codec['shrink']:.2f}x shrink, {codec['n_records']} records); "
        f"calc schedules {codec['calc_n_passes']} fused pass(es)"
    )
    print(
        f"provenance: {provenance['off_lines_per_minute']:,.0f} lines/min "
        f"disabled, {provenance['on_lines_per_minute']:,.0f} recording "
        f"({provenance['record_slowdown']:.1f}x slowdown when opted in)"
    )
    print(
        f"serve: p50 {serve['p50_ms']:.1f} ms, p99 {serve['p99_ms']:.1f} ms, "
        f"{serve['serve_rps']:,.0f} req/s sustained "
        f"({serve['workers']} workers; batch over the same inputs: "
        f"{serve['batch_rps']:,.0f} req/s)"
    )
    print(
        f"batch scaling: -j 1 {scaling['seq_seconds']:.2f} s, "
        f"-j 4 {scaling['par_seconds']:.2f} s "
        f"({scaling['speedup']:.2f}x, efficiency "
        f"{scaling['efficiency']:.2f}); warm worker attach "
        f"{scaling['attach_ms']:.2f} ms (cache rehydration "
        f"{scaling['rehydrate_ms']:.2f} ms)"
    )
    print(
        f"incremental: from-scratch {incremental['cold_seconds'] * 1000:.1f}"
        f" ms, memo-spliced edit {incremental['spliced_seconds'] * 1000:.1f}"
        f" ms ({incremental['speedup']:.2f}x speedup, hit rate "
        f"{incremental['hit_rate']:.1%})"
    )

    if args.update_baseline:
        baseline = {
            "benchmark": "calc-workload throughput (EXP-T4 family)",
            "lines_per_minute": lpm,
            "threshold": THRESHOLD,
            "machine": platform.platform(),
            "python": platform.python_version(),
            "cold_seconds": cache["cold_seconds"],
            "warm_seconds": cache["warm_seconds"],
            "spool_v3_bytes_per_record": codec["v3_bytes_per_record"],
            "spool_v2_over_v3_shrink": codec["shrink"],
            "calc_n_passes": codec["calc_n_passes"],
            "provenance_off_lines_per_minute": provenance[
                "off_lines_per_minute"
            ],
            "provenance_threshold": PROVENANCE_THRESHOLD,
            "serve_rps": serve["serve_rps"],
            "serve_p99_ms": serve["p99_ms"],
            "batch_scaling_floor": SCALING_FLOOR,
            "batch_attach_ms": scaling["attach_ms"],
            "incremental_speedup": incremental["speedup"],
            "incremental_hit_rate": incremental["hit_rate"],
        }
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(
            f"error: no baseline at {BASELINE_PATH}; run with "
            "--update-baseline on the reference machine and commit it",
            file=sys.stderr,
        )
        return 2
    with open(BASELINE_PATH, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    floor = baseline["lines_per_minute"] * (1.0 - THRESHOLD)

    ok = True
    if lpm < floor:
        drop = 100.0 * (1.0 - lpm / baseline["lines_per_minute"])
        print(
            f"FAIL throughput regression: {lpm:,.0f} lines/min is "
            f"{drop:.0f}% below baseline "
            f"{baseline['lines_per_minute']:,.0f} "
            f"(tolerated: {100 * THRESHOLD:.0f}%)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"PASS throughput: {lpm:,.0f} >= floor {floor:,.0f} lines/min "
            f"(baseline {baseline['lines_per_minute']:,.0f} - "
            f"{100 * THRESHOLD:.0f}%)"
        )

    warm_limit = cache["cold_seconds"] * WARM_FRACTION
    if cache["warm_seconds"] >= warm_limit:
        print(
            f"FAIL cache smoke: warm build {cache['warm_seconds'] * 1000:.1f} ms "
            f"is not measurably faster than cold "
            f"{cache['cold_seconds'] * 1000:.1f} ms "
            f"(must be < {100 * WARM_FRACTION:.0f}%)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"PASS cache smoke: warm {cache['warm_seconds'] * 1000:.1f} ms < "
            f"{100 * WARM_FRACTION:.0f}% of cold "
            f"{cache['cold_seconds'] * 1000:.1f} ms"
        )

    base_bpr = baseline.get("spool_v3_bytes_per_record")
    if base_bpr is not None:
        ceiling = base_bpr * (1.0 + THRESHOLD)
        if codec["v3_bytes_per_record"] > ceiling:
            print(
                f"FAIL codec bloat: v3 spool now "
                f"{codec['v3_bytes_per_record']:.1f} bytes/record, more than "
                f"{100 * THRESHOLD:.0f}% above baseline {base_bpr:.1f}",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS codec: {codec['v3_bytes_per_record']:.1f} <= ceiling "
                f"{ceiling:.1f} bytes/record (baseline {base_bpr:.1f} + "
                f"{100 * THRESHOLD:.0f}%)"
            )

    base_passes = baseline.get("calc_n_passes")
    if base_passes is not None:
        if codec["calc_n_passes"] > base_passes:
            print(
                f"FAIL fusion regression: calc schedules "
                f"{codec['calc_n_passes']} passes, baseline fused it to "
                f"{base_passes}",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS fusion: calc schedules {codec['calc_n_passes']} "
                f"pass(es) (baseline {base_passes})"
            )

    base_off = baseline.get("provenance_off_lines_per_minute")
    if base_off is not None:
        off_lpm = provenance["off_lines_per_minute"]
        off_floor = base_off * (1.0 - PROVENANCE_THRESHOLD)
        if off_lpm < off_floor:
            tax = 100.0 * (1.0 - off_lpm / base_off)
            print(
                f"FAIL provenance disabled-mode tax: {off_lpm:,.0f} "
                f"lines/min with recording off is {tax:.1f}% below "
                f"baseline {base_off:,.0f} "
                f"(tolerated: {100 * PROVENANCE_THRESHOLD:.0f}%)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS provenance: {off_lpm:,.0f} >= floor "
                f"{off_floor:,.0f} lines/min with recording disabled "
                f"(baseline {base_off:,.0f} - "
                f"{100 * PROVENANCE_THRESHOLD:.0f}%)"
            )

    base_rps = baseline.get("serve_rps")
    if base_rps is not None:
        rps_floor = base_rps * (1.0 - THRESHOLD)
        if serve["serve_rps"] < rps_floor:
            drop = 100.0 * (1.0 - serve["serve_rps"] / base_rps)
            print(
                f"FAIL serve regression: {serve['serve_rps']:,.0f} req/s "
                f"sustained is {drop:.0f}% below baseline "
                f"{base_rps:,.0f} (tolerated: {100 * THRESHOLD:.0f}%)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS serve: {serve['serve_rps']:,.0f} >= floor "
                f"{rps_floor:,.0f} req/s sustained "
                f"(baseline {base_rps:,.0f} - {100 * THRESHOLD:.0f}%; "
                f"p99 {serve['p99_ms']:.1f} ms)"
            )

    # Batch-scaling gates (bench_t9_batch_scaling.py): the
    # zero-rehydration invariant always holds; the efficiency floor
    # needs real cores; the attach bound needs a committed baseline.
    if scaling["attach_count"] != 1 or scaling["cache_counters"]:
        print(
            f"FAIL zero-rehydration: plane-attached worker counted "
            f"batch.shm.attach={scaling['attach_count']} and cache "
            f"traffic {scaling['cache_counters']} (must be 1 and none)",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            "PASS zero-rehydration: plane attach did no build-cache work"
        )
    scaling_floor = baseline.get("batch_scaling_floor", SCALING_FLOOR)
    n_cpus = os.cpu_count() or 1
    if n_cpus < 4:
        print(
            f"SKIP batch scaling efficiency: {n_cpus} CPU(s) cannot "
            f"express -j 4 speedup (measured {scaling['efficiency']:.2f}, "
            f"floor {scaling_floor})"
        )
    elif scaling["efficiency"] < scaling_floor:
        print(
            f"FAIL batch scaling: -j 4 efficiency "
            f"{scaling['efficiency']:.2f} (speedup "
            f"{scaling['speedup']:.2f}x) below floor {scaling_floor}",
            file=sys.stderr,
        )
        ok = False
    else:
        print(
            f"PASS batch scaling: -j 4 efficiency "
            f"{scaling['efficiency']:.2f} >= floor {scaling_floor} "
            f"(speedup {scaling['speedup']:.2f}x)"
        )
    base_inc = baseline.get("incremental_speedup")
    if base_inc is not None:
        inc_floor = base_inc * (1.0 - THRESHOLD)
        if incremental["speedup"] < inc_floor:
            drop = 100.0 * (1.0 - incremental["speedup"] / base_inc)
            print(
                f"FAIL incremental regression: memo-spliced edit re-run "
                f"speedup {incremental['speedup']:.2f}x is {drop:.0f}% "
                f"below baseline {base_inc:.2f}x "
                f"(tolerated: {100 * THRESHOLD:.0f}%)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS incremental: {incremental['speedup']:.2f}x >= floor "
                f"{inc_floor:.2f}x (baseline {base_inc:.2f}x - "
                f"{100 * THRESHOLD:.0f}%)"
            )
        if incremental["hit_rate"] < INCREMENTAL_HIT_FLOOR:
            print(
                f"FAIL incremental hit rate: {incremental['hit_rate']:.1%} "
                f"of output records spliced on a single-token edit "
                f"(floor {INCREMENTAL_HIT_FLOOR:.0%} — the memo keying "
                f"broke, this figure is deterministic)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS incremental hit rate: {incremental['hit_rate']:.1%} "
                f">= floor {INCREMENTAL_HIT_FLOOR:.0%}"
            )

    base_attach = baseline.get("batch_attach_ms")
    if base_attach is not None:
        attach_ceiling = base_attach * (1.0 + ATTACH_HEADROOM)
        if scaling["attach_ms"] > attach_ceiling:
            print(
                f"FAIL worker startup: warm plane attach "
                f"{scaling['attach_ms']:.2f} ms exceeds ceiling "
                f"{attach_ceiling:.2f} ms (baseline {base_attach:.2f} + "
                f"{100 * ATTACH_HEADROOM:.0f}%)",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"PASS worker startup: warm plane attach "
                f"{scaling['attach_ms']:.2f} ms <= ceiling "
                f"{attach_ceiling:.2f} ms (baseline {base_attach:.2f} ms; "
                f"cache rehydration {scaling['rehydrate_ms']:.2f} ms)"
            )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
