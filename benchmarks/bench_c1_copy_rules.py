"""EXP-C1 — copy-rule prevalence.

§III: "in many attribute grammars, between 40 and 60 percent of the
semantic functions are copy-rules"; §IV reports "a little more than
50%" for the self grammar and notes "the percentage of copy-rules is in
line with what other researchers have reported [PJ2]".

We measure every shipped grammar.  The realistic front-end grammars
(pascal, linguist, calc) must land near the band; toy grammars may sit
below it.
"""

from repro.ag import compute_statistics
from repro.frontend import load_grammar
from repro.grammars import GRAMMAR_NAMES, load_source
from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction


def test_c1_copy_rule_table(benchmark, report):
    def collect():
        rows = []
        for name in GRAMMAR_NAMES:
            ag = load_grammar(load_source(name))
            assignment = assign_passes(ag, Direction.R2L)
            stats = compute_statistics(ag, assignment.n_passes)
            rows.append((name, stats))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        "EXP-C1: copy-rule prevalence (paper band: 40-60%)",
        f"{'grammar':<10} {'functions':>10} {'copies':>8} {'implicit':>9} "
        f"{'share':>8} {'passes':>7}",
    ]
    for name, s in rows:
        lines.append(
            f"{name:<10} {s.n_semantic_functions:>10} {s.n_copy_rules:>8} "
            f"{s.n_implicit_copy_rules:>9} {s.copy_rule_percent:>7.1f}% "
            f"{s.n_passes:>7}"
        )
    report("c1_copy_rules", "\n".join(lines))

    by_name = {name: s for name, s in rows}
    # The realistic grammars sit in or near the paper's band.
    assert 35 <= by_name["pascal"].copy_rule_percent <= 65
    assert 35 <= by_name["linguist"].copy_rule_percent <= 65
    assert 40 <= by_name["calc"].copy_rule_percent <= 80
