"""EXP-T2 — §V evaluator code sizes per pass and the husk.

Paper (8086 object bytes of the 4 generated passes):

    pass 1 - 4292 bytes | pass 2 - 6538 | pass 3 - 5414 | pass 4 - 7215
    husk   - 4065 bytes

Claims to reproduce in shape: (a) the husk — "everything except the
semantic functions" — is a significant fraction of each pass module and
identical across passes; (b) passes differ in size because their
semantic load differs.  We measure generated *Pascal source* bytes.
"""

from repro.evalgen.husk import measure_code_sizes

PAPER_ROWS = [("pass 1", 4292), ("pass 2", 6538), ("pass 3", 5414),
              ("pass 4", 7215), ("husk", 4065)]


def test_t2_pass_sizes_table(benchmark, linguist_self_paper, report):
    sizes = benchmark(lambda: measure_code_sizes(
        "linguist", linguist_self_paper.pascal_artifacts, "pascal"
    ))
    lines = ["EXP-T2: generated evaluator sizes (self grammar)",
             f"{'module':<10} {'paper (8086 B)':>15} {'measured (src B)':>18} "
             f"{'semantic B':>11}"]
    for (label, paper_bytes), p in zip(PAPER_ROWS[:-1], sizes.passes):
        lines.append(
            f"{label:<10} {paper_bytes:>15} {p.total_bytes:>18} {p.sem_bytes:>11}"
        )
    lines.append(f"{'husk':<10} {PAPER_ROWS[-1][1]:>15} {sizes.husk_bytes:>18}")
    husk_share = sizes.husk_bytes / sizes.passes[0].total_bytes
    lines.append(f"husk share of pass 1: {100 * husk_share:.0f}% "
                 "(paper: ~95% of its smallest pass)")
    report("t2_pass_sizes", "\n".join(lines))

    assert len(sizes.passes) == 4
    # The husk is the same for every pass and is a significant share.
    for p in sizes.passes:
        assert p.husk_bytes == sizes.husk_bytes
        assert p.husk_bytes > 0.25 * p.total_bytes
    # Passes differ in semantic load.
    sems = [p.sem_bytes for p in sizes.passes]
    assert max(sems) > min(sems)


def test_t2_python_and_pascal_sizes_correlate(linguist_self_paper):
    pas = measure_code_sizes("linguist", linguist_self_paper.pascal_artifacts, "pascal")
    py = measure_code_sizes("linguist", linguist_self_paper.python_artifacts, "python")
    # Ranking of passes by semantic size should agree between renderings.
    rank = lambda sizes: sorted(range(4), key=lambda i: sizes.passes[i].sem_bytes)
    assert rank(pas) == rank(py)
