"""EXP-T8 — serving economics: daemon latency and throughput vs batch.

The paper's §V splits translation cost into an expensive
once-per-grammar build and a cheap streaming per-input run.  The serve
daemon (``docs/serving.md``) is the long-lived form of that split:
build once, keep warm, translate an unbounded request stream through
supervised workers.  This benchmark quantifies what the robustness
machinery costs:

* **latency** — closed-loop p50/p99 per-request wall time through the
  *real* daemon over HTTP (subprocess, sockets, journal on), i.e. what
  a client actually observes;
* **throughput** — sustained requests/s with concurrent clients,
  against the same inputs through ``repro batch`` (the daemon's
  per-request supervision + journaling overhead is the difference);
* the admission/restart counters after the run (``serve.*``), read
  from ``/stats`` — the same registry ``repro profile`` renders.

The regression gate (``check_regression.py``) tracks the in-process
variant of these numbers as ``serve_rps``/``serve_p99_ms``.
"""

import json
import os
import re
import signal
import statistics
import subprocess
import sys
import threading
import time
import urllib.request

from repro.workloads import generate_calc_program

N_REQUESTS = 80
N_CLIENTS = 4
WORKERS = 2
SEED = 800


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def _start_daemon(tmp_path):
    # A knob file behind the REPRO_FAKE_DISK_FREE=@file indirection lets
    # the degraded-mode phase fill and free a fake disk while the daemon
    # runs (docs/robustness.md, "Resource governance and recovery").
    knob = tmp_path / "fake_free.txt"
    knob.write_text(str(100 << 20))
    env = dict(
        os.environ, PYTHONPATH="src",
        REPRO_FAKE_DISK_FREE="@" + str(knob),
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "src/repro/grammars/calc.ag", "--port", "0",
         "--workers", str(WORKERS),
         "--queue-depth", str(N_REQUESTS),
         "--journal", str(tmp_path / "journal"),
         "--cache-dir", str(tmp_path / "cache"),
         "--disk-low-mb", "1", "--disk-high-mb", "2",
         "--governance-interval", "0.05"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    while port is None:
        line = daemon.stdout.readline()
        if not line:
            raise RuntimeError("serve daemon exited during startup")
        m = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
    threading.Thread(
        target=lambda: [None for _ in daemon.stdout], daemon=True
    ).start()
    return daemon, port


def _post(port, text, timeout=60):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/translate",
        data=text.encode(), method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read()


def test_t8_serve_latency_and_throughput(report, tmp_path):
    texts = [
        generate_calc_program(5 + i % 4, seed=SEED + i)
        for i in range(N_REQUESTS)
    ]

    # Reference: the same inputs through the batch driver (same worker
    # code path, no per-request admission/journal machinery).
    from repro.batch import WorkerSpec, build_batch_translator
    from repro.grammars import load_source, source_path

    spec = WorkerSpec(
        source=load_source("calc"),
        filename=source_path("calc"),
        grammar_name="calc",
        direction="r2l",
        cache_dir=str(tmp_path / "cache"),
    )
    translator = build_batch_translator(spec)
    start = time.perf_counter()
    batch_report = translator.translate_many(texts, jobs=WORKERS)
    batch_seconds = time.perf_counter() - start
    assert batch_report.ok

    daemon, port = _start_daemon(tmp_path)
    try:
        _post(port, texts[0])  # warm the HTTP + dispatch path

        # Closed loop, one client: per-request latency.
        latencies = []
        for text in texts:
            t0 = time.perf_counter()
            _post(port, text)
            latencies.append(time.perf_counter() - t0)
        latencies.sort()

        # Concurrent clients: sustained throughput.
        chunks = [texts[i::N_CLIENTS] for i in range(N_CLIENTS)]
        failures = []

        def drive(chunk):
            try:
                for text in chunk:
                    _post(port, text)
            except Exception as exc:  # noqa: BLE001 - asserted below
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=drive, args=(c,)) for c in chunks
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        concurrent_seconds = time.perf_counter() - t0
        assert not failures, failures

        # Degraded mode: fill the fake disk, wait for the watermark to
        # trip, and measure what a rejected client pays — the 503 +
        # Retry-After fast-fail should be far cheaper than a translate.
        import urllib.error

        knob = tmp_path / "fake_free.txt"

        def health_status():
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as resp:
                return json.load(resp)["status"]

        def wait_status(want, timeout=20.0):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if health_status() == want:
                    return
                time.sleep(0.02)
            raise AssertionError(f"daemon never reached {want!r}")

        knob.write_text(str(200 * 1024))
        wait_status("degraded")
        reject_latencies = []
        for _ in range(20):
            t0 = time.perf_counter()
            try:
                _post(port, texts[0], timeout=10)
                raise AssertionError("degraded daemon accepted a request")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503 and exc.headers.get("Retry-After")
            reject_latencies.append(time.perf_counter() - t0)
        reject_latencies.sort()

        t0 = time.perf_counter()
        knob.write_text(str(100 << 20))
        wait_status("ok")
        recovery_seconds = time.perf_counter() - t0
        _post(port, texts[0])  # daemon translates again after recovery

        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/stats", timeout=10
        ) as resp:
            stats = json.load(resp)
    finally:
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=60) == 0

    p50 = statistics.median(latencies) * 1000.0
    p99 = _percentile(latencies, 0.99) * 1000.0
    serve_rps = N_REQUESTS / concurrent_seconds
    batch_rps = N_REQUESTS / batch_seconds
    text = (
        f"EXP-T8: serve daemon vs batch ({N_REQUESTS} requests, "
        f"{WORKERS} workers, journal on)\n"
        f"  latency (closed loop over HTTP): "
        f"p50 {p50:.1f} ms, p99 {p99:.1f} ms\n"
        f"  throughput ({N_CLIENTS} concurrent clients): "
        f"{serve_rps:,.0f} req/s sustained\n"
        f"  repro batch  (same inputs, -j {WORKERS}): "
        f"{batch_rps:,.0f} req/s\n"
        f"  serve/batch throughput ratio: {serve_rps / batch_rps:.2f} "
        f"(supervision + admission + journal tax)\n"
        f"  degraded mode (low-disk watermark tripped): 503 fast-fail "
        f"p50 {statistics.median(reject_latencies) * 1000.0:.2f} ms over "
        f"{len(reject_latencies)} rejects; "
        f"recovery after free: {recovery_seconds * 1000.0:.0f} ms\n"
        f"  counters: admitted={stats.get('serve.admitted')}, "
        f"completed={stats.get('serve.completed')}, "
        f"rejected={stats.get('serve.rejected', 0)}, "
        f"rejected_degraded={stats.get('governance.rejected_degraded', 0)}, "
        f"restarts={stats.get('serve.worker_restarts', 0)}"
    )
    report("t8_serve", text)
    # warm-up + closed-loop pass + concurrent pass + post-recovery probe,
    # none lost; every degraded-mode reject accounted for
    assert stats["serve.completed"] == 2 * N_REQUESTS + 2
    assert stats.get("governance.rejected_degraded", 0) == 20
    assert p50 > 0 and serve_rps > 0
