"""ABL-1 — dead ("temporary") attribute suppression.

§III: "not writing any instances of attributes that are defined during
this pass but never referenced after this pass … the majority of
attributes are referenced only during the same pass in which they are
defined" (Saarinen's temporary/significant split).

Measured: intermediate-file byte traffic with and without the
optimization, plus the temporary-attribute share per grammar.
"""

import pytest

from repro.core import Linguist
from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec
from repro.workloads import generate_pascal_program


def traffic(dead_suppression: bool, program: str) -> int:
    lg = Linguist(load_source("pascal"),
                  dead_attribute_suppression=dead_suppression)
    t = lg.make_translator(pascal_scanner_spec(), library=library_for("pascal"))
    t.translate(program)
    return t.last_driver.accountant.bytes_written


def test_abl1_file_traffic(report):
    program = generate_pascal_program(n_statements=80, seed=13)
    lean = traffic(True, program)
    fat = traffic(False, program)
    saving = 100.0 * (fat - lean) / fat
    text = (
        "ABL-1: intermediate-file bytes, 80-statement Pascal program\n"
        f"  with dead-attribute suppression:    {lean:>9} B\n"
        f"  without dead-attribute suppression: {fat:>9} B\n"
        f"  traffic saved: {saving:.1f}%"
    )
    report("abl1_deadness", text)
    assert lean < fat


def test_abl1_majority_temporary(report):
    """The paper's observation: most attributes are temporary."""
    rows = []
    for name in ("pascal", "linguist", "calc"):
        lg = Linguist(load_source(name))
        n_temp = len(lg.deadness.temporary_attributes())
        n_sig = len(lg.deadness.significant_attributes())
        rows.append((name, n_temp, n_sig))
    lines = ["ABL-1b: temporary vs significant attributes",
             f"{'grammar':<10} {'temporary':>10} {'significant':>12}"]
    for name, t, s in rows:
        lines.append(f"{name:<10} {t:>10} {s:>12}")
    report("abl1b_temporary_share", "\n".join(lines))
    for name, t, s in rows:
        assert t > s, f"{name}: temporaries should dominate"


def test_abl1_benchmark(benchmark, pascal_translator):
    program = generate_pascal_program(n_statements=60, seed=19)
    benchmark(lambda: pascal_translator.translate(program))
