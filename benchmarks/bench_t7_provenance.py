"""EXP-T7 — provenance recording economics and the disabled-mode tax.

The provenance recorder (``repro run --record``, docs/debugging.md) is
an *opt-in* observability feature: when it is off, translation must
cost what it cost before the feature existed.  This benchmark prices
both sides on the EXP-T4 calc workload (200 generated statements,
generated backend, warm translator):

* **disabled mode** — a plain ``translate()``; the only added work is
  the ``rec is None`` checks threaded through the evaluators.  The
  measured lines/min is compared against the committed EXP-T4 baseline
  (``results/baseline_t4.json``); ``check_regression.py`` gates the
  same number at 3%.
* **record mode** — ``translate(record=DIR)``: every semantic-function
  instant and node write streams into the sealed NDJSON log, and the
  run checkpoints its per-pass spools into the record directory.

A second table prices the artifact (log size, bytes per event) and the
time-travel queries themselves (``ProvenanceLog.open`` verification,
``why``/``history``/``summary``), since a debugger nobody can afford
to invoke answers no questions.
"""

import json
import os
import shutil
import time

from repro.core import Linguist
from repro.grammars import library_for, load_source
from repro.grammars.scanners import calc_scanner_spec
from repro.obs.provenance import LOG_NAME, DebugSession, ProvenanceLog
from repro.workloads import generate_calc_program

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "baseline_t4.json"
)

N_STATEMENTS = 200
SEED = 17
ROUNDS = 5


def _best(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_t7_provenance_overhead(report, tmp_path):
    translator = Linguist(load_source("calc")).make_translator(
        calc_scanner_spec(), library=library_for("calc")
    )
    program = generate_calc_program(N_STATEMENTS, seed=SEED)
    n_lines = len(program.splitlines())
    translator.translate(program)  # warm the generated path

    off_s = _best(lambda: translator.translate(program))

    record_dir = str(tmp_path / "rec")

    def recorded():
        if os.path.exists(record_dir):
            shutil.rmtree(record_dir)
        translator.translate(program, record=record_dir)

    on_s = _best(recorded)

    off_lpm = n_lines / off_s * 60.0
    on_lpm = n_lines / on_s * 60.0
    slowdown = on_s / off_s

    log_path = os.path.join(record_dir, LOG_NAME)
    log_bytes = os.path.getsize(log_path)
    log = ProvenanceLog.open(record_dir)
    n_events = len(log.events)

    open_s = _best(lambda: ProvenanceLog.open(record_dir), rounds=3)
    with DebugSession(record_dir) as session:
        why_s = _best(lambda: session.why((), "OUT", max_depth=8), rounds=3)
        hist_s = _best(lambda: session.history((1,), "OUT"), rounds=3)
        summ_s = _best(session.summary, rounds=3)

    lines = [
        f"EXP-T7: provenance recording (calc, {N_STATEMENTS} statements, "
        f"{n_lines} lines, generated backend, best of {ROUNDS})",
        f"{'mode':<28} {'ms/translate':>13} {'lines/min':>12}",
        f"{'recording off':<28} {off_s * 1000:>13.1f} {off_lpm:>12,.0f}",
        f"{'recording on (--record)':<28} {on_s * 1000:>13.1f} "
        f"{on_lpm:>12,.0f}",
        f"record-mode slowdown: {slowdown:.2f}x "
        f"(buys {n_events:,} replayable instants per run)",
        f"log: {log_bytes:,} bytes, {n_events:,} events "
        f"({log_bytes / max(1, n_events):.0f} bytes/event), "
        f"{log.n_passes} pass(es)",
        f"queries: open+verify {open_s * 1000:.1f} ms, "
        f"why {why_s * 1000:.2f} ms, history {hist_s * 1000:.2f} ms, "
        f"summary {summ_s * 1000:.2f} ms",
    ]
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as f:
            baseline = json.load(f)
        base_lpm = baseline.get(
            "provenance_off_lines_per_minute", baseline["lines_per_minute"]
        )
        tax = 100.0 * (1.0 - off_lpm / base_lpm)
        lines.append(
            f"disabled-mode vs baseline {base_lpm:,.0f} lines/min: "
            f"{tax:+.1f}% (gated at +3% by check_regression.py)"
        )
    report("t7_provenance", "\n".join(lines))

    assert n_events > 0 and log_bytes > 0
    # The hard 3% gate lives in check_regression.py against the
    # committed baseline; here we sanity-bound the in-process numbers
    # (generous, to absorb shared-runner noise).
    assert slowdown < 50, "record mode is pathologically slow"


def test_t7_recording_benchmark(benchmark, tmp_path):
    """pytest-benchmark hook: one full recorded translation."""
    translator = Linguist(load_source("calc")).make_translator(
        calc_scanner_spec(), library=library_for("calc")
    )
    program = generate_calc_program(40, seed=SEED)
    translator.translate(program)
    record_dir = str(tmp_path / "rec")

    def recorded():
        if os.path.exists(record_dir):
            shutil.rmtree(record_dir)
        return translator.translate(program, record=record_dir)

    result = benchmark(recorded)
    assert "OUT" in result.root_attrs
