"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Every module both runs
under ``pytest benchmarks/ --benchmark-only`` and writes its rendered
table to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
paper-vs-measured numbers.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.core import Linguist  # noqa: E402
from repro.grammars import library_for, load_source  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """report(name, text): print a table and persist it."""

    def _report(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print()
        print(text)
        return path

    return _report


@pytest.fixture(scope="session")
def linguist_binary():
    return Linguist(load_source("binary"))


@pytest.fixture(scope="session")
def linguist_calc():
    return Linguist(load_source("calc"))


@pytest.fixture(scope="session")
def linguist_pascal():
    return Linguist(load_source("pascal"))


@pytest.fixture(scope="session")
def linguist_self():
    return Linguist(load_source("linguist"))


@pytest.fixture(scope="session")
def pascal_translator(linguist_pascal):
    from repro.grammars.scanners import pascal_scanner_spec

    return linguist_pascal.make_translator(
        pascal_scanner_spec(), library=library_for("pascal")
    )
