"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Every module both runs
under ``pytest benchmarks/ --benchmark-only`` and writes its rendered
table to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
paper-vs-measured numbers.

Benchmarks read their numbers from the unified telemetry layer
(:class:`repro.obs.MetricsRegistry` — see docs/observability.md): each
``Linguist`` owns a registry with the ``overlay.*`` timings, and each
translation's driver exposes ``io.*``/``mem.*``/``pass.*`` through
``translator.last_driver.metrics``.  The :func:`metrics_snapshot`
helper is the single accessor, so benchmark tables and the
``trace``/``profile`` CLI can never diverge.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.core import Linguist  # noqa: E402
from repro.grammars import library_for, load_source  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """report(name, text): print a table and persist it."""

    def _report(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print()
        print(text)
        return path

    return _report


@pytest.fixture(scope="session")
def metrics_snapshot():
    """metrics_snapshot(obj): the unified telemetry snapshot of a
    ``Linguist``, ``AlternatingPassDriver``, ``Translator`` (its last
    driver), or raw ``MetricsRegistry`` — benchmarks read all counters
    through this one accessor."""

    def _snapshot(obj) -> dict:
        if isinstance(obj, MetricsRegistry):
            return obj.snapshot()
        if hasattr(obj, "last_driver") and obj.last_driver is not None:
            return obj.last_driver.metrics.snapshot()
        return obj.metrics.snapshot()

    return _snapshot


@pytest.fixture(scope="session")
def linguist_binary():
    return Linguist(load_source("binary"), metrics=MetricsRegistry())


@pytest.fixture(scope="session")
def linguist_calc():
    return Linguist(load_source("calc"), metrics=MetricsRegistry())


@pytest.fixture(scope="session")
def linguist_pascal():
    return Linguist(load_source("pascal"), metrics=MetricsRegistry())


@pytest.fixture(scope="session")
def linguist_self():
    return Linguist(load_source("linguist"), metrics=MetricsRegistry())


# Paper-fidelity builds: the paper's figures (4 alternating passes for
# the self grammar, Figure-3 paradigm traces, per-pass code sizes) are
# stated over the *original* alternating-pass partition, so these pin
# ``fuse_passes=False``.  The fused default is measured by the
# throughput/codec benchmarks (t4, t6).


@pytest.fixture(scope="session")
def linguist_self_paper():
    return Linguist(
        load_source("linguist"), fuse_passes=False, metrics=MetricsRegistry()
    )


@pytest.fixture(scope="session")
def linguist_calc_paper():
    return Linguist(
        load_source("calc"), fuse_passes=False, metrics=MetricsRegistry()
    )


@pytest.fixture(scope="session")
def pascal_translator(linguist_pascal):
    from repro.grammars.scanners import pascal_scanner_spec

    return linguist_pascal.make_translator(
        pascal_scanner_spec(), library=library_for("pascal")
    )
