"""CONCL-1 / CONCL-2 — the paper's two closing research questions,
operationalized.

CONCL-1 (§Conclusions): "Since attribute evaluation is I/O bound …
would some form of virtual memory system significantly speed up the
evaluators?"  We answer by evaluating the same input with the APT on
real disk files (the paper's configuration) vs entirely in memory (the
ideal virtual-memory system with no pressure): the gap *is* the I/O
share a VM could reclaim.

CONCL-2: "whether a more complete and global analysis of the attribute
grammar can yield markedly better static subsumption results.  Our
initial hand simulations … were more effective than the automatically
generated versions, but the hand simulations made use of global
information."  We run an exhaustive (globally optimal) search over the
static sets of a small grammar and compare against the paper-style
greedy + refinement selection.
"""

import time

import pytest

from repro.apt.storage import DiskSpool, MemorySpool
from repro.evalgen.codegen_pascal import PascalCodeGenerator
from repro.evalgen.deadness import analyze_deadness
from repro.evalgen.plan import build_pass_plans
from repro.evalgen.subsumption import (
    SubsumptionConfig,
    choose_static_attributes,
    exhaustive_allocation,
    refine_allocation,
)
from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec
from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction
from repro.workloads import generate_pascal_program


def test_concl1_virtual_memory_question(linguist_pascal, report):
    lib = library_for("pascal")
    translator = linguist_pascal.make_translator(pascal_scanner_spec(), library=lib)
    program = generate_pascal_program(n_statements=250, seed=53)
    tokens = list(translator.scanner.tokens(program))

    def timed(spool_factory):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            translator.translate_tokens(iter(tokens), spool_factory=spool_factory)
            best = min(best, time.perf_counter() - start)
        return best

    from repro.util.iotrack import IOAccountant

    acct = IOAccountant()
    disk = timed(lambda ch: DiskSpool(accountant=acct, channel=ch))
    memory = timed(lambda ch: MemorySpool(accountant=acct, channel=ch))
    speedup = disk / memory
    text = (
        "CONCL-1: would virtual memory speed up the evaluators?\n"
        f"  APT on disk files (paper's configuration): {disk * 1000:8.1f} ms\n"
        f"  APT in memory (ideal virtual memory):      {memory * 1000:8.1f} ms\n"
        f"  speedup available to a VM system: {speedup:.2f}x\n"
        "  (the paper conjectured a speedup because its evaluators were\n"
        "  disk-bound; on a modern OS with a warm page cache the gap is\n"
        "  small — the buffered 'disk' already behaves like VM)"
    )
    report("concl1_virtual_memory", text)
    assert memory <= disk * 1.25  # memory never meaningfully slower


def test_concl2_global_subsumption_analysis(report):
    from tests.sample_grammars import env_fanout

    ag = env_fanout()
    assignment = assign_passes(ag, Direction.R2L)
    deadness = analyze_deadness(ag, assignment)
    config = SubsumptionConfig()

    def sem_bytes(allocation):
        plans = build_pass_plans(ag, assignment, deadness, allocation)
        artifacts = PascalCodeGenerator(ag).generate_all(plans)
        return sum(a.sem_bytes for a in artifacts)

    none_bytes = sem_bytes(choose_static_attributes(
        ag, assignment, SubsumptionConfig(enabled=False)))
    greedy = choose_static_attributes(ag, assignment, config)
    greedy = refine_allocation(ag, assignment, greedy, deadness)
    greedy_bytes = sem_bytes(greedy)
    best, best_bytes, evaluated = exhaustive_allocation(
        ag, assignment, deadness, config
    )
    text = (
        "CONCL-2: global (exhaustive) vs local (greedy+refine) subsumption\n"
        f"  grammar: env_fanout ({len(ag.productions)} productions)\n"
        f"  no subsumption:        {none_bytes} semantic bytes\n"
        f"  greedy + refinement:   {greedy_bytes} semantic bytes "
        f"({len(greedy.static)} static attrs)\n"
        f"  exhaustive optimum:    {best_bytes} semantic bytes "
        f"({len(best.static)} static attrs, {evaluated} subsets tried)\n"
        f"  greedy is within {100 * (greedy_bytes - best_bytes) / max(1, best_bytes):.1f}% "
        "of optimal\n"
        "  (the paper: hand simulations with global information beat the\n"
        "  automatic local selection — confirmed, and quantified)"
    )
    report("concl2_global_subsumption", text)
    # The optimum can only be at least as good; greedy must be close.
    assert best_bytes <= greedy_bytes <= none_bytes
    assert greedy_bytes <= best_bytes * 1.25


def test_concl2_benchmark(benchmark):
    from tests.sample_grammars import with_limb

    ag = with_limb()
    assignment = assign_passes(ag, Direction.R2L)
    deadness = analyze_deadness(ag, assignment)

    def search():
        return exhaustive_allocation(ag, assignment, deadness)

    best, best_bytes, evaluated = benchmark.pedantic(search, rounds=1, iterations=1)
    assert evaluated >= 2
