"""EXP-F1 — §II's linearization diagram and the reversal trait.

The paper draws one tree and its two linearizations:

    left-to-right prefix :  M F B A C E D G L H K I J
    left-to-right postfix:  A C B D E F G H I J K L M

and states the trait the whole paradigm rests on: "if the output file
of a left-to-right pass is read backwards it can be the input file for
a right-to-left pass".  We regenerate both series from the same tree
and verify the reversal identity, here and at scale.
"""

import pytest

from repro.apt.linear import TreeNode, iter_bottom_up, iter_prefix
from repro.apt.node import APTNode
from repro.passes.schedule import Direction

PAPER_PREFIX = list("MFBACEDGLHKIJ")
PAPER_POSTFIX = list("ACBDEFGHIJKLM")


def paper_tree() -> TreeNode:
    def leaf(name):
        return TreeNode(APTNode(name))

    def node(name, *children):
        return TreeNode(APTNode(name, production=0), list(children))

    return node(
        "M",
        node("F", node("B", leaf("A"), leaf("C")), node("E", leaf("D"))),
        leaf("G"),
        node("L", leaf("H"), node("K", leaf("I"), leaf("J"))),
    )


def big_tree(depth: int, fanout: int = 3) -> TreeNode:
    counter = [0]

    def build(d):
        counter[0] += 1
        node = APTNode(f"n{counter[0]}", production=0 if d else None)
        if d == 0:
            return TreeNode(node)
        return TreeNode(node, [build(d - 1) for _ in range(fanout)])

    return build(depth)


def test_f1_paper_series(report):
    tree = paper_tree()
    prefix = [n.symbol for n in iter_prefix(tree, Direction.L2R)]
    postfix = [n.symbol for n in iter_bottom_up(tree, Direction.L2R)]
    lines = [
        "EXP-F1: §II linearization diagram",
        f"  L2R prefix  (paper): {' '.join(PAPER_PREFIX)}",
        f"  L2R prefix  (ours) : {' '.join(prefix)}",
        f"  L2R postfix (paper): {' '.join(PAPER_POSTFIX)}",
        f"  L2R postfix (ours) : {' '.join(postfix)}",
        "  reversal trait: reversed(L2R postfix) == R2L prefix: "
        + str(list(reversed(postfix))
              == [n.symbol for n in iter_prefix(tree, Direction.R2L)]),
    ]
    report("f1_linearization", "\n".join(lines))
    assert prefix == PAPER_PREFIX
    assert postfix == PAPER_POSTFIX


@pytest.mark.parametrize("direction", [Direction.L2R, Direction.R2L])
def test_f1_reversal_identity_at_scale(direction):
    tree = big_tree(depth=6)
    out = [n.symbol for n in iter_bottom_up(tree, direction)]
    back_in = [n.symbol for n in iter_prefix(tree, direction.opposite)]
    assert list(reversed(out)) == back_in


def test_f1_linearization_benchmark(benchmark):
    tree = big_tree(depth=7)
    result = benchmark(lambda: sum(1 for _ in iter_bottom_up(tree)))
    assert result == (3 ** 8 - 1) // 2
