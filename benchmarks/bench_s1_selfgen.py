"""EXP-S1 — self-generation.

"The approach embodied by LINGUIST-86 has been shown effective;
LINGUIST-86 is itself a non-trivial attribute grammar and is
self-generating."

The bench builds the self-described translator (the hand system
compiling ``linguist.ag``), runs the *generated* evaluator on
``linguist.ag`` itself, and checks the fixpoint: the dictionary the
generated evaluator computes equals the direct analysis.
"""

import pytest

from repro.core.selfgen import SelfGeneration, summary_from_ast
from repro.frontend.syntax import parse_ag_text
from repro.grammars import load_source


@pytest.fixture(scope="module")
def selfgen():
    return SelfGeneration()


def test_s1_bootstrap_fixpoint(selfgen, report):
    machine, hand = selfgen.bootstrap_check()
    lines = [
        "EXP-S1: self-generation bootstrap (generated evaluator on its own source)",
        f"{'dictionary entry':<30} {'generated':>10} {'direct':>8}",
    ]
    for label, m, h in [
        ("grammar symbols", machine.n_syms, hand.n_syms),
        ("attributes", machine.n_attrs, hand.n_attrs),
        ("productions", machine.n_prods, hand.n_prods),
        ("semantic functions", machine.n_funcs, hand.n_funcs),
        ("explicit copy-rules", machine.n_copies, hand.n_copies),
        ("attribute-occurrences", machine.n_occs, hand.n_occs),
        ("diagnostics", machine.n_msgs, hand.n_msgs),
    ]:
        lines.append(f"{label:<30} {m:>10} {h:>8}")
    lines.append(f"symbol sets equal: {machine.symbols == hand.symbols}")
    lines.append(f"pass count: {selfgen.linguist.n_passes} (paper: 4)")
    report("s1_selfgen", "\n".join(lines))
    assert machine.symbols == hand.symbols
    assert selfgen.linguist.n_passes == 4


def test_s1_generated_evaluator_on_every_shipped_grammar(selfgen):
    for name in ("binary", "calc", "pascal", "asm", "linguist"):
        source = load_source(name)
        machine = selfgen.analyze_with_generated_evaluator(source)
        hand = summary_from_ast(parse_ag_text(source))
        assert (machine.n_prods, machine.n_funcs, machine.n_copies) == (
            hand.n_prods, hand.n_funcs, hand.n_copies
        ), name


def test_s1_occurrence_counts_match_the_model(selfgen):
    """Strongest cross-check: the generated evaluator's N$OCCS equals the
    attribute-occurrence count the core model computes (the paper's 1202
    statistic, EXP-T1) — two completely independent computations."""
    from repro.ag import compute_statistics
    from repro.frontend import load_grammar
    from repro.grammars import GRAMMAR_NAMES

    for name in GRAMMAR_NAMES:
        source = load_source(name)
        machine = selfgen.analyze_with_generated_evaluator(source)
        stats = compute_statistics(load_grammar(source))
        assert machine.n_occs == stats.n_attribute_occurrences, name


def test_s1_self_translation_benchmark(benchmark, selfgen):
    source = load_source("linguist")
    benchmark(lambda: selfgen.translator.translate(source))
