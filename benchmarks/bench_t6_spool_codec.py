"""EXP-T6 — spool codec economics: v2 pickle framing vs the v3 codec.

The paper's evaluator is I/O bound by construction: every pass streams
the attributed parse tree through secondary storage, so bytes-per-APT-
record is the constant that multiplies through the whole §V cost model.
This benchmark measures the two shipped on-disk encodings over a *real*
record stream (the initial APT of a generated Pascal program):

* **v2** — one pickle + one CRC32 per record (format 2),
* **v3** — struct-packed node records, interned names, block-framed
  CRCs (format 3, the default),

reporting bytes/record, write and read throughput, and the v3 block
economics (records per block, name-table size).  A second table prices
the adaptive spooling policy: the same translation with the default
in-memory budget versus ``--spool-memory-budget 0`` (every intermediate
spool forced to sealed v3 disk files).
"""

import os
import time

from repro.apt.build import APTBuilder
from repro.apt.storage import (
    FORMAT_V2,
    FORMAT_V3,
    DiskSpool,
    MemorySpool,
)
from repro.core import Linguist
from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec
from repro.obs import MetricsRegistry
from repro.workloads import generate_pascal_program


def _initial_apt_records(linguist, translator, n_statements=400, seed=31):
    """The real initial-spool record stream for a generated program."""
    program = generate_pascal_program(n_statements=n_statements, seed=seed)
    tokens = list(translator.scanner.tokens(program))
    spool = MemorySpool(channel="initial")
    builder = APTBuilder(linguist.ag, spool, build_tree=False)
    translator.parser.parse(tokens, listener=builder, build_tree=False)
    builder.finish()
    return list(spool.read_forward())


def _spool_cost(records, fmt, path, repeats=3):
    """Best-of-``repeats`` write/read timings + sealed file size."""
    write_best = read_best = float("inf")
    size = 0
    for _ in range(repeats):
        if os.path.exists(path):
            os.remove(path)
        start = time.perf_counter()
        spool = DiskSpool(path, format_version=fmt)
        for record in records:
            spool.append(record)
        spool.finalize()
        write_best = min(write_best, time.perf_counter() - start)
        size = os.path.getsize(path)
        start = time.perf_counter()
        reader = DiskSpool.open(path)
        n = sum(1 for _ in reader.read_backward())
        read_best = min(read_best, time.perf_counter() - start)
        assert n == len(records)
    return {"write_s": write_best, "read_s": read_best, "file_bytes": size}


def test_t6_codec_bytes_and_throughput(tmp_path, report, linguist_pascal,
                                       pascal_translator):
    records = _initial_apt_records(linguist_pascal, pascal_translator)
    n = len(records)
    v2 = _spool_cost(records, FORMAT_V2, str(tmp_path / "v2.spool"))
    v3 = _spool_cost(records, FORMAT_V3, str(tmp_path / "v3.spool"))

    # v3 block economics from a metrics-instrumented write.
    metrics = MetricsRegistry()
    probe = DiskSpool(str(tmp_path / "probe.spool"), metrics=metrics)
    for record in records:
        probe.append(record)
    probe.finalize()
    snap = metrics.snapshot()
    n_blocks = snap.get("spool.codec.blocks_written", 0)
    nt_bytes = snap.get("spool.codec.nametable_bytes", 0)

    def krps(seconds):
        return n / seconds / 1000.0 if seconds > 0 else float("inf")

    shrink = v2["file_bytes"] / v3["file_bytes"]
    lines = [
        f"EXP-T6: spool codec economics ({n} APT records, "
        "pascal initial spool)",
        f"{'format':<26} {'bytes/rec':>10} {'write krec/s':>13} "
        f"{'read krec/s':>12}",
        f"{'v2 pickle-per-record':<26} {v2['file_bytes'] / n:>10.1f} "
        f"{krps(v2['write_s']):>13,.0f} {krps(v2['read_s']):>12,.0f}",
        f"{'v3 block codec (default)':<26} {v3['file_bytes'] / n:>10.1f} "
        f"{krps(v3['write_s']):>13,.0f} {krps(v3['read_s']):>12,.0f}",
        f"v3 shrinks the on-disk APT {shrink:.2f}x "
        f"({v2['file_bytes']:,} -> {v3['file_bytes']:,} bytes)",
        f"v3 blocks: {n_blocks} written "
        f"({n / max(1, n_blocks):.0f} records/block), "
        f"name table {nt_bytes:,} bytes (one copy per spool)",
    ]
    report("t6_spool_codec", "\n".join(lines))

    assert v3["file_bytes"] < v2["file_bytes"], (
        "v3 codec must beat pickle-per-record on bytes"
    )
    assert n_blocks >= 1 and nt_bytes > 0


def test_t6_adaptive_spooling_policy(report, pascal_translator):
    """Price the memory-vs-disk spooling policy on a full translation."""
    program = generate_pascal_program(n_statements=400, seed=31)
    pascal_translator.translate(program)  # warm

    def timed(budget, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            pascal_translator.translate(
                program, spool_memory_budget=budget
            )
            best = min(best, time.perf_counter() - start)
        return best

    mem_s = timed(None)       # default 8 MiB budget: stays in memory
    disk_s = timed(0)         # 0 budget: every spool spills to v3 disk
    lines = [
        "EXP-T6b: adaptive spooling policy (pascal, 400 statements)",
        f"{'policy':<38} {'ms/translate':>13}",
        f"{'in-memory (default 8 MiB budget)':<38} {mem_s * 1000:>13.1f}",
        f"{'forced disk (--spool-memory-budget 0)':<38} "
        f"{disk_s * 1000:>13.1f}",
        f"memory spooling saves {100 * (1 - mem_s / disk_s):.0f}% "
        "per translation on this workload",
    ]
    report("t6b_adaptive_spooling", "\n".join(lines))
    assert mem_s > 0 and disk_s > 0


def test_t6_codec_benchmark(benchmark, tmp_path, linguist_pascal,
                            pascal_translator):
    """pytest-benchmark hook: sealed v3 write+read round trip."""
    records = _initial_apt_records(
        linguist_pascal, pascal_translator, n_statements=120, seed=23
    )
    path = str(tmp_path / "bench.spool")

    def round_trip():
        if os.path.exists(path):
            os.remove(path)
        spool = DiskSpool(path, format_version=FORMAT_V3)
        for record in records:
            spool.append(record)
        spool.finalize()
        return sum(1 for _ in DiskSpool.open(path).read_backward())

    assert benchmark(round_trip) == len(records)
