"""EXP-T5 / ABL-2 — §III static subsumption effect.

Paper: "Static subsumption eliminated nearly 20% of the semantic
function evaluation code in LINGUIST-86.  It eliminated about 13% of
the code that evaluates semantic functions in the Pascal attribute
evaluator. … We also timed versions of LINGUIST-86 that were generated
with and without having static subsumption applied.  Because the
evaluators are I/O bound there was no noticeable difference."

Reproduced: semantic-code byte reduction for the self grammar and the
Pascal grammar; run-time ratio with/without subsumption near 1; and the
ABL-2 comparison of name-grouped vs per-attribute global allocation.
"""

import time

import pytest

from repro.core import Linguist
from repro.evalgen.husk import measure_code_sizes, semantic_code_reduction
from repro.evalgen.subsumption import SubsumptionConfig
from repro.grammars import library_for, load_source
from repro.grammars.scanners import pascal_scanner_spec
from repro.workloads import generate_pascal_program

PAPER = {"linguist": 20.0, "pascal": 13.0}


def _reduction(name: str, grouping: str = "name") -> float:
    source = load_source(name)
    with_sub = Linguist(source, subsumption=SubsumptionConfig(grouping=grouping))
    without = Linguist(source, subsumption=SubsumptionConfig(enabled=False))
    return semantic_code_reduction(
        measure_code_sizes(name, with_sub.pascal_artifacts, "pascal"),
        measure_code_sizes(name, without.pascal_artifacts, "pascal"),
    )


def test_t5_code_reduction_table(benchmark, report):
    linguist_pct = _reduction("linguist")
    pascal_pct = benchmark.pedantic(
        lambda: _reduction("pascal"), rounds=1, iterations=1
    )
    calc_pct = _reduction("calc")
    lines = [
        "EXP-T5: semantic-function code eliminated by static subsumption",
        f"{'grammar':<12} {'paper':>8} {'measured':>10}",
        f"{'linguist':<12} {'~20%':>8} {linguist_pct:>9.1f}%",
        f"{'pascal':<12} {'~13%':>8} {pascal_pct:>9.1f}%",
        f"{'calc':<12} {'-':>8} {calc_pct:>9.1f}%",
    ]
    report("t5_subsumption_reduction", "\n".join(lines))

    # Shape: a real but modest reduction — single-digit to a few tens of
    # percent, on both workloads ("if an optimizing compiler eliminated
    # 10% of the generated code … it would be enormously successful").
    assert 2.0 <= linguist_pct <= 50.0
    assert 2.0 <= pascal_pct <= 50.0


def test_t5_runtime_unchanged(report):
    """The I/O-bound claim: evaluation time with and without subsumption
    is essentially the same."""
    source = load_source("pascal")
    program = generate_pascal_program(n_statements=150, seed=31)
    spec = pascal_scanner_spec()
    lib = library_for("pascal")

    def run_seconds(subsumption_enabled: bool) -> float:
        lg = Linguist(source, subsumption=SubsumptionConfig(enabled=subsumption_enabled))
        t = lg.make_translator(spec, library=lib)
        t.translate(program)  # warm
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            t.translate(program)
            best = min(best, time.perf_counter() - start)
        return best

    with_sub = run_seconds(True)
    without = run_seconds(False)
    ratio = with_sub / without
    text = (
        "EXP-T5 timing: evaluation of a 150-statement program\n"
        f"  with subsumption:    {with_sub * 1000:.1f} ms\n"
        f"  without subsumption: {without * 1000:.1f} ms\n"
        f"  ratio: {ratio:.2f} (paper: 'no noticeable difference')"
    )
    report("t5_runtime", text)
    assert 0.5 < ratio < 2.0


def test_abl2_grouping_comparison(report):
    """ABL-2: name-grouped globals (the paper's choice) subsume at least
    as many copy-rules as per-attribute globals."""
    rows = []
    for name in ("linguist", "pascal", "calc"):
        source = load_source(name)
        by_name = Linguist(source, subsumption=SubsumptionConfig(grouping="name"))
        by_attr = Linguist(
            source, subsumption=SubsumptionConfig(grouping="per-attribute")
        )
        n_name = sum(p.n_subsumed for p in by_name.plans)
        n_attr = sum(p.n_subsumed for p in by_attr.plans)
        rows.append((name, n_name, n_attr))
    lines = ["ABL-2: subsumed copy-rule sites by allocation policy",
             f"{'grammar':<12} {'name-grouped':>13} {'per-attribute':>14}"]
    for name, n_name, n_attr in rows:
        lines.append(f"{name:<12} {n_name:>13} {n_attr:>14}")
    report("abl2_grouping", "\n".join(lines))
    for _, n_name, n_attr in rows:
        assert n_name >= n_attr
    assert any(n_name > n_attr for _, n_name, n_attr in rows)
