"""EXP-T1 — §IV statistics of the system's own attribute grammar.

Paper (for the original 1800-line grammar): 159 symbols, 318
attributes, 72 productions, 1202 attribute-occurrences, 584 semantic
functions, 302 copy-rules (~52 %) of which 276 implicit; evaluable in
4 alternating passes.

Reproduction target: the *shape* — tens of productions, symbols
dominated by limbs+terminals, a large copy-rule share that is mostly
implicit, and exactly 4 alternating passes.
"""

from repro.ag import compute_statistics
from repro.grammars import load_source

PAPER = {
    "source lines": 1800,
    "grammar symbols": 159,
    "attributes": 318,
    "productions": 72,
    "attribute-occurrences": 1202,
    "semantic functions": 584,
    "copy-rules": 302,
    "implicit copy-rules": 276,
    "alternating passes": 4,
}


def _measured(linguist_self_paper):
    s = linguist_self_paper.statistics
    return {
        "source lines": s.source_lines,
        "grammar symbols": s.n_symbols,
        "attributes": s.n_attributes,
        "productions": s.n_productions,
        "attribute-occurrences": s.n_attribute_occurrences,
        "semantic functions": s.n_semantic_functions,
        "copy-rules": s.n_copy_rules,
        "implicit copy-rules": s.n_implicit_copy_rules,
        "alternating passes": s.n_passes,
    }


def test_t1_statistics_table(benchmark, linguist_self_paper, report):
    stats = benchmark(lambda: compute_statistics(
        linguist_self_paper.ag, n_passes=linguist_self_paper.n_passes
    ))
    measured = _measured(linguist_self_paper)

    lines = ["EXP-T1: statistics of the self-description attribute grammar",
             f"{'quantity':<26} {'paper':>8} {'measured':>10}"]
    for key, paper_value in PAPER.items():
        lines.append(f"{key:<26} {paper_value:>8} {measured[key]:>10}")
    copy_pct = 100.0 * measured["copy-rules"] / measured["semantic functions"]
    lines.append(f"{'copy-rule percentage':<26} {'~52%':>8} {copy_pct:>9.1f}%")
    report("t1_ag_statistics", "\n".join(lines))

    # Shape assertions.
    assert measured["alternating passes"] == 4          # exactly the paper's
    assert measured["productions"] >= 60                # same order as 72
    assert measured["implicit copy-rules"] >= measured["copy-rules"] * 0.5
    assert stats.n_productions == measured["productions"]


def test_t1_copy_share_is_mostly_implicit(linguist_self_paper):
    s = linguist_self_paper.statistics
    # Paper: 276 of 302 copy-rules implicit (91%); ours must also be a
    # clear majority.
    assert s.n_implicit_copy_rules / max(1, s.n_copy_rules) > 0.6
