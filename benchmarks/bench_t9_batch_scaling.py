"""EXP-T9 — batch fan-out economics: the shared-memory artifact plane.

The paper's §V economics assume the expensive once-per-grammar build is
paid *once*.  Parallel batch execution threatens that: every worker
process used to rehydrate the grammar artifacts from the build cache
(disk reads + CRC verification per worker).  The artifact plane
(``repro.buildcache.shm``, see docs/performance.md) serializes the
built translator into one shared-memory segment that every worker
attaches to zero-copy, so adding a worker costs an attach, not a
rebuild.  This benchmark quantifies the fan-out:

* **scaling** — wall-clock throughput of ``translate_many`` at
  ``jobs=1`` (in-process sequential) vs ``jobs=2`` and ``jobs=4``
  (supervised workers, pipelined), with byte-identical outputs
  asserted across all of them;
* **warm startup** — per-worker hydration cost: plane attach vs
  build-cache rehydration, best-of-N in-process (the same code path a
  freshly spawned or supervisor-restarted worker runs);
* **rehydration work at zero** — a plane-attached worker's metrics
  show exactly one ``batch.shm.attach`` and *no* ``cache.*`` traffic.

The scaling-efficiency assertion only fires when the machine actually
has ≥4 CPUs (a single-core container cannot exhibit parallel speedup);
the byte-identity and zero-rehydration assertions always fire.  The
regression gate (``check_regression.py``) tracks ``batch_attach_ms``
and enforces the efficiency floor on CI hardware.
"""

import dataclasses
import os
import time

from repro.workloads import generate_calc_program

N_INPUTS = 48
N_STATEMENTS = 60
SEED = 900
JOBS = (1, 2, 4)
ATTACH_ROUNDS = 7
#: Minimum parallel efficiency (speedup / jobs) demanded at -j 4 when
#: the hardware can express it (mirrors check_regression.py).
EFFICIENCY_FLOOR = 0.75


def _summarize(report):
    from tests.evalharness import canonical_attrs

    return [
        (item.index, item.ok,
         canonical_attrs(item.result.root_attrs) if item.ok else item.error_type)
        for item in report.items
    ]


def test_t9_batch_scaling(report, tmp_path):
    from repro.batch import (
        WorkerSpec,
        build_batch_translator,
        build_worker_translator,
    )
    from repro.buildcache.shm import (
        attach_translator,
        export_translator_plane,
        plane_segments,
    )
    from repro.obs import MetricsRegistry

    texts = [
        generate_calc_program(N_STATEMENTS, seed=SEED + i)
        for i in range(N_INPUTS)
    ]
    n_lines = sum(len(t.splitlines()) for t in texts)
    spec = WorkerSpec(
        source=open("src/repro/grammars/calc.ag").read(),
        filename="src/repro/grammars/calc.ag",
        grammar_name="calc",
        direction="r2l",
        cache_dir=str(tmp_path / "cache"),
    )
    translator = build_batch_translator(spec)
    translator.translate_many(texts[:2], jobs=1)  # warm the hot path

    segments_before = set(plane_segments())
    elapsed = {}
    reports = {}
    for jobs in JOBS:
        start = time.perf_counter()
        reports[jobs] = translator.translate_many(texts, jobs=jobs)
        elapsed[jobs] = time.perf_counter() - start
        assert reports[jobs].ok, f"-j {jobs} run failed"
    assert set(plane_segments()) == segments_before, (
        "a run leaked its plane segment"
    )
    # Byte-identical outputs at every parallelism level.
    reference = _summarize(reports[1])
    for jobs in JOBS[1:]:
        assert _summarize(reports[jobs]) == reference, (
            f"-j {jobs} output differs from sequential"
        )

    speedup4 = elapsed[1] / elapsed[4]
    efficiency4 = speedup4 / 4

    # Warm startup per extra worker: plane attach vs cache rehydration,
    # in-process (the exact hydration code a spawned worker runs).
    plane = export_translator_plane(translator)
    try:
        plane_spec = dataclasses.replace(spec, shm_plane=plane.name)
        attach_translator(plane_spec)  # warm
        build_worker_translator(spec)  # warm
        attach_best = rehydrate_best = float("inf")
        for _ in range(ATTACH_ROUNDS):
            t0 = time.perf_counter()
            attach_translator(plane_spec)
            attach_best = min(attach_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            build_worker_translator(spec)
            rehydrate_best = min(rehydrate_best, time.perf_counter() - t0)

        # Rehydration work measured at zero: the attached worker's only
        # counter is the attach itself — no cache reads, no code gen.
        metrics = MetricsRegistry()
        worker = build_worker_translator(plane_spec, metrics=metrics)
        snapshot = metrics.snapshot()
        cache_counters = sorted(k for k in snapshot if k.startswith("cache."))
        assert snapshot["batch.shm.attach"] == 1
        assert not cache_counters, (
            f"plane attach did cache work: {cache_counters}"
        )
        assert getattr(worker.linguist, "from_plane", False)
        plane_bytes = plane.used_bytes
    finally:
        plane.unlink()

    cpus = os.cpu_count() or 1
    lines = [
        f"EXP-T9: batch fan-out over the shared-memory artifact plane "
        f"({N_INPUTS} inputs x {N_STATEMENTS} statements, "
        f"{n_lines} lines total, {cpus} CPU(s))",
    ]
    for jobs in JOBS:
        rate = n_lines / elapsed[jobs] * 60.0
        lines.append(
            f"  -j {jobs}: {elapsed[jobs]:.3f} s  "
            f"({rate:,.0f} lines/min"
            + (")" if jobs == 1 else
               f", {elapsed[1] / elapsed[jobs]:.2f}x vs -j 1)")
        )
    lines += [
        f"  -j 4 scaling efficiency: {efficiency4:.2f} "
        f"(floor {EFFICIENCY_FLOOR} enforced when CPUs >= 4)",
        f"  plane: {plane_bytes:,} bytes, one export per run, "
        f"swept on completion",
        f"  warm worker startup: plane attach {attach_best * 1000:.2f} ms "
        f"vs cache rehydration {rehydrate_best * 1000:.2f} ms "
        f"(best of {ATTACH_ROUNDS}; attach does zero cache/codegen work)",
    ]
    if cpus >= 4:
        assert efficiency4 >= EFFICIENCY_FLOOR, (
            f"-j 4 efficiency {efficiency4:.2f} below {EFFICIENCY_FLOOR}"
        )
        lines.append("  efficiency floor: PASS")
    else:
        lines.append(
            f"  efficiency floor: SKIPPED ({cpus} CPU(s) cannot express "
            "parallel speedup)"
        )
    report("t9_batch_scaling", "\n".join(lines))
    assert attach_best > 0 and rehydrate_best > 0
