"""EXP-F2 — §II Figure 3 (the evaluation paradigm) and the p.165
generated production-procedure.

Figure 3 fixes the per-node event skeleton::

    read all attribs of Xi from input APT file
    eval inherited attribs of Xi for this pass
    visit the sub-APT whose root is Xi
    write all attribs of Xi to output APT file
    ...
    eval synthesized attribs of X0

We trace a real evaluation and check every node follows
get -> [eval inh] -> visit -> put, and we print a generated Pascal
production-procedure next to the paper's FUNCTIONLISTLIMBPP2 shape
(GetNode / inherited assignments / recursive call / PutNode).
"""

import re

import pytest

from repro.apt.build import APTBuilder
from repro.apt.storage import MemorySpool
from repro.evalgen.driver import AlternatingPassDriver
from repro.evalgen.interp import InterpretiveEvaluator
from repro.grammars.scanners import calc_scanner_spec


def run_traced(linguist_calc_paper, source: str):
    translator = linguist_calc_paper.make_translator(calc_scanner_spec())
    trace = []
    spool = MemorySpool(channel="initial")
    builder = APTBuilder(linguist_calc_paper.ag, spool)
    translator.parser.parse(
        translator.scanner.tokens(source), listener=builder, build_tree=False
    )
    builder.finish()
    driver = AlternatingPassDriver(
        linguist_calc_paper.ag,
        linguist_calc_paper.plans,
        InterpretiveEvaluator(linguist_calc_paper.ag).run_pass,
        library=translator.library,
        trace=trace,
    )
    driver.run(spool, strategy="bottom-up")
    return trace


def test_f2_every_get_has_matching_put(linguist_calc_paper):
    trace = run_traced(linguist_calc_paper, "let a = 2 ; print a * a")
    gets = sum(1 for e in trace if e.kind == "get")
    puts = sum(1 for e in trace if e.kind == "put")
    assert gets == puts > 0


def test_f2_paradigm_order(linguist_calc_paper, report):
    """For every nonterminal node: get precedes visit precedes put, and
    the pass-k inherited evaluations sit between get and visit."""
    trace = run_traced(linguist_calc_paper, "let a = 1 ; print a + 1")
    # Flatten to (kind, detail) and check balanced nesting per symbol.
    opened = []
    violations = []
    for event in trace:
        if event.kind == "get":
            opened.append(event.detail)
        elif event.kind == "put":
            if event.detail not in opened:
                violations.append(f"put {event.detail} without get")
            else:
                opened.remove(event.detail)
    if opened:
        violations.append(f"never written: {opened}")
    sample = "\n".join(f"    {e.kind:6} {e.detail}" for e in trace[:16])
    report(
        "f2_paradigm_trace",
        "EXP-F2: first 16 paradigm events of a two-pass evaluation\n"
        + sample
        + f"\n  total events: {len(trace)}; violations: {violations}",
    )
    assert not violations


def test_f2_generated_procedure_matches_paper_shape(linguist_calc_paper, report):
    """The generated Pascal production-procedure has the paper's
    skeleton: GetNode*, inherited assignments, recursive PP call,
    PutNode*, synthesized assignments."""
    artifact = linguist_calc_paper.pascal_artifacts[1]  # pass 2 does the work
    # Extract the procedure for the Add production.
    m = re.search(
        r"procedure ADDLIMBPP2.*?end; \{ ADDLIMBPP2 \}", artifact.text, re.S
    )
    assert m, "no generated procedure for AddLimb"
    text = m.group(0)
    report("f2_generated_procedure", "EXP-F2: generated procedure\n" + text)
    assert "GetNode" in text
    assert "PutNode" in text
    assert "PP2(" in text  # recursive production-procedure calls
    get_pos = text.index("GetNode")
    put_pos = text.rindex("PutNode")
    assert get_pos < put_pos


def test_f2_trace_benchmark(benchmark, linguist_calc_paper):
    benchmark(lambda: run_traced(linguist_calc_paper, "let a = 1 ; print a"))
