"""EXP-T4 — §V throughput in source lines per minute.

Paper: LINGUIST-86 processes attribute grammars at 350–500 lines/min
(its own grammar) and "a little more than 400" (the Pascal grammar),
versus the host system's hand-built compilers at 400–900 lines/min —
"reasonably competitive", i.e. the same order of magnitude with the
hand compiler somewhat faster.

We measure: (a) the Linguist pipeline over its own ``.ag`` sources;
(b) the *generated* Pascal front end over generated programs; and
(c) the hand-written one-pass compiler over the same programs.  The
reproduction target is the ratio band: hand compiler faster, but by a
single-digit factor, not orders of magnitude.
"""

import time

import pytest

from repro.baseline import HandPascalCompiler
from repro.core import Linguist
from repro.grammars import load_source
from repro.workloads import generate_pascal_program


def lines_per_minute(n_lines: int, seconds: float) -> float:
    return n_lines / seconds * 60.0 if seconds > 0 else float("inf")


def test_t4_linguist_throughput_on_ag_sources(benchmark, report):
    source = load_source("pascal")
    n_lines = len(source.splitlines())
    result = benchmark.pedantic(lambda: Linguist(source), rounds=3, iterations=1)
    lpm = lines_per_minute(n_lines, benchmark.stats.stats.mean)
    text = (
        "EXP-T4a: Linguist pipeline throughput (pascal.ag, "
        f"{n_lines} lines)\n"
        f"  paper:    ~400 lines/min (8086)\n"
        f"  measured: {lpm:,.0f} lines/min"
    )
    report("t4a_linguist_throughput", text)
    # Pascal's original 2-pass partition fuses down to a single pass
    # (pass 2 subsumes pass 1's work in its own direction).
    assert result.n_passes == 1
    assert lpm > 0


def test_t4_generated_vs_hand_compiler(pascal_translator, report):
    program = generate_pascal_program(n_statements=400, seed=17)
    n_lines = len(program.splitlines())
    hand = HandPascalCompiler()

    # Warm both paths once (scanner table construction etc.).
    pascal_translator.translate(program)
    hand.compile(program)

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    ag_seconds = timed(lambda: pascal_translator.translate(program))
    hand_seconds = timed(lambda: hand.compile(program))
    ag_lpm = lines_per_minute(n_lines, ag_seconds)
    hand_lpm = lines_per_minute(n_lines, hand_seconds)
    ratio = hand_lpm / ag_lpm

    text = "\n".join([
        f"EXP-T4b: compiling a generated {n_lines}-line Pascal program",
        f"{'translator':<38} {'lines/min':>12}",
        f"{'generated AG front end (fused, 1 pass)':<38} {ag_lpm:>12,.0f}",
        f"{'hand-written one-pass compiler':<38} {hand_lpm:>12,.0f}",
        f"hand/generated speed ratio: {ratio:.1f}x "
        "(paper band: 400-900 vs 350-500, i.e. ~0.8x-2.6x)",
        "note: our ratio is inflated relative to the paper because the",
        "baseline pays no file I/O at all (the original hand compilers",
        "were overlayed and disk-bound like the generated ones), while",
        "the AG evaluator faithfully streams the APT through serialized",
        "intermediate spools (pass fusion and adaptive in-memory",
        "spooling have since cut that cost substantially).",
    ])
    report("t4b_generated_vs_hand", text)

    # Shape: the hand compiler is faster by a constant factor, not by
    # orders of magnitude; both scale linearly in program size.
    assert ratio < 60, "generated evaluator catastrophically slower"
    assert ag_lpm > 0


def test_t4_throughput_benchmark(benchmark, pascal_translator):
    program = generate_pascal_program(n_statements=120, seed=23)
    pascal_translator.translate(program)  # warm
    benchmark(lambda: pascal_translator.translate(program))


def test_t4_throughput_is_flat_across_sizes(pascal_translator, report):
    """The paper reports throughput in lines/min — a meaningful metric
    only because evaluation scales linearly.  Verify lines/min stays
    roughly constant as programs grow 16x."""
    rows = []
    for n in (50, 200, 800):
        program = generate_pascal_program(n_statements=n, seed=61)
        n_lines = len(program.splitlines())
        pascal_translator.translate(program)  # warm
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            pascal_translator.translate(program)
            best = min(best, time.perf_counter() - start)
        rows.append((n_lines, lines_per_minute(n_lines, best)))
    lines = ["EXP-T4c: throughput flatness (lines/min vs program size)",
             f"{'lines':>8} {'lines/min':>12}"]
    for n_lines, lpm in rows:
        lines.append(f"{n_lines:>8} {lpm:>12,.0f}")
    report("t4c_scaling", "\n".join(lines))
    # Throughput within a 3x band across a 16x size range = linear scaling.
    lpms = [lpm for _, lpm in rows]
    assert max(lpms) < 3 * min(lpms)
