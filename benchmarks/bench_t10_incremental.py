"""EXP-T10 — incremental re-translation: the dirty-spine dividend.

The paper's §V economics price a translation by the semantic-function
work its passes perform.  Incremental re-translation
(:mod:`repro.passes.incremental`, ``translate(..., memo_dir=)``, see
docs/performance.md) attacks exactly that term: after a warming run,
a re-translation of an *edited* input splices the sealed output
records of every clean subtree and re-evaluates only the dirty spine
— the path from the edited token to the root.

This benchmark quantifies the dividend on the calc workload with a
single-token edit (a literal in the last statement is bumped; the tree
shape is unchanged, so exactly the spine is dirty):

* **wall clock** — from-scratch vs memo-spliced translation of the
  edited program, best-of-N (each incremental round re-warms a fresh
  memo from the *base* program, so every measurement is a true
  first-edit re-translation, not a second splice of the edit);
* **semantic-function invocations** — every external call funnels
  through :meth:`FunctionLibrary.call`; the spliced run must invoke
  fewer than ``INVOCATION_CEILING`` (20%) of the from-scratch count;
* **hit rate** — the fraction of output records spliced rather than
  re-evaluated on the edited run (the pure re-run splices 100%);
* **byte identity** — the spliced result equals the from-scratch one.

The regression gate (``check_regression.py``) tracks
``incremental_speedup`` and ``incremental_hit_rate`` against the
committed baseline; the memo-disabled no-tax promise rides the
existing 3% disabled-mode gate (the memo threads through the same
``translate`` path the provenance gate times with both features off).
"""

import re
import time

from repro.workloads import generate_calc_program

N_STATEMENTS = 200
SEED = 17
ROUNDS = 5
#: Minimum tolerated wall-clock speedup of the spliced edit re-run.
SPEEDUP_FLOOR = 3.0
#: Maximum fraction of from-scratch semantic-function invocations the
#: spliced re-run may perform.
INVOCATION_CEILING = 0.20


def edit_last_statement(text: str) -> str:
    """Bump the first literal of the last statement — a single-token
    edit that leaves the tree shape intact."""
    lines = text.split(" ;\n")
    edited, n = re.subn(
        r"\d+", lambda m: str(int(m.group()) + 1), lines[-1], count=1
    )
    assert n == 1, f"no literal in the last statement: {lines[-1]!r}"
    return " ;\n".join(lines[:-1] + [edited])


def test_t10_incremental(report, tmp_path):
    from repro.core import Linguist
    from repro.grammars import load_source, scanner_and_library
    from repro.obs import MetricsRegistry
    from tests.evalharness import canonical_attrs

    spec, library = scanner_and_library("calc")
    calls = {"n": 0}
    inner_call = library.call

    def counting_call(name, *args):
        calls["n"] += 1
        return inner_call(name, *args)

    library.call = counting_call

    translator = Linguist(load_source("calc")).make_translator(
        spec, library=library
    )
    program = generate_calc_program(N_STATEMENTS, seed=SEED)
    edited = edit_last_statement(program)
    n_lines = len(edited.splitlines())
    translator.translate(program)  # warm the hot path

    # From-scratch reference on the edited text: wall clock and the
    # semantic-function invocation count.
    cold_best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        cold_result = translator.translate(edited)
        cold_best = min(cold_best, time.perf_counter() - start)
    calls["n"] = 0
    cold_result = translator.translate(edited)
    cold_calls = calls["n"]
    assert cold_calls > 0, "calc stopped exercising the function library"

    # Incremental: warm a fresh memo from the BASE program each round,
    # then time the edited re-translation (first edit, not re-splice).
    inc_best = float("inf")
    for r in range(ROUNDS):
        memo = str(tmp_path / f"memo{r}")
        translator.translate(program, memo_dir=memo)
        start = time.perf_counter()
        inc_result = translator.translate(edited, memo_dir=memo)
        inc_best = min(inc_best, time.perf_counter() - start)
        assert canonical_attrs(inc_result.root_attrs) == canonical_attrs(
            cold_result.root_attrs
        ), "memo-spliced edit re-run is not byte-identical"

    # Instrumented edit re-run: invocation count, splice counters, and
    # the total output record count (a pure re-run splices everything,
    # so its spliced_records counter IS the stream length).
    memo = str(tmp_path / "memo-count")
    translator.translate(program, memo_dir=memo)
    full = MetricsRegistry()
    translator.translate(program, memo_dir=memo, metrics=full)
    total_records = full.counter("incremental.spliced_records").value
    assert total_records > 0, "pure re-run failed to splice"
    translator.translate(program, memo_dir=memo)  # re-warm for the edit
    calls["n"] = 0
    metrics = MetricsRegistry()
    translator.translate(edited, memo_dir=memo, metrics=metrics)
    inc_calls = calls["n"]
    hits = metrics.counter("incremental.hits").value
    spliced = metrics.counter("incremental.spliced_records").value
    assert hits >= 1, "single-token edit produced no subtree hit"

    speedup = cold_best / inc_best
    ratio = inc_calls / cold_calls
    hit_rate = spliced / total_records

    lines = [
        f"EXP-T10: incremental re-translation, calc x {N_STATEMENTS} "
        f"statements ({n_lines} lines), single-token edit in the last "
        f"statement (best of {ROUNDS})",
        f"  from scratch:  {cold_best * 1000:.2f} ms, "
        f"{cold_calls} semantic-function invocation(s)",
        f"  memo-spliced:  {inc_best * 1000:.2f} ms, "
        f"{inc_calls} invocation(s)  "
        f"[{hits} subtree hit(s), {spliced}/{total_records} records "
        f"spliced, hit rate {hit_rate:.1%}]",
        f"  speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)",
        f"  invocation ratio: {ratio:.1%} "
        f"(ceiling {INVOCATION_CEILING:.0%})",
        "  byte identity: PASS (spliced == from-scratch on every round)",
    ]
    report("t10_incremental", "\n".join(lines))

    assert ratio < INVOCATION_CEILING, (
        f"edit re-run performed {ratio:.1%} of the from-scratch "
        f"semantic-function invocations (ceiling {INVOCATION_CEILING:.0%})"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"edit re-run speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x"
    )
