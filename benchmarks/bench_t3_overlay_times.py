"""EXP-T3 — §V per-overlay times, processing the system's own grammar.

Paper (seconds on the 8086):

    parser overlay             - 80   first attrib eval overlay - 25
    second attrib eval overlay - 42   evaluability test overlay -  9
    third attrib eval overlay  - 24   listing generation        - 63
    TOTAL                      - 243

Shape to reproduce: the pipeline is dominated by the input-consuming
and output-producing overlays (parse + listing ≈ 60 % of the paper's
total), while the evaluability test is a small fraction.  Absolute
times differ by four decades of hardware, so we compare *shares*.
"""

import pytest

from repro.core import Linguist
from repro.grammars import load_source
from repro.obs import MetricsRegistry

PAPER_SECONDS = {
    "parser overlay": 80,
    "first attrib eval overlay": 25,
    "second attrib eval overlay": 42,
    "evaluability test overlay": 9,
    "third attrib eval overlay": 24,
    "listing generation overlay": 63,
}
PAPER_TOTAL = 243


def test_t3_overlay_times_table(benchmark, report, metrics_snapshot):
    source = load_source("linguist")
    linguist = benchmark.pedantic(
        lambda: Linguist(source, metrics=MetricsRegistry()), rounds=3, iterations=1
    )
    # Per-overlay times come from the unified telemetry registry — the
    # same "overlay.<name>.seconds" counters `python -m repro profile`
    # renders — so the benchmark cannot diverge from the telemetry.
    snap = metrics_snapshot(linguist)
    timing = {
        name: snap[f"overlay.{name}.seconds"]
        for name in PAPER_SECONDS
        if f"overlay.{name}.seconds" in snap
    }
    timing["evaluator generation overlay"] = snap.get(
        "overlay.evaluator generation overlay.seconds", 0.0
    )
    # The paper's table excludes evaluator generation ("we exclude this
    # time for comparison purposes"), and so do the shares below.
    measured_total = sum(
        seconds for name, seconds in timing.items()
        if name != "evaluator generation overlay"
    )

    lines = [
        "EXP-T3: per-overlay time, processing the self grammar",
        f"{'overlay':<30} {'paper s':>8} {'paper %':>8} "
        f"{'measured ms':>12} {'measured %':>11}",
    ]
    for name, paper_s in PAPER_SECONDS.items():
        ours = timing.get(name, 0.0)
        lines.append(
            f"{name:<30} {paper_s:>8} {100 * paper_s / PAPER_TOTAL:>7.0f}% "
            f"{ours * 1000:>12.1f} {100 * ours / measured_total:>10.0f}%"
        )
    gen = timing.get("evaluator generation overlay", 0.0)
    lines.append(
        f"{'(evaluator generation)':<30} {'excl':>8} {'':>8} {gen * 1000:>12.1f}"
    )
    lines.append(
        f"{'TOTAL (excl. generation)':<30} {PAPER_TOTAL:>8} {'100':>7}% "
        f"{measured_total * 1000:>12.1f} {'100':>10}%"
    )
    report("t3_overlay_times", "\n".join(lines))

    # Shape: the evaluability test is a minor share, as in the paper (4%).
    assert timing["evaluability test overlay"] < 0.5 * measured_total
    # Every overlay ran and took measurable (non-negative) time.
    assert set(PAPER_SECONDS) <= set(timing)
