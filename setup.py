from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LINGUIST-86 reproduction: a translator-writing-system based on "
        "attribute grammars with alternating-pass, file-resident evaluation "
        "and static subsumption"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.grammars": ["*.ag", "*.pas"]},
    python_requires=">=3.9",
)
