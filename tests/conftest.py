"""Shared pytest configuration for the test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden files under tests/golden/ from the "
        "current generator output instead of comparing against them "
        "(run, inspect `git diff`, commit)",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
