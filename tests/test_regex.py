"""Unit tests for the scanner-generator substrate (S4)."""

import pytest

from repro.errors import ScanError
from repro.regex import parse_regex, build_nfa, determinize, minimize
from repro.regex.ast import CharSet, char_code, OTHER
from repro.regex.dfa import DEAD
from repro.regex.generator import ScannerSpec


def matches(pattern: str, text: str) -> bool:
    """Does ``pattern`` match ``text`` exactly?"""
    nfa = build_nfa([("tok", parse_regex(pattern))])
    dfa = minimize(determinize(nfa))
    state = dfa.start
    for ch in text:
        state = dfa.step(state, char_code(ch))
        if state == DEAD:
            return False
    return dfa.accept_tag(state) == "tok"


class TestRegexMatching:
    @pytest.mark.parametrize(
        "pattern,text,expect",
        [
            ("abc", "abc", True),
            ("abc", "ab", False),
            ("abc", "abcd", False),
            ("a|b", "a", True),
            ("a|b", "b", True),
            ("a|b", "c", False),
            ("a*", "", True),
            ("a*", "aaaa", True),
            ("a+", "", False),
            ("a+", "aaa", True),
            ("a?", "", True),
            ("a?", "a", True),
            ("a?", "aa", False),
            ("(ab)+", "ababab", True),
            ("(ab)+", "aba", False),
            ("[a-c]", "b", True),
            ("[a-c]", "d", False),
            ("[^a-c]", "d", True),
            ("[^a-c]", "b", False),
            (r"\d+", "123", True),
            (r"\d+", "12a", False),
            (r"\w+", "abc_123", True),
            (r"[a-zA-Z][a-zA-Z0-9$]*", "attrib$list0", True),
            (r"[a-zA-Z][a-zA-Z0-9$]*", "0bad", False),
            (".", "x", True),
            (".", "\n", False),
            (r"\n", "\n", True),
            (r"a(b|c)*d", "abcbcd", True),
            (r"a(b|c)*d", "ad", True),
            (r"a(b|c)*d", "abc", False),
            ("[]]", "]", True),
            (r"\-", "-", True),
            ("x|", "", True),  # empty right alternative
            ("x|", "x", True),
        ],
    )
    def test_match(self, pattern, text, expect):
        assert matches(pattern, text) is expect

    def test_non_ascii_maps_to_other_bucket(self):
        assert char_code("é") == OTHER
        assert char_code("a") == ord("a")

    def test_negated_class_includes_other(self):
        assert matches("[^a]", "é")

    def test_parse_errors(self):
        with pytest.raises(ScanError):
            parse_regex("(ab")
        with pytest.raises(ScanError):
            parse_regex("*a")
        with pytest.raises(ScanError):
            parse_regex("a)")


class TestMinimization:
    def test_minimize_reduces_states(self):
        # (a|b)*abb — the classic example; minimization must shrink it.
        nfa = build_nfa([("t", parse_regex("(a|b)*abb"))])
        big = determinize(nfa)
        small = minimize(big)
        assert small.n_states <= big.n_states
        assert small.n_states == 4  # the textbook minimal DFA size

    def test_minimized_equivalent(self):
        pattern = "(a|b)*abb"
        nfa = build_nfa([("t", parse_regex(pattern))])
        big = determinize(nfa)
        small = minimize(big)
        import itertools

        for n in range(0, 6):
            for combo in itertools.product("ab", repeat=n):
                text = "".join(combo)
                s1, s2 = big.start, small.start
                ok1 = ok2 = True
                for ch in text:
                    if s1 != DEAD:
                        s1 = big.step(s1, char_code(ch))
                    if s2 != DEAD:
                        s2 = small.step(s2, char_code(ch))
                ok1 = s1 != DEAD and big.accept_tag(s1) is not None
                ok2 = s2 != DEAD and small.accept_tag(s2) is not None
                assert ok1 == ok2, text

    def test_distinct_tokens_not_merged(self):
        spec = ScannerSpec()
        spec.rule("A", "a")
        spec.rule("B", "b")
        sc = spec.generate()
        kinds = [t.kind for t in sc.scan("ab")]
        assert kinds == ["A", "B", "$eof"]


class TestScanner:
    def make_scanner(self):
        spec = ScannerSpec()
        spec.rule("WS", r"[ \t\n]+", skip=True)
        spec.rule("IDENT", r"[a-zA-Z][a-zA-Z0-9$]*", intern=True)
        spec.rule("NUMBER", r"\d+")
        spec.rule("ARROW", r"->")
        spec.rule("MINUS", r"\-")
        spec.rule("DOT", r"\.")
        spec.keyword("if", "IF")
        return spec.generate()

    def test_maximal_munch(self):
        sc = self.make_scanner()
        kinds = [t.kind for t in sc.scan("a->b")]
        assert kinds == ["IDENT", "ARROW", "IDENT", "$eof"]

    def test_minus_vs_arrow(self):
        sc = self.make_scanner()
        kinds = [t.kind for t in sc.scan("a - b")]
        assert kinds == ["IDENT", "MINUS", "IDENT", "$eof"]

    def test_keywords_win_over_identifiers(self):
        sc = self.make_scanner()
        toks = sc.scan("if iffy")
        assert toks[0].kind == "IF"
        assert toks[1].kind == "IDENT"

    def test_interning(self):
        sc = self.make_scanner()
        toks = sc.scan("alpha beta alpha")
        assert toks[0].name_index == toks[2].name_index != 0
        assert sc.names.spelling(toks[0].name_index) == "alpha"
        # numbers are not interned
        assert sc.scan("42")[0].name_index == 0

    def test_locations(self):
        sc = self.make_scanner()
        toks = sc.scan("a\n  b")
        assert (toks[0].location.line, toks[0].location.column) == (1, 1)
        assert (toks[1].location.line, toks[1].location.column) == (2, 3)

    def test_illegal_character(self):
        sc = self.make_scanner()
        with pytest.raises(ScanError):
            sc.scan("a @ b")

    def test_priority_order_breaks_ties(self):
        spec = ScannerSpec()
        spec.rule("AB", "ab")
        spec.rule("A", "a|ab")
        sc = spec.generate()
        assert sc.scan("ab")[0].kind == "AB"

    def test_longest_match_beats_priority(self):
        spec = ScannerSpec()
        spec.rule("A", "a")
        spec.rule("AAB", "aab")
        sc = spec.generate()
        kinds = [t.kind for t in sc.scan("aab")]
        assert kinds == ["AAB", "$eof"]

    def test_render_tables_is_importable_python(self):
        from repro.regex.generator import ScannerGenerator

        spec = ScannerSpec()
        spec.rule("A", "a+")
        gen = ScannerGenerator(spec)
        src = gen.render_tables("demo")
        ns = {}
        exec(src, ns)
        assert ns["N_STATES"] >= 1
        assert len(ns["TRANS"]) == ns["N_STATES"] * ns["ALPHABET_SIZE"]
