"""Tests for the hand-written comparator compiler (S19) and the workload
generators (S18) — including the AG-vs-baseline equivalence check."""

import pytest

from repro.baseline import HandPascalCompiler
from repro.core import Linguist
from repro.grammars import load_source, library_for
from repro.grammars.scanners import (
    binary_scanner_spec,
    calc_scanner_spec,
    pascal_scanner_spec,
)
from repro.workloads import (
    generate_binary_numeral,
    generate_calc_program,
    generate_pascal_program,
    generate_ag_source,
)


@pytest.fixture(scope="module")
def pascal_translator():
    lg = Linguist(load_source("pascal"))
    return lg.make_translator(pascal_scanner_spec(), library=library_for("pascal"))


@pytest.fixture(scope="module")
def hand_compiler():
    return HandPascalCompiler()


GOOD = """
program p;
var i, total : integer; run : boolean;
begin
  i := 10;
  total := 0;
  run := true;
  while run do
  begin
    total := total + i * i;
    i := i - 1;
    run := i > 0
  end;
  if total > 100 then writeln(total) else writeln(0)
end.
"""

BAD = """
program p;
var a : integer; a : boolean; f : boolean;
begin
  a := 1 + true;
  missing := 2;
  if a + 1 then writeln(1) else writeln(2);
  while 3 do f := not 5
end.
"""


class TestHandCompiler:
    def test_clean_program_compiles(self, hand_compiler):
        result = hand_compiler.compile(GOOD)
        assert result.ok
        assert result.code[-1] == "HALT"

    def test_error_program_messages(self, hand_compiler):
        result = hand_compiler.compile(BAD)
        texts = [m[1] for m in result.msgs]
        assert "variable declared twice" in texts
        assert "undeclared variable" in texts
        assert "integer operands required" in texts
        assert "boolean condition required" in texts
        assert "boolean operand required" in texts

    def test_syntax_error_raises(self, hand_compiler):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            hand_compiler.compile("program ; begin end.")


class TestEquivalence:
    """The generated AG front end and the hand compiler must agree —
    same code, same messages — on every input."""

    def assert_same(self, translator, hand, source):
        ag_result = translator.translate(source)
        hand_result = hand.compile(source)
        assert list(ag_result["CODE"]) == hand_result.code
        ag_msgs = sorted((m[0], m[1]) for m in ag_result["MSGS"])
        hand_msgs = sorted((m[0], m[1]) for m in hand_result.msgs)
        assert ag_msgs == hand_msgs

    def test_good_program(self, pascal_translator, hand_compiler):
        self.assert_same(pascal_translator, hand_compiler, GOOD)

    def test_bad_program_messages_agree(self, pascal_translator, hand_compiler):
        ag_result = pascal_translator.translate(BAD)
        hand_result = hand_compiler.compile(BAD)
        assert sorted(m[1] for m in ag_result["MSGS"]) == sorted(
            m[1] for m in hand_result.msgs
        )

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_generated_workloads_agree(self, pascal_translator, hand_compiler, seed):
        source = generate_pascal_program(n_statements=30, seed=seed)
        self.assert_same(pascal_translator, hand_compiler, source)


class TestWorkloadGenerators:
    def test_pascal_workload_is_valid(self, pascal_translator):
        source = generate_pascal_program(n_statements=50, seed=9)
        result = pascal_translator.translate(source)
        assert list(result["MSGS"]) == []

    def test_pascal_workload_deterministic(self):
        assert generate_pascal_program(20, seed=5) == generate_pascal_program(20, seed=5)
        assert generate_pascal_program(20, seed=5) != generate_pascal_program(20, seed=6)

    def test_calc_workload_is_valid(self):
        lg = Linguist(load_source("calc"))
        t = lg.make_translator(calc_scanner_spec())
        source = generate_calc_program(n_statements=40, seed=2)
        result = t.translate(source)
        assert "OUT" in result

    def test_binary_workload_is_valid(self):
        lg = Linguist(load_source("binary"))
        t = lg.make_translator(binary_scanner_spec())
        numeral = generate_binary_numeral(n_bits=48, seed=4)
        assert "." in numeral
        result = t.translate(numeral)
        assert result["VAL"] >= 0

    def test_ag_workload_is_valid(self):
        from repro.frontend import load_grammar
        from repro.passes import assign_passes, Direction

        source = generate_ag_source(n_productions=20, seed=8)
        ag = load_grammar(source)
        assignment = assign_passes(ag, Direction.R2L)
        assert assignment.n_passes >= 1

    def test_ag_workload_scales(self):
        small = generate_ag_source(n_productions=10)
        large = generate_ag_source(n_productions=60)
        assert len(large.splitlines()) > len(small.splitlines())

    def test_workload_sizes_scale(self):
        small = generate_pascal_program(10)
        large = generate_pascal_program(200)
        assert len(large.splitlines()) > 5 * len(small.splitlines())
