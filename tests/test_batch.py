"""Tests for the parallel batch driver.

The contract (ISSUE acceptance): ``repro batch -j 4`` over ≥20
generated inputs produces output *byte-identical* to sequential
translation, with one injected failure isolated in its
:class:`~repro.batch.BatchItem` while every other input completes.
"""

import os

import pytest

from repro.batch import (
    BatchItem,
    BatchReport,
    WorkerSpec,
    build_batch_translator,
)
from repro.errors import EvaluationError
from repro.grammars import load_source, source_path
from repro.obs import MetricsRegistry, Tracer
from repro.workloads.generators import generate_calc_program
from tests.evalharness import canonical_attrs

#: ≥20 generated inputs + 1 injected syntax error in the middle.
INPUTS = [generate_calc_program(4 + i % 7, seed=100 + i) for i in range(20)]
BAD_INDEX = 10
INPUTS.insert(BAD_INDEX, "let ( = broken")


def make_translator(tmp_path, metrics=None, tracer=None):
    spec = WorkerSpec(
        source=load_source("calc"),
        filename=source_path("calc"),
        grammar_name="calc",
        direction="r2l",
        cache_dir=str(tmp_path / "cache"),
    )
    return build_batch_translator(spec, metrics=metrics, tracer=tracer)


def summarize(report: BatchReport):
    return [
        (item.index, item.ok,
         canonical_attrs(item.result.root_attrs) if item.ok else item.error_type)
        for item in report.items
    ]


class TestBatch:
    def test_parallel_matches_sequential_with_injected_failure(self, tmp_path):
        translator = make_translator(tmp_path)
        seq = translator.translate_many(INPUTS, jobs=1)
        par = translator.translate_many(INPUTS, jobs=4)
        assert len(seq.items) == len(par.items) == len(INPUTS) >= 21
        assert summarize(seq) == summarize(par)
        # exactly the injected failure failed, and it is isolated
        assert seq.n_failed == par.n_failed == 1
        assert not seq.items[BAD_INDEX].ok
        assert seq.items[BAD_INDEX].error_type == "ParseError"
        assert all(
            item.ok for item in par.items if item.index != BAD_INDEX
        )
        # ...and matches a plain one-at-a-time translate()
        for item in seq.items:
            if item.ok:
                direct = translator.translate(INPUTS[item.index])
                assert canonical_attrs(direct.root_attrs) == canonical_attrs(
                    item.result.root_attrs
                )

    def test_report_shape(self, tmp_path):
        translator = make_translator(tmp_path)
        report = translator.translate_many(INPUTS[:3], jobs=1)
        assert report.ok and report.n_ok == 3 and report.n_failed == 0
        assert [item.index for item in report.items] == [0, 1, 2]
        assert all(item.seconds >= 0 for item in report.items)
        report.raise_if_failed()  # no-op when clean

    def test_raise_if_failed(self, tmp_path):
        translator = make_translator(tmp_path)
        report = translator.translate_many(["garbage (("], jobs=1)
        assert not report.ok
        assert report.failures()[0].error_type == "ParseError"
        with pytest.raises(EvaluationError, match="1 of 1 batch input"):
            report.raise_if_failed()

    def test_metrics_and_trace(self, tmp_path):
        metrics = MetricsRegistry()
        tracer = Tracer()
        translator = make_translator(tmp_path)
        translator.translate_many(
            INPUTS[:5], jobs=1, metrics=metrics, tracer=tracer
        )
        snap = metrics.snapshot()
        assert snap["batch.inputs"] == 5
        assert snap["batch.ok"] == 5
        assert snap.get("batch.failed", 0) == 0
        assert snap["batch.jobs"] == 1
        assert snap["batch.item.seconds"]["count"] == 5
        names = [r.name for r in tracer.records]
        assert names.count("batch.item") == 5
        assert "batch.start" in names and "batch.done" in names

    def test_parallel_needs_spawn_spec(self, tmp_path):
        """A translator built outside the batch path cannot fan out."""
        from repro.core import Linguist
        from repro.grammars import scanner_and_library

        spec, library = scanner_and_library("calc")
        translator = Linguist(load_source("calc")).make_translator(
            spec, library=library
        )
        with pytest.raises(EvaluationError, match="worker spec"):
            translator.translate_many(["let a = 1 ; print a"], jobs=2)
        # sequential still fine without a spec
        report = translator.translate_many(["let a = 1 ; print a"], jobs=1)
        assert report.ok

    def test_workers_rebuild_when_cache_cleared(self, tmp_path):
        """Clearing the cache between construction and fan-out degrades
        to a per-worker rebuild — slower, never wrong."""
        from repro.buildcache import BuildCache

        translator = make_translator(tmp_path)
        BuildCache(str(tmp_path / "cache")).clear()
        report = translator.translate_many(INPUTS[:4], jobs=2)
        assert report.ok
        seq = translator.translate_many(INPUTS[:4], jobs=1)
        assert summarize(report) == summarize(seq)


class TestBatchTimeout:
    def test_hung_input_becomes_failed_item(self, tmp_path, monkeypatch):
        from repro.testing.faults import HANG_MARKER_ENV, HANG_SECONDS_ENV

        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        metrics = MetricsRegistry()
        translator = make_translator(tmp_path)
        texts = [INPUTS[0], "@@hang@@", INPUTS[1]]
        report = translator.translate_many(
            texts, jobs=2, timeout=1.0, metrics=metrics
        )
        assert len(report.items) == 3
        assert not report.interrupted
        hung = report.items[1]
        assert not hung.ok
        assert hung.error_type == "TranslationTimeout"
        assert "deadline" in hung.error
        # the other inputs completed on healthy (or restarted) workers
        assert report.items[0].ok and report.items[2].ok
        assert metrics.snapshot()["batch.timeouts"] == 1

    def test_timeout_with_one_job_uses_supervised_worker(
        self, tmp_path, monkeypatch
    ):
        """``jobs=1`` with a timeout still runs supervised: an
        in-process translation could never be preempted."""
        from repro.testing.faults import HANG_MARKER_ENV, HANG_SECONDS_ENV

        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        translator = make_translator(tmp_path)
        report = translator.translate_many(
            ["@@hang@@", INPUTS[0]], jobs=1, timeout=1.0
        )
        assert report.items[0].error_type == "TranslationTimeout"
        assert report.items[1].ok

    def test_generous_timeout_changes_nothing(self, tmp_path):
        translator = make_translator(tmp_path)
        timed = translator.translate_many(INPUTS[:6], jobs=2, timeout=60.0)
        plain = translator.translate_many(INPUTS[:6], jobs=2)
        assert summarize(timed) == summarize(plain)


class TestBatchInterrupt:
    def test_keyboard_interrupt_returns_partial_report(
        self, tmp_path, monkeypatch
    ):
        """Ctrl-C mid-batch kills the workers and reports what finished
        (the old ``multiprocessing.Pool`` path hung in ``join()``)."""
        import _thread
        import threading

        from repro.testing.faults import HANG_MARKER_ENV, HANG_SECONDS_ENV

        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "60")
        metrics = MetricsRegistry()
        translator = make_translator(tmp_path)
        # Two workers: one finishes the fast inputs, one wedges on the
        # hang; without a timeout= only Ctrl-C ends the run.
        texts = [*INPUTS[:4], "@@hang@@"]
        timer = threading.Timer(2.0, _thread.interrupt_main)
        timer.start()
        try:
            report = translator.translate_many(
                texts, jobs=2, metrics=metrics
            )
        finally:
            timer.cancel()
        assert report.interrupted
        assert len(report.items) < len(texts)  # partial by construction
        assert all(item.ok for item in report.items)
        assert metrics.snapshot()["batch.interrupted"] == 1


class TestBatchCLI:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_cli_parallel_output_identical_to_sequential(self, tmp_path, capsys):
        ag = source_path("calc")
        cache = str(tmp_path / "cache")
        out_seq = tmp_path / "seq"
        out_par = tmp_path / "par"
        base = [ag, *INPUTS, "--cache-dir", cache]
        rc_seq = self.run_cli(
            ["batch", *base, "-j", "1", "--output-dir", str(out_seq)]
        )
        rc_par = self.run_cli(
            ["batch", *base, "-j", "4", "--output-dir", str(out_par)]
        )
        capsys.readouterr()
        assert rc_seq == rc_par == 1  # the injected failure
        seq_files = sorted(os.listdir(out_seq))
        par_files = sorted(os.listdir(out_par))
        assert seq_files == par_files
        assert len(seq_files) == len(INPUTS) - 1  # all but the bad input
        for name in seq_files:
            with open(out_seq / name, "rb") as f:
                seq_bytes = f.read()
            with open(out_par / name, "rb") as f:
                par_bytes = f.read()
            assert seq_bytes == par_bytes, f"{name} differs between -j1 and -j4"

    def test_cli_output_matches_repro_run(self, tmp_path, capsys):
        """`repro batch` output is byte-identical to `repro run`."""
        ag = source_path("calc")
        text = generate_calc_program(6, seed=5)
        rc = self.run_cli(["run", "calc", text])
        run_out = capsys.readouterr().out
        out_dir = tmp_path / "out"
        rc2 = self.run_cli(
            ["batch", ag, text, "--cache-dir", str(tmp_path / "c"),
             "--output-dir", str(out_dir)]
        )
        capsys.readouterr()
        assert rc == 0 and rc2 == 0
        with open(out_dir / "0000.out", "r", encoding="utf-8") as f:
            assert f.read() == run_out

    def test_cli_exit_zero_when_clean(self, tmp_path, capsys):
        ag = source_path("calc")
        rc = self.run_cli(
            ["batch", ag, "let a = 1 ; print a",
             "--cache-dir", str(tmp_path / "c")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "OUT = [1]" in out

    def test_cli_timeout_flag(self, tmp_path, capsys, monkeypatch):
        from repro.testing.faults import HANG_MARKER_ENV, HANG_SECONDS_ENV

        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        ag = source_path("calc")
        rc = self.run_cli(
            ["batch", ag, "@@hang@@", "let a = 1 ; print a",
             "--timeout", "1", "--cache-dir", str(tmp_path / "c")]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "TranslationTimeout" in captured.err
        assert "1/2 ok" in captured.err


def shm_segments():
    """Names of live ``l86plane`` segments under /dev/shm (a sweep set:
    tests capture it before a run and assert it is unchanged after, so
    planes held by *other* suites in the same process don't flake us)."""
    from repro.buildcache.shm import plane_segments

    return set(plane_segments())


class TestBatchPipelineIsolation:
    """Failure isolation under the pipelined (scan-ahead) worker loop:
    a worker dying *mid-input* must cost exactly that input, and no
    shared-memory segment may outlive the batch."""

    def test_worker_death_mid_pipelined_input_is_isolated(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL-equivalent death (``os._exit(3)`` in the scan stage)
        while inputs are pipelined behind the dying one: the culprit
        fails as ``WorkerCrashed`` after its bounded re-dispatch,
        every innocent queue-mate completes, and the plane is swept."""
        from repro.testing.faults import DIE_MARKER_ENV

        monkeypatch.setenv(DIE_MARKER_ENV, "@@die@@")
        before = shm_segments()
        metrics = MetricsRegistry()
        translator = make_translator(tmp_path)
        die_index = 6
        texts = [*INPUTS[:die_index], "@@die@@", *INPUTS[die_index:10]]
        report = translator.translate_many(
            texts, jobs=2, pipeline_depth=2, metrics=metrics
        )
        assert len(report.items) == len(texts)
        victim = report.items[die_index]
        assert not victim.ok
        assert victim.error_type == "WorkerCrashed"
        assert report.n_failed == 1
        assert all(
            item.ok for item in report.items if item.index != die_index
        ), "an innocent queue-mate of the dying input was lost"
        # ...and the survivors are byte-identical to sequential runs.
        seq = translator.translate_many(
            [t for t in texts if t != "@@die@@"], jobs=1
        )
        survivors = [
            (item.ok, canonical_attrs(item.result.root_attrs))
            for item in report.items if item.index != die_index
        ]
        assert survivors == [
            (item.ok, canonical_attrs(item.result.root_attrs))
            for item in seq.items
        ]
        assert shm_segments() == before, "batch leaked a plane segment"

    def test_interrupt_during_pipelined_batch(self, tmp_path, monkeypatch):
        """Ctrl-C mid-pipelined-batch: a partial report of only
        completed items comes back and no segment is left behind."""
        import _thread
        import threading

        from repro.testing.faults import HANG_MARKER_ENV, HANG_SECONDS_ENV

        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "60")
        before = shm_segments()
        translator = make_translator(tmp_path)
        texts = [*INPUTS[:4], "@@hang@@", *INPUTS[4:8]]
        timer = threading.Timer(2.0, _thread.interrupt_main)
        timer.start()
        try:
            report = translator.translate_many(
                texts, jobs=2, pipeline_depth=3
            )
        finally:
            timer.cancel()
        assert report.interrupted
        assert len(report.items) < len(texts)
        assert all(item.ok for item in report.items)
        assert shm_segments() == before, "interrupt leaked a plane segment"

    def test_deep_pipeline_matches_sequential(self, tmp_path):
        """``pipeline_depth=4`` reorders nothing observable: the report
        is byte-identical (per index) to the sequential run, injected
        failure included."""
        translator = make_translator(tmp_path)
        seq = translator.translate_many(INPUTS, jobs=1)
        deep = translator.translate_many(INPUTS, jobs=2, pipeline_depth=4)
        assert summarize(seq) == summarize(deep)


class TestBatchShmPlane:
    """The zero-copy artifact plane: attach does no cache or build
    work, the exporter sweeps its segment, and losing the plane
    degrades to cache rehydration — never a failure."""

    def test_parallel_run_exports_and_sweeps_plane(self, tmp_path):
        before = shm_segments()
        metrics = MetricsRegistry()
        translator = make_translator(tmp_path)
        report = translator.translate_many(INPUTS[:6], jobs=2, metrics=metrics)
        assert report.ok
        snap = metrics.snapshot()
        assert snap["batch.shm.export"] == 1
        assert snap["batch.shm.export_bytes"] > 0
        assert snap["batch.shm.frames"] >= 6
        assert shm_segments() == before, "run_batch left its plane linked"

    def test_attach_is_zero_rehydration_work(self, tmp_path):
        """A worker attaching to the plane does *zero* cache traffic
        and zero code generation: the only counter it bumps is
        ``batch.shm.attach``, and its output is byte-identical."""
        import dataclasses

        from repro.buildcache.shm import export_translator_plane
        from repro.batch import build_worker_translator

        translator = make_translator(tmp_path)
        plane = export_translator_plane(translator)
        try:
            metrics = MetricsRegistry()
            spec = dataclasses.replace(
                translator.spawn_spec, shm_plane=plane.name
            )
            worker = build_worker_translator(spec, metrics=metrics)
            snap = metrics.snapshot()
            assert snap["batch.shm.attach"] == 1
            assert "batch.shm.attach_fallback" not in snap
            cache_work = [k for k in snap if k.startswith("cache.")]
            assert not cache_work, f"plane attach touched the cache: {cache_work}"
            assert getattr(worker.linguist, "from_plane", False)
            assert worker.linguist.cache is None
            for text in INPUTS[:3]:
                assert canonical_attrs(
                    worker.translate(text).root_attrs
                ) == canonical_attrs(translator.translate(text).root_attrs)
        finally:
            plane.unlink()

    def test_missing_plane_falls_back_to_cache(self, tmp_path):
        """A bogus / already-unlinked segment name degrades to the
        build-cache path (counted), never an error."""
        import dataclasses

        from repro.batch import build_worker_translator

        translator = make_translator(tmp_path)
        metrics = MetricsRegistry()
        spec = dataclasses.replace(
            translator.spawn_spec, shm_plane="l86plane_nosuch_0"
        )
        worker = build_worker_translator(spec, metrics=metrics)
        assert metrics.snapshot()["batch.shm.attach_fallback"] == 1
        assert not getattr(worker.linguist, "from_plane", False)
        text = INPUTS[0]
        assert canonical_attrs(worker.translate(text).root_attrs) == (
            canonical_attrs(translator.translate(text).root_attrs)
        )

    def test_no_shm_flag_changes_nothing_observable(self, tmp_path):
        """``--no-shm`` (cache-rehydrating workers) produces the same
        report, byte for byte."""
        translator = make_translator(tmp_path)
        with_plane = translator.translate_many(INPUTS[:6], jobs=2)
        without = translator.translate_many(INPUTS[:6], jobs=2, use_shm=False)
        assert summarize(with_plane) == summarize(without)
