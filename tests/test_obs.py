"""Tests for the telemetry subsystem (repro.obs).

Covers span nesting, the disabled-tracer no-op path, Chrome-trace and
NDJSON export validity, the metrics registry, and the compatibility
shims that unify the historical accounting objects (IOAccountant,
MemoryGauge, OverlayClock) behind the registry.
"""

import json

import pytest

from repro.core import Linguist
from repro.errors import TelemetryError
from repro.grammars import library_for, load_source
from repro.grammars.scanners import calc_scanner_spec
from repro.obs import (
    IOAccountant,
    IOStats,
    MemoryGauge,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace_json,
    ndjson,
    summary,
)
from repro.obs.trace import NULL_TRACER


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_depths(self):
        tracer = Tracer()
        with tracer.span("outer", cat="overlay"):
            with tracer.span("middle", cat="pass"):
                with tracer.span("inner", cat="visit"):
                    tracer.instant("evt", cat="evt")
        assert tracer.open_spans() == 0
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["inner"].depth == 2
        assert by_name["evt"].depth == 3

    def test_span_timestamps_contain_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = next(r for r in tracer.records if r.name == "outer")
        inner = next(r for r in tracer.records if r.name == "inner")
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.open_spans() == 0
        assert tracer.records[0].dur >= 0

    def test_span_args_mutable_after_begin(self):
        tracer = Tracer()
        with tracer.span("parse", cat="parse") as span:
            span.args["n_shifts"] = 7
        assert tracer.records[0].args["n_shifts"] == 7

    def test_filters(self):
        tracer = Tracer()
        with tracer.span("a", cat="pass"):
            tracer.instant("x", cat="evt")
        assert [r.name for r in tracer.spans(cat="pass")] == ["a"]
        assert [r.name for r in tracer.instants(name="x")] == ["x"]
        assert tracer.spans(cat="nope") == []


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a", cat="x"):
            tracer.instant("b")
        tracer.begin("c")
        tracer.end()
        assert len(tracer) == 0
        assert list(tracer) == []
        assert tracer.enabled is False

    def test_shared_singleton_is_stateless(self):
        with NULL_TRACER.span("a"):
            NULL_TRACER.instant("b")
        assert len(NULL_TRACER) == 0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").add(10)
        reg.gauge("g").sub(3)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 7
        assert snap["g.peak"] == 10
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 3.0
        assert snap["h"]["min"] == 2.0 and snap["h"]["max"] == 4.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_register_source_prefixes_keys(self):
        reg = MetricsRegistry()
        reg.register_source("io", lambda: {"bytes_read": 12})
        assert reg.snapshot()["io.bytes_read"] == 12

    def test_timer_observes_seconds(self):
        reg = MetricsRegistry()
        with reg.timer("t.seconds"):
            pass
        snap = reg.snapshot()
        assert snap["t.seconds"]["count"] == 1
        assert snap["t.seconds"]["sum"] >= 0

    def test_render_mentions_metrics(self):
        reg = MetricsRegistry()
        reg.counter("alpha").inc(3)
        assert "alpha" in reg.render()


# ---------------------------------------------------------------------------
# Unification shims: IOAccountant / MemoryGauge / OverlayClock
# ---------------------------------------------------------------------------


class TestIOAccountantShim:
    def test_util_iotrack_reexports_obs_classes(self):
        from repro.util.iotrack import IOAccountant as Shim, ChannelStats

        assert Shim is IOAccountant
        assert ChannelStats is IOStats  # dedup: one shared dataclass

    def test_by_channel_in_snapshot(self):
        acc = IOAccountant()
        acc.charge_write(10, "pass1.out")
        acc.charge_read(10, "pass1.out")
        acc.charge_write(5)  # unattributed traffic
        snap = acc.snapshot()
        assert snap["bytes_written"] == 15
        assert snap["by_channel"]["pass1.out"] == {
            "records_read": 1,
            "records_written": 1,
            "bytes_read": 10,
            "bytes_written": 10,
        }

    def test_bind_registers_as_source(self):
        reg = MetricsRegistry()
        acc = IOAccountant().bind(reg)
        acc.charge_read(7, "x")
        snap = reg.snapshot()
        assert snap["io.bytes_read"] == 7
        assert snap["io.by_channel"]["x"]["records_read"] == 1


class TestMemoryGauge:
    def test_release_clamps_at_zero(self):
        gauge = MemoryGauge()
        gauge.acquire(10)
        gauge.release(25)  # would go negative: clamp, count
        assert gauge.current_bytes == 0
        assert gauge.current_nodes == 0
        assert gauge.unbalanced_releases == 1
        gauge.release(5)  # release with nothing resident
        assert gauge.current_bytes == 0
        assert gauge.unbalanced_releases == 2

    def test_strict_mode_raises_on_underflow(self):
        gauge = MemoryGauge(strict=True)
        gauge.acquire(10)
        with pytest.raises(TelemetryError):
            gauge.release(25)

    def test_assert_balanced(self):
        gauge = MemoryGauge()
        gauge.acquire(10)
        gauge.release(10)
        gauge.assert_balanced()  # fine
        gauge.acquire(4)
        with pytest.raises(TelemetryError):
            gauge.assert_balanced()

    def test_snapshot_parity_with_accountant(self):
        gauge = MemoryGauge()
        gauge.acquire(10)
        snap = gauge.snapshot()
        assert snap["current_bytes"] == 10
        assert snap["peak_bytes"] == 10
        assert snap["peak_nodes"] == 1
        assert snap["unbalanced_releases"] == 0


class TestOverlayClockShim:
    def test_clock_feeds_registry_and_tracer(self):
        from repro.core.overlays import OverlayClock

        tracer = Tracer()
        reg = MetricsRegistry()
        clock = OverlayClock(tracer=tracer, metrics=reg)
        assert clock.run("parser overlay", lambda: 41) == 41
        snap = reg.snapshot()
        assert "overlay.parser overlay.seconds" in snap
        assert snap["overlay.total.seconds"] >= 0
        assert [s.name for s in tracer.spans(cat="overlay")] == ["parser overlay"]


# ---------------------------------------------------------------------------
# End-to-end round trips
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_calc():
    tracer = Tracer()
    metrics = MetricsRegistry()
    linguist = Linguist(load_source("calc"), tracer=tracer, metrics=metrics)
    translator = linguist.make_translator(
        calc_scanner_spec(), library=library_for("calc"), backend="interp"
    )
    result = translator.translate(
        "let a = 6 ; print a * 7", tracer=tracer, metrics=metrics
    )
    return tracer, metrics, result


class TestEndToEnd:
    def test_overlay_pass_visit_hierarchy(self, traced_calc):
        tracer, _, _ = traced_calc
        assert tracer.open_spans() == 0
        overlays = tracer.spans(cat="overlay")
        passes = tracer.spans(cat="pass")
        visits = tracer.spans(cat="visit")
        semfns = tracer.spans(cat="semfn")
        assert {s.name for s in overlays} >= {
            "parser overlay",
            "evaluation overlay",
        }
        # calc's two alternating passes fuse into one left-to-right
        # traversal (repro.passes.fusion), so one pass span is traced.
        assert len(passes) == 1
        assert visits and semfns
        # Nesting: every pass span sits inside the evaluation overlay,
        # every visit inside some pass, every semfn inside some visit.
        evaluation = next(s for s in overlays if s.name == "evaluation overlay")

        def inside(inner, outer):
            return (
                outer.ts <= inner.ts
                and inner.ts + inner.dur <= outer.ts + outer.dur
            )

        assert all(inside(p, evaluation) for p in passes)
        assert all(any(inside(v, p) for p in passes) for v in visits)
        assert all(any(inside(f, v) for v in visits) for f in semfns)
        assert all(p.depth > evaluation.depth for p in passes)

    def test_structured_events_emitted(self, traced_calc):
        tracer, _, _ = traced_calc
        names = {r.name for r in tracer.instants()}
        assert {"spool.read", "spool.write", "copyrule.elided",
                "subsume.save", "subsume.restore", "dead.skip"} <= names

    def test_chrome_export_is_valid(self, traced_calc):
        tracer, _, _ = traced_calc
        doc = json.loads(chrome_trace_json(tracer.records))
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "ts" in event and "name" in event
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert "dur" in event

    def test_ndjson_export_parses_per_line(self, traced_calc):
        tracer, _, _ = traced_calc
        lines = ndjson(tracer.records).splitlines()
        assert len(lines) == len(tracer.records)
        parsed = [json.loads(line) for line in lines]
        assert all("name" in obj and "ts_us" in obj for obj in parsed)
        # ordered by start time
        times = [obj["ts_us"] for obj in parsed]
        assert times == sorted(times)

    def test_summary_renders(self, traced_calc):
        tracer, metrics, _ = traced_calc
        text = summary(tracer.records, metrics)
        assert "trace summary" in text
        assert "spool.write" in text
        assert "io.bytes_written" in text

    def test_metrics_unify_io_mem_pass_overlay(self, traced_calc):
        _, metrics, _ = traced_calc
        snap = metrics.snapshot()
        assert snap["io.records_written"] > 0
        assert snap["io.by_channel"]["initial"]["records_written"] > 0
        assert snap["mem.peak_bytes"] > 0
        assert snap["mem.unbalanced_releases"] == 0
        assert snap["pass.n_passes"] == 1  # fused: calc's 2 passes merge
        assert snap["fusion.passes_eliminated"] == 1
        assert snap["pass.1.bytes_read"] > 0
        assert "overlay.parser overlay.seconds" in snap
        assert snap["evt.copyrule_elided"] > 0

    def test_disabled_path_equivalent_and_silent(self):
        linguist = Linguist(load_source("calc"))
        translator = linguist.make_translator(
            calc_scanner_spec(), library=library_for("calc"), backend="interp"
        )
        plain = translator.translate("let a = 6 ; print a * 7")
        tracer = Tracer()
        traced = translator.translate(
            "let a = 6 ; print a * 7", tracer=tracer, metrics=MetricsRegistry()
        )
        assert list(plain["OUT"]) == list(traced["OUT"])
        # The disabled run left the runtime without a tracer: no records
        # other than the ones the enabled run made.
        assert len(tracer.records) > 0

    def test_disabled_tracer_overhead_is_noop(self):
        """The no-tracer path must not allocate trace records at all —
        the <5% wall-time budget is enforced by construction (a single
        ``is not None`` check per hook)."""
        linguist = Linguist(load_source("calc"))
        translator = linguist.make_translator(
            calc_scanner_spec(), library=library_for("calc")
        )
        translator.translate("let a = 6 ; print a * 7")
        driver = translator.last_driver
        assert driver.tracer is None
        assert driver.metrics.snapshot()["mem.peak_bytes"] > 0


class TestCLI:
    def test_trace_chrome_to_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.grammars import source_path

        out = tmp_path / "trace.json"
        assert main([
            "trace", source_path("calc"), "let a = 2 ; print a + 1",
            "--format", "chrome", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"overlay", "pass", "visit"} <= cats

    def test_trace_summary_stdout(self, capsys):
        from repro.cli import main
        from repro.grammars import source_path

        assert main([
            "trace", source_path("binary"), "101.01", "--format", "summary",
        ]) == 0
        captured = capsys.readouterr().out
        assert "trace summary" in captured

    def test_trace_unknown_scanner(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "custom.ag"
        f.write_text(load_source("calc"))
        assert main(["trace", str(f), "print 1"]) == 2

    def test_trace_with_grammar_override(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "custom.ag"
        f.write_text(load_source("calc"))
        assert main([
            "trace", str(f), "print 1", "--grammar", "calc",
            "--format", "summary",
        ]) == 0

    def test_profile_with_input(self, capsys):
        from repro.cli import main
        from repro.grammars import source_path

        assert main([
            "profile", source_path("calc"), "let a = 2 ; print a + 1",
        ]) == 0
        captured = capsys.readouterr().out
        assert "parser overlay" in captured
        assert "evaluation pass" in captured
        assert "peak resident" in captured

    def test_profile_without_input(self, capsys):
        from repro.cli import main
        from repro.grammars import source_path

        assert main(["profile", source_path("binary")]) == 0
        captured = capsys.readouterr().out
        assert "TOTAL" in captured
