"""Shared harness wiring the full pipeline for tests and benchmarks."""

from typing import List, Optional

from repro.ag.model import AttributeGrammar
from repro.apt.build import APTBuilder
from repro.apt.storage import MemorySpool
from repro.errors import SourceLocation
from repro.evalgen.codegen_py import GeneratedEvaluator
from repro.evalgen.deadness import analyze_deadness
from repro.evalgen.driver import AlternatingPassDriver, reconstruct_tree
from repro.evalgen.interp import InterpretiveEvaluator
from repro.evalgen.oracle import OracleEvaluator
from repro.evalgen.plan import build_pass_plans
from repro.evalgen.runtime import FunctionLibrary
from repro.evalgen.subsumption import SubsumptionConfig, choose_static_attributes
from repro.lalr.grammar import EOF_SYMBOL
from repro.lalr.parser import LALRParser
from repro.lalr.tables import build_tables
from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction
from repro.regex.scanner import Token


def tokens_of(kinds_and_texts) -> List[Token]:
    """Build a token list from ["KIND", ("KIND", "text"), ...] + EOF."""
    out = []
    for i, item in enumerate(kinds_and_texts):
        if isinstance(item, tuple):
            kind, text = item
        else:
            kind, text = item, item.lower()
        out.append(Token(kind, text, SourceLocation(1, i + 1)))
    out.append(Token(EOF_SYMBOL, "", SourceLocation(1, len(out) + 1)))
    return out


class Pipeline:
    """One grammar, fully analyzed and ready to evaluate inputs."""

    def __init__(
        self,
        ag: AttributeGrammar,
        first_direction: Direction = Direction.R2L,
        subsumption: bool = True,
        deadness: bool = True,
        grouping: str = "name",
        refine: bool = True,
        library: Optional[FunctionLibrary] = None,
    ):
        self.ag = ag
        self.library = library or FunctionLibrary()
        self.assignment = assign_passes(ag, first_direction)
        self.deadness = analyze_deadness(ag, self.assignment, enabled=deadness)
        self.allocation = choose_static_attributes(
            ag,
            self.assignment,
            SubsumptionConfig(enabled=subsumption, grouping=grouping),
        )
        if subsumption and refine:
            from repro.evalgen.subsumption import refine_allocation

            refine_allocation(ag, self.assignment, self.allocation, self.deadness)
        self.plans = build_pass_plans(
            ag, self.assignment, self.deadness, self.allocation
        )
        self.tables = build_tables(ag.underlying_cfg())
        self.parser = LALRParser(self.tables)
        self._generated: Optional[GeneratedEvaluator] = None

    # ------------------------------------------------------------------

    def build_apt(self, tokens, build_tree: bool = True):
        """Parse tokens into (initial spool, tree-or-None)."""
        spool = MemorySpool(channel="initial")
        builder = APTBuilder(self.ag, spool, build_tree=build_tree)
        self.parser.parse(tokens, listener=builder, build_tree=False)
        builder.finish()
        return spool, builder.root

    def driver(self, backend: str = "interp") -> AlternatingPassDriver:
        if backend == "interp":
            executor = InterpretiveEvaluator(self.ag).run_pass
        elif backend == "generated":
            if self._generated is None:
                self._generated = GeneratedEvaluator(self.ag, self.plans)
            executor = self._generated.executor
        else:
            raise ValueError(backend)
        return AlternatingPassDriver(
            self.ag, self.plans, executor, library=self.library
        )

    def evaluate(self, tokens, backend: str = "interp"):
        spool, _ = self.build_apt(tokens, build_tree=False)
        strategy = (
            "bottom-up"
            if self.assignment.first_direction is Direction.R2L
            else "prefix"
        )
        if strategy == "prefix":
            # Prefix emission needs the tree.
            spool2 = MemorySpool(channel="initial")
            spool_raw, root = self.build_apt(tokens, build_tree=True)
            builder_spool = spool2
            from repro.apt.linear import iter_prefix

            for node in iter_prefix(root):
                builder_spool.append(
                    (node.symbol, node.production, node.attrs, node.is_limb)
                )
            builder_spool.finalize()
            spool = builder_spool
        driver = self.driver(backend)
        result = driver.run(spool, strategy=strategy)
        return result, driver

    def oracle(self, tokens):
        _, root = self.build_apt(tokens, build_tree=True)
        oracle = OracleEvaluator(self.ag, self.library)
        result = oracle.evaluate(root)
        return result, root


# ---------------------------------------------------------------------------
# Differential backend suite: every evaluator path over one text
# ---------------------------------------------------------------------------


def canonical_attrs(root_attrs) -> dict:
    """Root attributes rendered to canonical byte-comparable strings.

    Matches the ``repro run`` rendering convention: non-string iterables
    are materialized as lists, then everything goes through ``repr``.
    """
    out = {}
    for attr, value in sorted(root_attrs.items()):
        rendered = list(value) if hasattr(value, "__iter__") and not isinstance(
            value, str
        ) else value
        out[attr] = repr(rendered)
    return out


class BackendSuite:
    """One shipped grammar, translatable through every evaluator path:

    * ``interp``    — the interpretive pass evaluator,
    * ``generated`` — the exec-compiled generated pass modules,
    * ``oracle``    — the demand-driven tree evaluator (pure semantics,
      no passes, no spools),
    * ``cached``    — a *cache-rehydrated* translator (built through a
      warm :class:`repro.buildcache.BuildCache`, so its pass modules
      come from cached source text and its scanner from a cached DFA),
    * ``unfused``   — the interpretive evaluator with pass fusion
      disabled, running the original (pre-fusion) pass partition,
    * ``shm``       — a *plane-attached* translator
      (:func:`repro.buildcache.shm.attach_translator`): every artifact
      hydrated from a shared-memory segment exactly as a batch/serve
      worker would, with zero cache traffic,
    * ``shm_unfused`` — the plane-attached path over the fusion-off
      build, so the zero-copy axis is pinned fused *and* unfused.
    * ``incremental`` — a memo-equipped translator
      (``translate(..., memo_dir=)``): the text is translated once to
      warm the memo, then translated again with clean subtrees
      *spliced* from the sealed MEMO1 manifest; the spliced result is
      the axis value, so incremental re-translation is pinned
      byte-identical to every from-scratch path.

    Build once per grammar (construction is the expensive per-grammar
    step); :meth:`run` is cheap per input.
    """

    def __init__(self, grammar_name: str, cache_dir: str):
        from repro.buildcache import BuildCache
        from repro.core import Linguist
        from repro.grammars import load_source, scanner_and_library

        self.grammar_name = grammar_name
        source = load_source(grammar_name)
        spec, library = scanner_and_library(grammar_name)
        assert spec is not None, f"no shipped scanner for {grammar_name!r}"
        self.library = library

        cold = Linguist(source)
        self.ag = cold.ag
        self.interp = cold.make_translator(spec, library=library, backend="interp")
        self.generated = cold.make_translator(
            spec, library=library, backend="generated"
        )

        # The fusion differential pair: same grammar, fusion off.  The
        # fused/unfused evaluations must agree byte for byte while the
        # fused one runs strictly fewer passes (when fusion applies).
        plain = Linguist(source, fuse_passes=False)
        self.unfused = plain.make_translator(
            spec, library=library, backend="interp"
        )
        self.fused_n_passes = cold.n_passes
        self.unfused_n_passes = plain.n_passes

        # Seed the cache (grammar artifacts + scanner DFA), then rebuild
        # warm: the 'cached' path must come from rehydrated artifacts,
        # not freshly generated ones.
        Linguist(source, cache=BuildCache(cache_dir)).make_translator(
            spec, library=library
        )
        warm = Linguist(source, cache=BuildCache(cache_dir))
        assert warm.from_cache, "warm rebuild did not hit the build cache"
        self.cached = warm.make_translator(
            spec, library=library, backend="generated"
        )

        # The shm-attached axes: export each build's artifacts into a
        # shared-memory plane and hydrate a translator from the segment
        # — the exact zero-copy path batch/serve workers take.  The
        # planes live as long as the suite (module-level caching) and
        # are swept by the shm atexit registry.
        from repro.batch import WorkerSpec
        from repro.buildcache.shm import (
            attach_translator,
            export_translator_plane,
        )

        def plane_spec(plane) -> WorkerSpec:
            return WorkerSpec(
                source=source,
                filename=f"<{grammar_name}>",
                grammar_name=grammar_name,
                direction="r2l",
                cache_dir=cache_dir,
                backend="generated",
                shm_plane=plane.name,
            )

        self._plane = export_translator_plane(self.generated)
        self.shm = attach_translator(plane_spec(self._plane))
        assert getattr(self.shm.linguist, "from_plane", False), (
            "shm axis did not hydrate from the artifact plane"
        )
        unfused_generated = plain.make_translator(
            spec, library=library, backend="generated"
        )
        self._plane_unfused = export_translator_plane(unfused_generated)
        self.shm_unfused = attach_translator(
            plane_spec(self._plane_unfused)
        )

        # The incremental axis: its own translator (so memo executor
        # variants never leak into the plain axes) + a per-suite memo
        # directory under the cache dir.
        self.incremental = cold.make_translator(
            spec, library=library, backend="generated"
        )
        import os

        self.memo_dir = os.path.join(cache_dir, "memo")

    def oracle_attrs(self, text: str) -> dict:
        tokens = list(self.interp.scanner.tokens(text))
        spool = MemorySpool(channel="initial")
        builder = APTBuilder(self.ag, spool, build_tree=True)
        self.interp.parser.parse(tokens, listener=builder, build_tree=False)
        builder.finish()
        result = OracleEvaluator(self.ag, self.library).evaluate(builder.root)
        return result.root_attrs

    def run(self, text: str) -> dict:
        """Translate ``text`` through every path; return
        ``{path: canonical root attrs}`` (oracle projected onto the
        pass-evaluated attribute set — the oracle attributes *every*
        instance, the passes export the root's visible ones)."""
        interp = canonical_attrs(self.interp.translate(text).root_attrs)
        generated = canonical_attrs(self.generated.translate(text).root_attrs)
        cached = canonical_attrs(self.cached.translate(text).root_attrs)
        unfused = canonical_attrs(self.unfused.translate(text).root_attrs)
        shm = canonical_attrs(self.shm.translate(text).root_attrs)
        shm_unfused = canonical_attrs(
            self.shm_unfused.translate(text).root_attrs
        )
        # Warm the memo, then re-translate: the second run splices the
        # sealed output of every clean subtree instead of re-evaluating.
        self.incremental.translate(text, memo_dir=self.memo_dir)
        incremental = canonical_attrs(
            self.incremental.translate(text, memo_dir=self.memo_dir).root_attrs
        )
        oracle_full = canonical_attrs(self.oracle_attrs(text))
        oracle = {k: v for k, v in oracle_full.items() if k in interp}
        return {
            "interp": interp,
            "generated": generated,
            "cached": cached,
            "unfused": unfused,
            "shm": shm,
            "shm_unfused": shm_unfused,
            "incremental": incremental,
            "oracle": oracle,
        }


def run_all_backends(grammar_name: str, text: str, cache_dir: str) -> dict:
    """Translate ``text`` with ``grammar_name`` through every
    evaluator path (interp / generated / oracle / cache-rehydrated /
    shm-attached, fused and unfused); return
    ``{path: canonical root attrs}`` for differential comparison.
    """
    return BackendSuite(grammar_name, cache_dir).run(text)
