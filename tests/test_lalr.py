"""Unit tests for the LALR parse-table builder and parser (S5)."""

import pytest

from repro.errors import ConflictError, GrammarError, ParseError
from repro.lalr import (
    EOF_SYMBOL,
    Grammar,
    LALRParser,
    LR0Automaton,
    build_tables,
)
from repro.lalr.parser import ParseListener
from repro.errors import SourceLocation
from repro.regex.scanner import Token


def toks(kinds):
    out = [Token(k, k.lower(), SourceLocation(1, i + 1)) for i, k in enumerate(kinds)]
    out.append(Token(EOF_SYMBOL, "", SourceLocation(1, len(kinds) + 1)))
    return out


@pytest.fixture
def expr_grammar():
    # The classic LALR-but-not-SLR grammar of expressions with assignment.
    return Grammar(
        "E",
        [
            ("E", ["E", "PLUS", "T"], "Add"),
            ("E", ["T"], "Promote"),
            ("T", ["T", "STAR", "F"], "Mul"),
            ("T", ["F"], "PromoteF"),
            ("F", ["LPAREN", "E", "RPAREN"], "Paren"),
            ("F", ["ID"], "Var"),
        ],
    )


class TestGrammar:
    def test_terminals_inferred(self, expr_grammar):
        assert "PLUS" in expr_grammar.terminals
        assert "E" in expr_grammar.nonterminals
        assert EOF_SYMBOL in expr_grammar.terminals

    def test_augmented_production(self, expr_grammar):
        p0 = expr_grammar.productions[0]
        assert p0.lhs == "$accept"
        assert p0.rhs == ("E", EOF_SYMBOL)

    def test_nullable(self):
        g = Grammar("S", [("S", ["A", "B"], "s"), ("A", [], "a"), ("B", ["b"], "b")])
        assert "A" in g.nullable
        assert "B" not in g.nullable
        assert "S" not in g.nullable

    def test_first_sets(self, expr_grammar):
        assert expr_grammar.first["E"] == {"LPAREN", "ID"}
        assert expr_grammar.first["F"] == {"LPAREN", "ID"}

    def test_follow_sets(self, expr_grammar):
        assert "PLUS" in expr_grammar.follow["E"]
        assert "RPAREN" in expr_grammar.follow["E"]
        assert "STAR" in expr_grammar.follow["T"]

    def test_first_through_nullable(self):
        g = Grammar("S", [("S", ["A", "b"], "s"), ("A", ["a"], "a1"), ("A", [], "a2")])
        assert g.first["S"] == {"a", "b"}

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [])

    def test_undeclared_symbol_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [("S", ["x"], "s")], terminals=["y"])

    def test_unreachable_nonterminal_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [("S", ["a"], "s"), ("Z", ["b"], "z")])

    def test_start_without_production_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("Q", [("S", ["a"], "s"), ("Q", ["S"], "q")][:1])


class TestLR0:
    def test_state_count_reasonable(self, expr_grammar):
        auto = LR0Automaton(expr_grammar)
        # The textbook expression grammar has 12 LR(0) states plus the
        # extra states our explicit $eof shifting introduces.
        assert 10 <= auto.n_states() <= 15

    def test_closure_contains_expansions(self, expr_grammar):
        auto = LR0Automaton(expr_grammar)
        start = auto.states[0]
        lhss = {expr_grammar.productions[i.prod].lhs for i in start}
        assert {"$accept", "E", "T", "F"} <= lhss

    def test_goto_deterministic(self, expr_grammar):
        auto = LR0Automaton(expr_grammar)
        assert (0, "E") in auto.goto
        assert (0, "ID") in auto.goto


class TestTables:
    def test_builds_without_conflicts(self, expr_grammar):
        tables = build_tables(expr_grammar)
        assert not tables.conflicts
        assert tables.n_states >= 10

    def test_ambiguous_grammar_conflicts(self):
        g = Grammar("E", [("E", ["E", "PLUS", "E"], "Add"), ("E", ["ID"], "Var")])
        with pytest.raises(ConflictError):
            build_tables(g)
        tables = build_tables(g, strict=False)
        assert tables.conflicts
        assert tables.conflicts[0].kind == "shift/reduce"

    def test_lalr_but_not_slr_grammar(self):
        # S -> L = R | R ; L -> * R | id ; R -> L   (Dragon book 4.20)
        g = Grammar(
            "S",
            [
                ("S", ["L", "EQ", "R"], "Assign"),
                ("S", ["R"], "Rvalue"),
                ("L", ["STAR", "R"], "Deref"),
                ("L", ["ID"], "Var"),
                ("R", ["L"], "Lvalue"),
            ],
        )
        tables = build_tables(g)  # SLR would conflict on EQ; LALR must not.
        assert not tables.conflicts

    def test_table_bytes_positive(self, expr_grammar):
        assert build_tables(expr_grammar).table_bytes() > 0


class _Recorder(ParseListener):
    def __init__(self):
        self.events = []

    def on_shift(self, token):
        self.events.append(("shift", token.kind))

    def on_reduce(self, production):
        self.events.append(("reduce", production.tag))


class TestParser:
    def test_parse_tree_shape(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        tree = parser.parse(toks(["ID", "PLUS", "ID", "STAR", "ID"]))
        # Root is $accept; child 0 is the expression.
        expr = tree.children[0]
        assert expr.symbol == "E"
        assert expr.production.tag == "Add"
        right = expr.children[2]
        assert right.production.tag == "Mul"

    def test_bottom_up_event_order(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        rec = _Recorder()
        parser.parse(toks(["ID", "PLUS", "ID"]), listener=rec, build_tree=False)
        reduces = [tag for kind, tag in rec.events if kind == "reduce"]
        assert reduces == ["Var", "PromoteF", "Promote", "Var", "PromoteF", "Add"]

    def test_shift_events_in_source_order(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        rec = _Recorder()
        parser.parse(toks(["LPAREN", "ID", "RPAREN"]), listener=rec, build_tree=False)
        shifts = [k for kind, k in rec.events if kind == "shift"]
        assert shifts == ["LPAREN", "ID", "RPAREN", EOF_SYMBOL]

    def test_syntax_error_reports_expected(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        with pytest.raises(ParseError) as exc:
            parser.parse(toks(["ID", "PLUS", "PLUS"]))
        assert "expected" in str(exc.value)
        assert "ID" in str(exc.value)

    def test_nested_parens(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        tree = parser.parse(
            toks(["LPAREN", "LPAREN", "ID", "RPAREN", "RPAREN"])
        )
        assert tree is not None

    def test_empty_production_parse(self):
        g = Grammar(
            "list",
            [
                ("list", [], "Nil"),
                ("list", ["list", "ITEM"], "Snoc"),
            ],
        )
        parser = LALRParser(build_tables(g))
        rec = _Recorder()
        parser.parse(toks(["ITEM", "ITEM"]), listener=rec, build_tree=False)
        reduces = [t for k, t in rec.events if k == "reduce"]
        assert reduces == ["Nil", "Snoc", "Snoc"]

    def test_leaves_in_order(self, expr_grammar):
        parser = LALRParser(build_tables(expr_grammar))
        tree = parser.parse(toks(["ID", "STAR", "ID"]))
        leaf_kinds = [leaf.symbol for leaf in tree.leaves()]
        assert leaf_kinds == ["ID", "STAR", "ID", EOF_SYMBOL]
