"""Integration tests for the Linguist driver, translators, self-generation."""

import pytest

from repro.core import Linguist
from repro.core.selfgen import SelfGeneration, summary_from_ast
from repro.errors import EvaluationError, PassError, SemanticError
from repro.frontend.syntax import parse_ag_text
from repro.grammars import load_source, library_for
from repro.grammars.scanners import (
    binary_scanner_spec,
    calc_scanner_spec,
    pascal_scanner_spec,
)


@pytest.fixture(scope="module")
def binary_linguist():
    return Linguist(load_source("binary"))


@pytest.fixture(scope="module")
def pascal_linguist():
    return Linguist(load_source("pascal"))


@pytest.fixture(scope="module")
def selfgen():
    return SelfGeneration()


class TestLinguistPipeline:
    def test_overlay_timing_recorded(self, binary_linguist):
        names = [n for n, _ in binary_linguist.overlay_times.entries]
        assert "parser overlay" in names
        assert "evaluability test overlay" in names
        assert "evaluator generation overlay" in names
        assert binary_linguist.overlay_times.total > 0
        assert "TOTAL" in binary_linguist.overlay_times.render()

    def test_listing_produced(self, binary_linguist):
        assert "binary" in binary_linguist.listing
        assert "alternating pass" in binary_linguist.listing

    def test_statistics(self, binary_linguist):
        stats = binary_linguist.statistics
        assert stats.n_productions == 5
        assert stats.n_passes == 2

    def test_code_sizes_both_languages(self, binary_linguist):
        pas = binary_linguist.code_sizes("pascal")
        py = binary_linguist.code_sizes("python")
        assert len(pas.passes) == 2
        assert pas.husk_bytes > 0
        assert py.total_bytes > 0

    def test_pascal_source_looks_like_the_paper(self, binary_linguist):
        src = binary_linguist.pascal_artifacts[0].text
        assert "procedure" in src
        assert "GetNode" in src
        assert "PutNode" in src
        assert "PP1" in src

    def test_semantic_error_reported(self):
        bad = load_source("binary").replace("bits0.SCALE = 0 ,", "")
        with pytest.raises(SemanticError):
            Linguist(bad)

    def test_circular_grammar_rejected(self):
        src = """
grammar circ : s .
symbols
  nonterminal s, x ;
  terminal T ;
attributes
  s : synthesized V int ;
  x : inherited I int, synthesized O int ;
productions
s = x .
  x.I = x.O , s.V = x.O ;
x = T .
  x.O = x.I ;
end
"""
        from repro.errors import CircularityError

        with pytest.raises(CircularityError):
            Linguist(src)


class TestTranslators:
    def test_binary_translator(self, binary_linguist):
        t = binary_linguist.make_translator(binary_scanner_spec())
        assert t.translate("110.101")["VAL"] == pytest.approx(6.625)

    def test_calc_translator_interp_backend(self):
        lg = Linguist(load_source("calc"))
        t = lg.make_translator(calc_scanner_spec(), backend="interp")
        r = t.translate("let a = 2 ; let b = a * a ; print b + 1")
        assert list(r["OUT"]) == [5]

    def test_pascal_translator_clean_program(self, pascal_linguist):
        t = pascal_linguist.make_translator(
            pascal_scanner_spec(), library=library_for("pascal")
        )
        r = t.translate(
            "program p; var a : integer; begin a := 1; writeln(a + 2) end."
        )
        assert list(r["MSGS"]) == []
        code = list(r["CODE"])
        assert code[-1] == "HALT"
        assert "WRITE" in code

    def test_pascal_translator_error_program(self, pascal_linguist):
        t = pascal_linguist.make_translator(
            pascal_scanner_spec(), library=library_for("pascal")
        )
        r = t.translate(
            "program p; var a : integer; b : boolean;"
            " begin a := b; c := 1; if a then writeln(1) else writeln(2) end."
        )
        msgs = [m[1] for m in r["MSGS"]]
        assert "type mismatch in assignment" in msgs
        assert "undeclared variable" in msgs
        assert "boolean condition required" in msgs

    def test_pascal_if_while_labels_unique(self, pascal_linguist):
        t = pascal_linguist.make_translator(
            pascal_scanner_spec(), library=library_for("pascal")
        )
        r = t.translate(
            "program p; var a : boolean; begin "
            "if a then writeln(1) else writeln(2); "
            "while a do if a then writeln(3) else writeln(4) end."
        )
        code = list(r["CODE"])
        labels = [ins for ins in code if ins.endswith(":")]
        assert len(labels) == len(set(labels))

    def test_translator_without_scanner_needs_tokens(self, binary_linguist):
        t = binary_linguist.make_translator()
        with pytest.raises(EvaluationError):
            t.translate("1.0")

    def test_translate_tokens_directly(self, binary_linguist):
        from tests.evalharness import tokens_of

        t = binary_linguist.make_translator()
        toks = tokens_of([("ONE", "1"), ("RADIX", "."), ("ONE", "1")])
        assert t.translate_tokens(toks)["VAL"] == pytest.approx(1.5)

    def test_io_accounting_available(self, binary_linguist):
        t = binary_linguist.make_translator(binary_scanner_spec())
        t.translate("101.1")
        driver = t.last_driver
        assert driver.accountant.records_read > 0
        assert driver.pass_times and len(driver.pass_times) == 2


class TestSelfGeneration:
    def test_bootstrap_fixpoint(self, selfgen):
        machine, hand = selfgen.bootstrap_check()
        assert machine.n_prods == hand.n_prods > 50
        assert machine.symbols == hand.symbols

    def test_four_passes_like_the_paper(self, selfgen):
        assert selfgen.linguist.n_passes == 4

    def test_generated_evaluator_on_other_grammars(self, selfgen):
        for name in ("binary", "calc", "pascal"):
            machine, hand = selfgen.bootstrap_check(load_source(name))
            assert machine.n_prods == hand.n_prods

    def test_cross_check_attribute(self, selfgen):
        assert selfgen.check_consistency_attr()

    def test_detects_undeclared_symbols(self, selfgen):
        src = load_source("binary").replace(
            "nonterminal number, bits, bit ;", "nonterminal number, bits ;"
        )
        machine = selfgen.analyze_with_generated_evaluator(src)
        hand = summary_from_ast(parse_ag_text(src))
        assert machine.n_msgs == hand.n_msgs > 0

    def test_message_numbering_is_source_ordered(self, selfgen):
        """MSG$NO threads left to right; TOTAL$MSGS flows back down."""
        src = load_source("binary").replace("bits0 = bits1 bit", "bits0 = bits1 bitx")
        result = selfgen.translator.translate(src)
        msgs = list(result["MSGS"])
        assert any("undeclared" in m[1] for m in msgs)

    def test_statistics_match_t1_shape(self, selfgen):
        """EXP-T1: the self grammar's own statistics have the paper's
        proportions (4 passes; a large implicit-copy share)."""
        stats = selfgen.linguist.statistics
        assert stats.n_passes == 4
        assert stats.n_productions >= 70
        assert stats.n_implicit_copy_rules > stats.n_copy_rules / 2


class TestStrategies:
    def test_prefix_strategy_translator(self):
        """first_direction=L2R uses the prefix-emission strategy (§II's
        second option: 'like a recursive descent parser')."""
        from repro.passes.schedule import Direction

        lg = Linguist(load_source("calc"), first_direction=Direction.L2R)
        assert lg.assignment.direction(1) is Direction.L2R
        t = lg.make_translator(calc_scanner_spec())
        r = t.translate("let a = 3 ; print a * a")
        assert list(r["OUT"]) == [9]

    def test_prefix_and_bottom_up_agree(self):
        from repro.passes.schedule import Direction

        program = "let a = 2 ; let b = a + 5 ; print b * a ; print b - a"
        l2r = Linguist(load_source("calc"), first_direction=Direction.L2R)
        r2l = Linguist(load_source("calc"), first_direction=Direction.R2L)
        out_l2r = l2r.make_translator(calc_scanner_spec()).translate(program)
        out_r2l = r2l.make_translator(calc_scanner_spec()).translate(program)
        assert list(out_l2r["OUT"]) == list(out_r2l["OUT"]) == [14, 5]

    def test_auto_direction(self):
        lg = Linguist(load_source("binary"), first_direction="auto")
        assert lg.n_passes == 2
        t = lg.make_translator(binary_scanner_spec())
        assert t.translate("1.1")["VAL"] == 1.5

    def test_pass_counts_differ_by_direction(self):
        """calc is L-attributed: 1 pass starting L2R, 2 starting R2L —
        auto must pick the cheaper one."""
        from repro.passes.schedule import Direction

        r2l = Linguist(load_source("calc"), first_direction=Direction.R2L)
        auto = Linguist(load_source("calc"), first_direction="auto")
        assert auto.n_passes <= r2l.n_passes


class TestOccurrenceBootstrap:
    def test_generated_occurrence_count_matches_model(self, selfgen):
        from repro.ag import compute_statistics
        from repro.frontend import load_grammar

        src = load_source("pascal")
        machine = selfgen.analyze_with_generated_evaluator(src)
        stats = compute_statistics(load_grammar(src))
        assert machine.n_occs == stats.n_attribute_occurrences > 300


class TestDegenerateGrammars:
    def test_attribute_free_grammar_rejected_at_translate(self):
        """A grammar with no attributes has zero passes; translating
        through it reports the condition instead of silently no-oping."""
        src = """
grammar bare : s .
symbols
  nonterminal s ;
  terminal T ;
attributes
productions
s = T .
  ;
end
"""
        lg = Linguist(src)
        assert lg.n_passes == 0
        t = lg.make_translator()
        from tests.evalharness import tokens_of

        with pytest.raises(EvaluationError) as exc:
            t.translate_tokens(tokens_of(["T"]))
        assert "no passes" in str(exc.value)


class TestLinguistArgs:
    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Linguist(load_source("binary"), first_direction="sideways")
