"""Unit tests for individual evalgen modules (beyond the pipeline tests)."""

import pytest

from repro.ag import GrammarBuilder
from repro.evalgen.deadness import analyze_deadness
from repro.evalgen.plan import ActionKind, build_pass_plans, sanitize, temp_name
from repro.evalgen.subsumption import (
    StaticAllocation,
    SubsumptionConfig,
    choose_static_attributes,
    count_subsumable_sites,
    exhaustive_allocation,
    refine_allocation,
)
from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction

from tests.sample_grammars import context_heavy, env_fanout, knuth_binary


@pytest.fixture()
def knuth():
    ag = knuth_binary()
    assignment = assign_passes(ag, Direction.R2L)
    return ag, assignment


class TestDeadness:
    def test_last_use_tracks_latest_pass(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment)
        # LEN defined pass 1, used in the pass-2 SCALE definition.
        assert dead.last_use[("bits", "LEN")] == 2

    def test_root_result_pinned_beyond_final_pass(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment)
        assert dead.last_use[("number", "VAL")] == assignment.n_passes + 1
        assert dead.is_significant(("number", "VAL"))

    def test_fields_after_pass_progression(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment)
        # After pass 1 only LEN (significant) flows; intrinsics are gone
        # (no later use), temporaries are gone.
        assert dead.fields_after_pass("bits", 1) == ["LEN"]
        # After pass 2, VAL survives only at the root.
        assert dead.fields_after_pass("number", 2) == ["VAL"]
        assert dead.fields_after_pass("bits", 2) == []

    def test_disabled_keeps_everything_defined(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment, enabled=False)
        fields = dead.fields_after_pass("bits", 2)
        assert set(fields) == {"SCALE", "VAL", "LEN"}

    def test_fields_never_include_future_passes(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment, enabled=False)
        assert "SCALE" not in dead.fields_after_pass("bits", 1)


class TestSubsumptionUnits:
    def test_disabled_config_empty(self, knuth):
        ag, assignment = knuth
        alloc = choose_static_attributes(
            ag, assignment, SubsumptionConfig(enabled=False)
        )
        assert len(alloc) == 0
        assert alloc.groups() == []

    def test_group_of_by_name(self):
        alloc = StaticAllocation(SubsumptionConfig(grouping="name"))
        alloc.static = {("a", "ENV"), ("b", "ENV")}
        assert alloc.group_of("a", "ENV") == alloc.group_of("b", "ENV") == "ENV"
        assert alloc.group_of("a", "OTHER") is None

    def test_group_of_per_attribute(self):
        alloc = StaticAllocation(SubsumptionConfig(grouping="per-attribute"))
        alloc.static = {("a", "ENV"), ("b", "ENV")}
        assert alloc.group_of("a", "ENV") != alloc.group_of("b", "ENV")

    def test_count_subsumable_sites_estimate(self):
        ag = context_heavy()
        assignment = assign_passes(ag, Direction.R2L)
        alloc = choose_static_attributes(ag, assignment, SubsumptionConfig())
        estimate = count_subsumable_sites(ag, assignment, alloc)
        assert estimate >= 4

    def test_refinement_promotes_chain_roots(self):
        """env_fanout's ENV chain is rejected attribute-by-attribute but
        pays globally; refinement must promote the whole group."""
        ag = env_fanout()
        assignment = assign_passes(ag, Direction.R2L)
        dead = analyze_deadness(ag, assignment)
        greedy = choose_static_attributes(ag, assignment, SubsumptionConfig())
        assert ("a", "ENV") not in greedy.static  # the local blind spot
        refined = refine_allocation(ag, assignment, greedy, dead)
        assert {("a", "ENV"), ("b", "ENV"), ("c", "ENV"), ("d", "ENV")} <= refined.static

    def test_refinement_matches_exhaustive_on_small_grammar(self):
        ag = env_fanout()
        assignment = assign_passes(ag, Direction.R2L)
        dead = analyze_deadness(ag, assignment)
        refined = refine_allocation(
            ag, assignment,
            choose_static_attributes(ag, assignment, SubsumptionConfig()),
            dead,
        )
        best, _, _ = exhaustive_allocation(ag, assignment, dead)
        assert refined.static == best.static

    def test_exhaustive_caps_candidates(self, knuth):
        ag, assignment = knuth
        dead = analyze_deadness(ag, assignment)
        with pytest.raises(ValueError):
            exhaustive_allocation(ag, assignment, dead, max_candidates=2)


class TestPlans:
    def build(self, ag, subsumption=True):
        assignment = assign_passes(ag, Direction.R2L)
        dead = analyze_deadness(ag, assignment)
        config = SubsumptionConfig(enabled=subsumption)
        alloc = choose_static_attributes(ag, assignment, config)
        if subsumption:
            alloc = refine_allocation(ag, assignment, alloc, dead)
        return assignment, build_pass_plans(ag, assignment, dead, alloc)

    def test_one_plan_per_production_per_pass(self):
        ag = knuth_binary()
        assignment, plans = self.build(ag)
        assert len(plans) == assignment.n_passes
        for pp in plans:
            assert set(pp.plans) == {p.index for p in ag.productions}

    def test_actions_balance_gets_and_puts(self):
        ag = knuth_binary()
        _, plans = self.build(ag)
        for pp in plans:
            for ep in pp.plans.values():
                gets = sum(1 for a in ep.actions if a.kind is ActionKind.GET)
                puts = sum(1 for a in ep.actions if a.kind is ActionKind.PUT)
                assert gets == puts

    def test_entry_saves_paired_with_restores(self):
        ag = env_fanout()
        _, plans = self.build(ag)
        for pp in plans:
            for ep in pp.plans.values():
                saves = [a for a in ep.actions if a.kind is ActionKind.ENTRY_SAVE]
                restores = [a for a in ep.actions if a.kind is ActionKind.EXIT_RESTORE]
                assert sorted(a.group for a in saves) == sorted(
                    a.group for a in restores
                )
                if saves:
                    assert ep.actions[0].kind is ActionKind.ENTRY_SAVE
                    assert ep.actions[-1].kind is ActionKind.EXIT_RESTORE

    def test_subsume_actions_only_with_subsumption_on(self):
        ag = env_fanout()
        _, plans_on = self.build(ag, subsumption=True)
        _, plans_off = self.build(ag, subsumption=False)
        assert sum(p.n_subsumed for p in plans_on) > 0
        assert sum(p.n_subsumed for p in plans_off) == 0

    def test_plan_render_readable(self):
        ag = env_fanout()
        _, plans = self.build(ag)
        text = plans[0].plans[1].render(ag)
        assert "GetNode" in text
        assert "visit" in text

    def test_sanitize_and_temp_names(self):
        assert sanitize("stmt$list") == "stmt_list"
        assert temp_name((2, "A$B")) == "t2_A_B"
        assert temp_name((-1, "X")) == "tL_X"

    def test_refmaps_are_complete(self):
        """Every argument of every COMPUTE has a resolved source."""
        from repro.ag.dependencies import binding_argument_keys

        ag = context_heavy()
        _, plans = self.build(ag)
        for pp in plans:
            for ep in pp.plans.values():
                for action in ep.actions:
                    if action.kind is ActionKind.COMPUTE:
                        for key in binding_argument_keys(action.binding):
                            assert key in action.refmap


class TestCodegenUnits:
    def test_python_expr_compilation(self):
        from repro.ag.exprtext import parse_expression
        from repro.ag.expr import AttrRef
        from repro.evalgen.codegen_py import PythonCodeGenerator

        ag = knuth_binary()
        gen = PythonCodeGenerator(ag)
        refmap = {
            (1, "A"): ("field", 1, "A"),
            (0, "B"): ("temp", "t0_B"),
            (2, "C"): ("global", "CTX"),
        }
        expr = parse_expression("if x1.A = 1 then x0.B else f(x2.C, 'q') endif")
        resolved = _resolve_for_test(expr)
        code = gen.compile_expr(resolved, refmap)
        assert "n1.attrs['A']" in code
        assert "t0_B" in code
        assert "self.g_CTX" in code
        assert "rt.call('f'" in code

    def test_pascal_expr_compilation(self):
        from repro.ag.exprtext import parse_expression
        from repro.evalgen.codegen_pascal import PascalCodeGenerator

        ag = knuth_binary()
        gen = PascalCodeGenerator(ag)
        prod = ag.productions[1]  # bits = bits bit
        refmap = {(1, "SCALE"): ("field", 1, "SCALE")}
        expr = _resolve_for_test(parse_expression("x1.SCALE + 1"))
        code = gen.compile_expr(expr, refmap, prod)
        assert code == "(BITS1.SCALE + 1)"

    def test_pascal_refuses_if_in_expression_position(self):
        from repro.ag.expr import Const, If
        from repro.evalgen.codegen_pascal import PascalCodeGenerator
        from repro.errors import GenerationError

        gen = PascalCodeGenerator(knuth_binary())
        with pytest.raises(GenerationError):
            gen.compile_expr(
                If(Const(True), (Const(1),), (Const(2),)),
                {}, knuth_binary().productions[0],
            )

    def test_husk_equal_across_passes(self):
        from repro.evalgen.codegen_pascal import PascalCodeGenerator
        from repro.evalgen.deadness import analyze_deadness

        ag = knuth_binary()
        assignment = assign_passes(ag, Direction.R2L)
        dead = analyze_deadness(ag, assignment)
        alloc = StaticAllocation(SubsumptionConfig())
        plans = build_pass_plans(ag, assignment, dead, alloc)
        artifacts = PascalCodeGenerator(ag).generate_all(plans)
        assert artifacts[0].husk_bytes == artifacts[1].husk_bytes

    def test_semantic_code_reduction_helper(self):
        from repro.evalgen.husk import CodeSizeReport, PassSize, semantic_code_reduction

        with_sub = CodeSizeReport("g", "pascal", [PassSize(1, 100, 60, 40, 3)])
        without = CodeSizeReport("g", "pascal", [PassSize(1, 110, 60, 50, 0)])
        assert semantic_code_reduction(with_sub, without) == pytest.approx(20.0)
        empty = CodeSizeReport("g", "pascal", [PassSize(1, 0, 0, 0, 0)])
        assert semantic_code_reduction(empty, empty) == 0.0


def _resolve_for_test(expr):
    """Resolve occurrence names x<k> to position k for codegen unit tests."""
    from repro.ag.expr import AttrRef, BinOp, Call, Const, If, Not

    def walk(node):
        if isinstance(node, AttrRef):
            return AttrRef(node.occ_name, node.attr_name,
                           int(node.occ_name[1:]) if node.occ_name else None)
        if isinstance(node, Not):
            return Not(walk(node.body))
        if isinstance(node, BinOp):
            return BinOp(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Call):
            return Call(node.func, tuple(walk(a) for a in node.args))
        if isinstance(node, If):
            else_b = (walk(node.else_branch) if isinstance(node.else_branch, If)
                      else tuple(walk(e) for e in node.else_branch))
            return If(walk(node.cond), tuple(walk(e) for e in node.then_branch), else_b)
        return node

    return walk(expr)


class TestOracleErrors:
    def test_wrong_root_symbol(self):
        from repro.apt.linear import TreeNode
        from repro.apt.node import APTNode
        from repro.errors import EvaluationError
        from repro.evalgen.oracle import OracleEvaluator

        ag = knuth_binary()
        oracle = OracleEvaluator(ag)
        with pytest.raises(EvaluationError):
            oracle.evaluate(TreeNode(APTNode("bits", production=1)))

    def test_missing_intrinsic_reported(self):
        from repro.apt.linear import TreeNode
        from repro.apt.node import APTNode
        from repro.errors import EvaluationError
        from repro.evalgen.oracle import OracleEvaluator
        from tests.sample_grammars import left_flow

        ag = left_flow()
        # root = item item ; item = X, but X lacks its intrinsic W.
        x1 = TreeNode(APTNode("X"))
        x2 = TreeNode(APTNode("X"))
        item1 = TreeNode(APTNode("item", production=1), [x1])
        item2 = TreeNode(APTNode("item", production=1), [x2])
        root = TreeNode(APTNode("root", production=0), [item1, item2])
        with pytest.raises(EvaluationError) as exc:
            OracleEvaluator(ag).evaluate(root)
        assert "intrinsic" in str(exc.value)


class TestRuntimeErrors:
    def test_out_of_phase_symbol(self):
        from repro.errors import EvaluationError
        from repro.evalgen.runtime import EvaluatorRuntime
        from repro.apt.storage import MemorySpool

        spool = MemorySpool()
        spool.append(("WRONG", None, {}, False))
        spool.finalize()
        out = MemorySpool()
        rt = EvaluatorRuntime(spool.read_forward(), out)
        with pytest.raises(EvaluationError) as exc:
            rt.get_node("EXPECTED")
        assert "out of phase" in str(exc.value)

    def test_exhausted_input(self):
        from repro.errors import EvaluationError
        from repro.evalgen.runtime import EvaluatorRuntime
        from repro.apt.storage import MemorySpool

        spool = MemorySpool()
        spool.finalize()
        rt = EvaluatorRuntime(spool.read_forward(), MemorySpool())
        with pytest.raises(EvaluationError):
            rt.get_node("S")

    def test_missing_external_function(self):
        from repro.errors import EvaluationError
        from repro.evalgen.runtime import FunctionLibrary

        lib = FunctionLibrary(use_standard=False)
        with pytest.raises(EvaluationError) as exc:
            lib.call("NoSuchFn", 1)
        assert "NoSuchFn" in str(exc.value)

    def test_constants_resolution(self):
        from repro.evalgen.runtime import FunctionLibrary

        lib = FunctionLibrary(constants={"int$t": "INT"})
        assert lib.constant("int$t") == "INT"
        assert lib.constant("unknown$c") == "unknown$c"  # its own name

    def test_at_end_peeks_without_consuming(self):
        from repro.evalgen.runtime import EvaluatorRuntime
        from repro.apt.storage import MemorySpool

        spool = MemorySpool()
        spool.append(("S", None, {}, False))
        spool.finalize()
        rt = EvaluatorRuntime(spool.read_forward(), MemorySpool())
        assert not rt.at_end()
        node = rt.get_node("S")
        assert node.symbol == "S"
        assert rt.at_end()


class TestDriverUnits:
    def test_reconstruct_tree_round_trip(self):
        from repro.apt.linear import TreeNode, iter_bottom_up
        from repro.apt.node import APTNode
        from repro.apt.storage import MemorySpool
        from repro.evalgen.driver import reconstruct_tree
        from tests.sample_grammars import with_limb

        ag = with_limb()
        limb = APTNode("PairLimb", production=1, is_limb=True)
        leaf1 = TreeNode(APTNode("N", attrs={"V": 9}))
        leaf2 = TreeNode(APTNode("N", attrs={"V": 4}))
        pair = TreeNode(APTNode("pair", production=1), [leaf1, leaf2], limb)
        root = TreeNode(APTNode("root", production=0), [pair])
        spool = MemorySpool()
        for node in iter_bottom_up(root):
            spool.append((node.symbol, node.production, node.attrs, node.is_limb))
        spool.finalize()
        rebuilt = reconstruct_tree(ag, spool)
        assert rebuilt.node.symbol == "root"
        assert rebuilt.children[0].limb.symbol == "PairLimb"
        assert rebuilt.children[0].children[0].node.attrs["V"] == 9

    def test_strategy_direction_mismatch_rejected(self):
        from repro.apt.storage import MemorySpool
        from repro.errors import EvaluationError
        from tests.evalharness import Pipeline
        from tests.sample_grammars import knuth_binary as kb

        pipe = Pipeline(kb(), first_direction=Direction.R2L)
        spool = MemorySpool()
        spool.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError):
            driver.run(spool, strategy="prefix")
