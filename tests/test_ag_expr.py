"""Unit tests for the expression AST and the mini expression parser."""

import pytest

from repro.ag.expr import (
    AttrRef,
    BinOp,
    Call,
    Const,
    If,
    Not,
    expression_size,
)
from repro.ag.exprtext import parse_expression, parse_expression_list
from repro.errors import ParseError


class TestParsing:
    def test_number(self):
        assert parse_expression("42") == Const(42)

    def test_booleans(self):
        assert parse_expression("true") == Const(True)
        assert parse_expression("false") == Const(False)

    def test_string(self):
        assert parse_expression("'hello'") == Const("hello")
        assert parse_expression("'it''s'") == Const("it's")

    def test_attr_ref(self):
        e = parse_expression("function$list1.FUNCTS")
        assert e == AttrRef("function$list1", "FUNCTS")

    def test_bare_identifier_is_unresolved_ref(self):
        e = parse_expression("no$msg")
        assert e == AttrRef("", "no$msg")

    def test_call(self):
        e = parse_expression("union$setof(function.OBJ, S.FUNCTS)")
        assert isinstance(e, Call)
        assert e.func == "union$setof"
        assert len(e.args) == 2

    def test_nullary_call(self):
        e = parse_expression("empty$set()")
        assert e == Call("empty$set", ())

    def test_infix_precedence(self):
        e = parse_expression("a.X + b.Y * 2 = 10 or c.Z")
        assert isinstance(e, BinOp) and e.op == "OR"
        left = e.left
        assert isinstance(left, BinOp) and left.op == "="

    def test_not(self):
        e = parse_expression("not function.EVAL")
        assert e == Not(AttrRef("function", "EVAL"))

    def test_unary_minus(self):
        e = parse_expression("-x.A")
        assert e == BinOp("-", Const(0), AttrRef("x", "A"))

    def test_comparison_ops(self):
        for op in ("=", "<>", "<", ">", "<=", ">="):
            e = parse_expression(f"a.X {op} 1")
            assert isinstance(e, BinOp) and e.op == op

    def test_if_expression(self):
        e = parse_expression("if a.X = 0 then 1 else 2 endif")
        assert isinstance(e, If)
        assert e.arity() == 1
        assert e.then_branch == (Const(1),)
        assert e.else_branch == (Const(2),)

    def test_elsif_desugars_to_nested_if(self):
        e = parse_expression(
            "if a.X = 0 then 1 elsif a.X = 1 then 2 else 3 endif"
        )
        assert isinstance(e, If)
        assert isinstance(e.else_branch, If)
        assert e.else_branch.then_branch == (Const(2),)

    def test_multi_valued_if(self):
        e = parse_expression("if c.B then 1, 2 else 3, 4 endif")
        assert e.arity() == 2
        first = e.select(0)
        assert first.then_branch == (Const(1),)
        assert first.else_branch == (Const(3),)
        second = e.select(1)
        assert second.then_branch == (Const(2),)

    def test_multi_valued_elsif_select(self):
        e = parse_expression(
            "if c.B then 1, 2 elsif c.D then 3, 4 else 5, 6 endif"
        )
        assert e.arity() == 2
        sel = e.select(1)
        assert sel.then_branch == (Const(2),)
        assert isinstance(sel.else_branch, If)
        assert sel.else_branch.then_branch == (Const(4),)

    def test_branch_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("if c.B then 1, 2 else 3 endif")

    def test_nested_if_in_branch(self):
        e = parse_expression(
            "if a.X then if a.Y then 1 else 2 endif else 3 endif"
        )
        assert isinstance(e.then_branch[0], If)

    def test_if_forbidden_in_operand(self):
        with pytest.raises(ParseError):
            parse_expression("1 + if a.X then 1 else 2 endif")

    def test_if_forbidden_in_call_argument(self):
        with pytest.raises(ParseError):
            parse_expression("f(if a.X then 1 else 2 endif)")

    def test_parenthesized(self):
        e = parse_expression("(a.X + 1) * 2")
        assert isinstance(e, BinOp) and e.op == "*"

    def test_div_keyword(self):
        e = parse_expression("a.X div 2")
        assert isinstance(e, BinOp) and e.op == "DIV"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 2")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a.X @ 1")

    def test_expression_list(self):
        out = parse_expression_list("1, a.X, f(2)")
        assert len(out) == 3

    def test_comments_skipped(self):
        e = parse_expression("1 + 2 # pass 2")
        assert isinstance(e, BinOp)


class TestExprProperties:
    def test_refs_iteration_order(self):
        e = parse_expression("f(a.X, b.Y) + c.Z")
        refs = [str(r) for r in e.refs()]
        assert refs == ["a.X", "b.Y", "c.Z"]

    def test_refs_in_if(self):
        e = parse_expression("if a.C then b.T else c.E endif")
        refs = {str(r) for r in e.refs()}
        assert refs == {"a.C", "b.T", "c.E"}

    def test_contains_if(self):
        assert parse_expression("if a.X then 1 else 2 endif").contains_if()
        assert not parse_expression("a.X + 1").contains_if()

    def test_expression_size_monotone(self):
        small = parse_expression("a.X")
        large = parse_expression("if c.B then f(a.X + 1, 2) else g(3) endif")
        assert expression_size(small) == 1
        assert expression_size(large) > expression_size(small)

    def test_select_out_of_range(self):
        e = parse_expression("if c.B then 1, 2 else 3, 4 endif")
        with pytest.raises(IndexError):
            e.select(5)
        with pytest.raises(IndexError):
            parse_expression("1").select(1)

    def test_bad_operator_rejected_in_ast(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))

    def test_str_round_trippable_through_parser(self):
        texts = [
            "a.X + 1",
            "if a.C then f(b.T) else 0 endif",
            "not (a.X = 2)",
            "union$setof(f.OBJ, g.SET)",
        ]
        for text in texts:
            e1 = parse_expression(text)
            e2 = parse_expression(str(e1))
            assert e1 == e2
