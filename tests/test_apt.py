"""Unit tests for APT nodes, spool storage, and linearization (S9)."""

import os

import pytest

from repro.apt import (
    APTNode,
    DiskSpool,
    MemorySpool,
    estimate_bytes,
    iter_bottom_up,
    iter_prefix,
)
from repro.apt.linear import TreeNode
from repro.errors import EvaluationError
from repro.passes.schedule import Direction
from repro.util.iotrack import IOAccountant
from repro.util.lists import SetList, PartialFunction


class TestNode:
    def test_byte_size_grows_with_attrs(self):
        a = APTNode("S")
        b = APTNode("S", attrs={"X": 1, "Y": "hello world"})
        assert b.byte_size() > a.byte_size()

    def test_estimate_bytes_kinds(self):
        assert estimate_bytes(None) == 2
        assert estimate_bytes(1) == 2
        assert estimate_bytes(1.5) == 4
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes((1, 2)) > 4
        assert estimate_bytes(SetList.from_iterable([1, 2, 3])) > 6

    def test_copy_is_independent(self):
        a = APTNode("S", attrs={"X": 1})
        b = a.copy()
        b.attrs["X"] = 2
        assert a.attrs["X"] == 1

    def test_str(self):
        n = APTNode("S", production=3, attrs={"X": 1})
        assert "S" in str(n) and "p3" in str(n)


def spool_cases(tmp_path):
    acct = IOAccountant()
    yield MemorySpool(acct, "mem"), acct
    acct2 = IOAccountant()
    yield DiskSpool(str(tmp_path / "t.spool"), acct2, "disk"), acct2


class TestSpools:
    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_round_trip_forward(self, kind, tmp_path):
        spool = (
            MemorySpool() if kind == "memory" else DiskSpool(str(tmp_path / "a.spool"))
        )
        records = [("S", 1, {"X": i}, False) for i in range(20)]
        for r in records:
            spool.append(r)
        spool.finalize()
        assert list(spool.read_forward()) == records
        spool.close()

    @pytest.mark.parametrize("kind", ["memory", "disk"])
    def test_round_trip_backward(self, kind, tmp_path):
        spool = (
            MemorySpool() if kind == "memory" else DiskSpool(str(tmp_path / "b.spool"))
        )
        records = [("S", None, {"X": i}, False) for i in range(7)]
        for r in records:
            spool.append(r)
        spool.finalize()
        assert list(spool.read_backward()) == list(reversed(records))
        spool.close()

    def test_read_before_finalize_rejected(self):
        spool = MemorySpool()
        spool.append(("S", None, {}, False))
        with pytest.raises(EvaluationError):
            list(spool.read_forward())

    def test_append_after_finalize_rejected(self):
        spool = MemorySpool()
        spool.finalize()
        with pytest.raises(EvaluationError):
            spool.append(("S", None, {}, False))

    def test_io_accounting(self):
        acct = IOAccountant()
        spool = MemorySpool(acct, "ch")
        for i in range(5):
            spool.append(("S", None, {"X": i}, False))
        spool.finalize()
        list(spool.read_forward())
        assert acct.records_written == 5
        assert acct.records_read == 5
        assert acct.bytes_written == acct.bytes_read > 0
        assert acct.by_channel["ch"].records_read == 5

    def test_disk_spool_multiple_reads(self, tmp_path):
        spool = DiskSpool(str(tmp_path / "c.spool"))
        for i in range(3):
            spool.append(i)
        spool.finalize()
        assert list(spool.read_forward()) == [0, 1, 2]
        assert list(spool.read_backward()) == [2, 1, 0]
        assert list(spool.read_forward()) == [0, 1, 2]
        spool.close()

    def test_disk_spool_temp_file_cleanup(self):
        spool = DiskSpool()
        path = spool.path
        spool.append(1)
        spool.finalize()
        assert os.path.exists(path)
        spool.close()
        assert not os.path.exists(path)

    def test_disk_file_bytes(self, tmp_path):
        spool = DiskSpool(str(tmp_path / "d.spool"))
        spool.append(("record",))
        spool.finalize()
        assert spool.file_bytes() == os.path.getsize(spool.path)
        spool.close()

    def test_complex_attribute_values_survive(self, tmp_path):
        spool = DiskSpool(str(tmp_path / "e.spool"))
        s = SetList.from_iterable([1, 2, 3])
        pf = PartialFunction.empty().bind("k", (1, "v"))
        spool.append(("S", 0, {"SET": s, "PF": pf}, False))
        spool.finalize()
        ((sym, prod, attrs, limb),) = list(spool.read_forward())
        assert attrs["SET"] == s
        assert attrs["PF"] == pf
        spool.close()

    def test_deep_list_pickles_without_recursion_error(self, tmp_path):
        from repro.util.lists import Sequence

        deep = Sequence.from_iterable(range(5000))
        spool = DiskSpool(str(tmp_path / "f.spool"))
        spool.append(("S", 0, {"L": deep}, False))
        spool.finalize()
        ((_, _, attrs, _),) = list(spool.read_forward())
        assert len(attrs["L"]) == 5000
        assert list(attrs["L"])[:3] == [0, 1, 2]
        spool.close()


def paper_tree():
    """The §II diagram tree:

    M( F( B(A, C), E(D) ), G, L( H, K(I, J) ) ) — letters are node names;
    all nodes share one symbol since only the order matters here.
    """

    def leaf(name):
        return TreeNode(APTNode(name))

    def interior(name, *children):
        return TreeNode(APTNode(name, production=0), list(children))

    b = interior("B", leaf("A"), leaf("C"))
    e = interior("E", leaf("D"))
    f = interior("F", b, e)
    k = interior("K", leaf("I"), leaf("J"))
    l = interior("L", leaf("H"), k)
    return interior("M", f, leaf("G"), l)


class TestLinearization:
    def test_paper_postfix_l2r(self):
        order = [n.symbol for n in iter_bottom_up(paper_tree(), Direction.L2R)]
        assert order == list("ACBDEFGHIJKLM")

    def test_paper_prefix_l2r(self):
        order = [n.symbol for n in iter_prefix(paper_tree(), Direction.L2R)]
        assert order == list("MFBACEDGLHKIJ")

    def test_reversal_invariant(self):
        """§II: the output of an L2R pass read backwards IS the input of
        an R2L pass — and vice versa."""
        tree = paper_tree()
        l2r_out = [n.symbol for n in iter_bottom_up(tree, Direction.L2R)] + ["M"][0:0]
        l2r_out = [n.symbol for n in iter_bottom_up(tree, Direction.L2R)]
        # The driver writes the root last:
        full_l2r = l2r_out  # iter_bottom_up already ends with the root
        r2l_in = [n.symbol for n in iter_prefix(tree, Direction.R2L)]
        assert list(reversed(full_l2r)) == r2l_in

    def test_reversal_invariant_other_direction(self):
        tree = paper_tree()
        r2l_out = [n.symbol for n in iter_bottom_up(tree, Direction.R2L)]
        l2r_in = [n.symbol for n in iter_prefix(tree, Direction.L2R)]
        assert list(reversed(r2l_out)) == l2r_in

    def test_limb_nodes_positioning(self):
        limb = APTNode("Limb", production=0, is_limb=True)
        child = TreeNode(APTNode("C"))
        root = TreeNode(APTNode("R", production=0), [child], limb)
        postfix = [n.symbol for n in iter_bottom_up(root, Direction.L2R)]
        prefix = [n.symbol for n in iter_prefix(root, Direction.L2R)]
        assert postfix == ["C", "Limb", "R"]
        assert prefix == ["R", "Limb", "C"]
        # Reversal with limbs still holds.
        r2l_in = [n.symbol for n in iter_prefix(root, Direction.R2L)]
        assert list(reversed(postfix)) == r2l_in
