"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.grammars import source_path


class TestStats:
    def test_stats_on_shipped_grammar(self, capsys):
        assert main(["stats", source_path("binary")]) == 0
        out = capsys.readouterr().out
        assert "statistics" in out
        assert "alternating pass" in out
        assert "overlay times" in out

    def test_stats_auto_direction(self, capsys):
        assert main(["stats", source_path("calc"), "--direction", "auto"]) == 0
        out = capsys.readouterr().out
        assert "1 alternating pass" in out  # calc is L-attributed

    def test_semantic_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.ag"
        bad.write_text(
            "grammar g : s .\nsymbols\n  nonterminal s ;\n  terminal T ;\n"
            "attributes\n  s : synthesized V int ;\nproductions\n"
            "s = T .\n  s.W = 1 ;\nend\n"
        )
        assert main(["stats", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestListing:
    def test_listing_to_stdout(self, capsys):
        assert main(["listing", source_path("binary")]) == 0
        assert "implicit copy-rule" in capsys.readouterr().out

    def test_listing_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "l.txt"
        assert main(["listing", source_path("binary"), "-o", str(out_file)]) == 0
        assert "written" in capsys.readouterr().out
        assert "productions with semantic functions" in out_file.read_text()


class TestGenerate:
    def test_generate_pascal(self, tmp_path, capsys):
        assert main([
            "generate", source_path("binary"), "--language", "pascal",
            "-o", str(tmp_path),
        ]) == 0
        files = sorted(os.listdir(tmp_path))
        assert files == ["pass1.pas", "pass2.pas"]
        text = (tmp_path / "pass1.pas").read_text()
        assert "GetNode" in text
        assert "husk" in capsys.readouterr().out

    def test_generate_python_is_importable(self, tmp_path, capsys):
        assert main([
            "generate", source_path("binary"), "--language", "python",
            "-o", str(tmp_path),
        ]) == 0
        src = (tmp_path / "pass2.py").read_text()
        compile(src, "pass2.py", "exec")


class TestRun:
    def test_run_binary(self, capsys):
        assert main(["run", "binary", "101.01"]) == 0
        assert "VAL = 5.25" in capsys.readouterr().out

    def test_run_calc(self, capsys):
        assert main(["run", "calc", "let a = 6 ; print a * 7"]) == 0
        assert "OUT = [42]" in capsys.readouterr().out

    def test_run_pascal_with_exec(self, capsys, tmp_path):
        prog = tmp_path / "p.pas"
        prog.write_text(
            "program p; var a : integer; begin a := 6; writeln(a * 7) end."
        )
        assert main(["run", "pascal", str(prog), "--exec"]) == 0
        out = capsys.readouterr().out
        assert "execution output: [42]" in out

    def test_run_linguist_on_grammar(self, capsys):
        assert main(["run", "linguist", source_path("binary")]) == 0
        out = capsys.readouterr().out
        assert "N$PRODS = 5" in out

    def test_run_unknown_grammar(self, capsys):
        assert main(["run", "nope", "x"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_exec_without_code_attribute(self, capsys):
        assert main(["run", "binary", "1.1", "--exec"]) == 2
        assert "no CODE" in capsys.readouterr().err


class TestSelfcheck:
    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "4 alternating passes" in out
