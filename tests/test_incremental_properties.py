"""Property suite for the incremental subtree hashing
(:func:`repro.passes.incremental.record_digest` and the two
subtree-index sweeps).

Three properties back the memo's correctness argument:

1. **Stability** — subtree hashes are a function of the decoded
   records, invariant under a v3 disk-spool round-trip and under
   string re-construction (name-table interning produces equal-but-
   not-identical strings).
2. **Shape sensitivity** — two distinct tree shapes over the *same*
   leaf frontier hash to distinct roots (the concatenated frontier
   string is not what is hashed; the Merkle combination sees
   structure).
3. **Spine locality** — mutating a single record changes the hash of
   exactly the subtrees that contain it: ``{i : i - spans[i] + 1 <= j
   <= i}``, the spine from the mutated record to the root.  This is
   the invariant the dirty-spine evaluator relies on: everything off
   the spine keeps its hash and stays spliceable.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apt.build import APTBuilder
from repro.apt.storage import DiskSpool, MemorySpool
from repro.core import Linguist
from repro.grammars import load_source, scanner_and_library
from repro.passes.incremental import (
    postfix_subtree_index,
    record_digest,
)
from repro.workloads.generators import generate_calc_program

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# shared calc pipeline (built once; hypothesis examples reuse it)
# ---------------------------------------------------------------------------


class _Calc:
    _instance = None

    def __init__(self):
        source = load_source("calc")
        spec, library = scanner_and_library("calc")
        self.linguist = Linguist(source)
        self.ag = self.linguist.ag
        self.translator = self.linguist.make_translator(
            spec, library=library, backend="interp"
        )

    @classmethod
    def get(cls) -> "_Calc":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance

    def postfix_records(self, text: str):
        tokens = list(self.translator.scanner.tokens(text))
        spool = MemorySpool(channel="initial")
        builder = APTBuilder(self.ag, spool, build_tree=False)
        self.translator.parser.parse(tokens, listener=builder,
                                     build_tree=False)
        builder.finish()
        return list(spool.read_forward())


# ---------------------------------------------------------------------------
# P1: stability across spool round-trip and string re-construction
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    n=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_hashes_stable_across_spool_roundtrip(tmp_path_factory, n, seed):
    calc = _Calc.get()
    records = calc.postfix_records(generate_calc_program(n, seed=seed))
    direct = postfix_subtree_index(records, calc.ag)

    path = os.path.join(
        str(tmp_path_factory.mktemp("roundtrip")), "initial.spool"
    )
    spool = DiskSpool(path=path, channel="roundtrip")
    for record in records:
        spool.append(record)
    spool.finalize()
    rehydrated = list(DiskSpool.open(path).read_forward())
    roundtrip = postfix_subtree_index(rehydrated, calc.ag)

    assert roundtrip.hashes == direct.hashes
    assert roundtrip.spans == direct.spans


@SETTINGS
@given(
    n=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_digests_invariant_under_string_reconstruction(n, seed):
    """Interning (or any copy) of symbol/attr strings must not move a
    digest: equal strings hash equal, identity is irrelevant."""
    calc = _Calc.get()
    records = calc.postfix_records(generate_calc_program(n, seed=seed))

    def copy_str(s):
        return s.encode("utf-8").decode("utf-8") if isinstance(s, str) else s

    for symbol, production, attrs, is_limb in records:
        clone = (
            copy_str(symbol),
            production,
            {copy_str(k): copy_str(v) for k, v in attrs.items()},
            is_limb,
        )
        assert record_digest(clone) == record_digest(
            (symbol, production, attrs, is_limb)
        )


# ---------------------------------------------------------------------------
# P2: equal leaf frontier, different shape -> different root hash
# ---------------------------------------------------------------------------
#
# postfix_subtree_index only touches ``ag.productions[p].rhs`` (its
# length) and ``.limb`` — a stub grammar suffices, so the property can
# range over arbitrary tree shapes, not just ones calc can parse.


class _FakeProd:
    def __init__(self, index, arity):
        self.index = index
        self.rhs = [f"c{i}" for i in range(arity)]
        self.limb = False


class _FakeAG:
    """productions[arity] is the (sole) production of that arity."""

    def __init__(self, max_arity=8):
        self.productions = {
            a: _FakeProd(a, a) for a in range(1, max_arity + 1)
        }


@st.composite
def tree_shapes(draw, n_leaves):
    """A tree shape over ``n_leaves`` ordered leaves, as nested tuples
    of leaf indices (a leaf is an int, an interior node a tuple of
    2..4 children)."""
    if n_leaves == 1:
        return draw(st.just(0))

    def build(lo, hi):
        count = hi - lo
        if count == 1:
            return lo
        n_children = draw(st.integers(2, min(4, count)))
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(lo + 1, hi - 1),
                    min_size=n_children - 1,
                    max_size=n_children - 1,
                    unique=True,
                )
            )
        )
        bounds = [lo] + cuts + [hi]
        return tuple(
            build(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
        )

    return build(0, n_leaves)


def shape_to_postfix(shape, leaves):
    """Flatten a shape to a postfix record stream over ``leaves``
    (each leaf a (symbol, text) pair)."""
    records = []

    def emit(node):
        if isinstance(node, int):
            sym, text = leaves[node]
            records.append((sym, None, {"text": text}, False))
            return
        for child in node:
            emit(child)
        records.append(("node", len(node), {}, False))

    emit(shape)
    return records


@SETTINGS
@given(data=st.data(), n_leaves=st.integers(min_value=2, max_value=12))
def test_distinct_shapes_over_equal_frontier_hash_distinct(data, n_leaves):
    leaves = [("num", str(i)) for i in range(n_leaves)]
    a = data.draw(tree_shapes(n_leaves), label="shape-a")
    b = data.draw(tree_shapes(n_leaves), label="shape-b")
    ag = _FakeAG()
    idx_a = postfix_subtree_index(shape_to_postfix(a, leaves), ag)
    idx_b = postfix_subtree_index(shape_to_postfix(b, leaves), ag)
    if a == b:
        assert idx_a.hashes == idx_b.hashes
    else:
        # Same frontier string, different structure: the roots (last
        # postfix records) must not collide.
        assert idx_a.hashes[-1] != idx_b.hashes[-1]


def test_equal_frontier_regression_pair():
    """The canonical counterexample from the module docstring:
    ``[a b n c n]`` vs ``[a b c n n]`` — same leaves a b c, different
    nesting — must hash apart at the root."""
    leaves = [("t", "a"), ("t", "b"), ("t", "c")]
    ag = _FakeAG()
    nested = ((0, 1), 2)  # (a b) c
    flat = (0, 1, 2)  # a b c
    i1 = postfix_subtree_index(shape_to_postfix(nested, leaves), ag)
    i2 = postfix_subtree_index(shape_to_postfix(flat, leaves), ag)
    assert i1.hashes[-1] != i2.hashes[-1]


# ---------------------------------------------------------------------------
# P3: a single-record mutation dirties exactly the spine
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    data=st.data(),
    n=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_single_mutation_dirties_exactly_the_spine(data, n, seed):
    calc = _Calc.get()
    records = calc.postfix_records(generate_calc_program(n, seed=seed))
    base = postfix_subtree_index(records, calc.ag)

    j = data.draw(
        st.integers(0, len(records) - 1).filter(
            lambda i: records[i][2]  # a record with attributes to mutate
        ),
        label="mutated-record",
    )
    symbol, production, attrs, is_limb = records[j]
    name = sorted(attrs)[0]
    mutated = dict(attrs)
    mutated[name] = str(mutated[name]) + "\x00edit"
    edited = list(records)
    edited[j] = (symbol, production, mutated, is_limb)

    after = postfix_subtree_index(edited, calc.ag)
    assert after.spans == base.spans, "a value edit must not change shape"

    spine = {
        i
        for i in range(len(records))
        if i - base.spans[i] + 1 <= j <= i
    }
    changed = {
        i for i in range(len(records)) if after.hashes[i] != base.hashes[i]
    }
    assert changed == spine
    # The spine reaches the root and is a path: one node per nesting
    # level, monotonically widening spans.
    assert (len(records) - 1) in spine
