"""Parametric stress tests for the alternating-pass partitioner.

``flow_chain(directions)`` builds a grammar with one attribute per
element of ``directions``: attribute ``F{i}`` flows between the two
children of the root in the given direction and depends on ``F{i-1}``.
The minimal alternating-pass count is predictable from the direction
sequence — pass numbers only advance when the required direction
changes — so the partitioner can be checked against a closed form, and
the generated evaluator against a direct computation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ag import GrammarBuilder
from repro.passes import Direction, assign_passes

from tests.evalharness import Pipeline, tokens_of

L, R = Direction.L2R, Direction.R2L


def flow_chain(directions):
    """root = item item; F1..Fn flow between the items as directed.

    ``F{i}`` of the *receiving* item is its sibling's ``G{i}``
    (synthesized), where ``G{i} = F{i-1}-of-self + 1`` (``G1`` starts
    from the leaf's intrinsic W).  Direction L2R: the right item
    receives from the left; R2L: mirror image.
    """
    n = len(directions)
    b = GrammarBuilder("flow_chain", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    inh = {f"F{i}": "int" for i in range(1, n + 1)}
    syn = {f"G{i}": "int" for i in range(1, n + 1)}
    b.nonterminal("item", inherited=inh, synthesized=syn)
    b.terminal("X", intrinsic={"W": "int"})
    funcs = []
    for i, direction in enumerate(directions, start=1):
        src, dst = ("item0", "item1") if direction is L else ("item1", "item0")
        funcs.append((f"{dst}.F{i}", f"{src}.G{i}"))
        funcs.append((f"{src}.F{i}", "0"))
    final_holder = "item1" if directions[-1] is L else "item0"
    funcs.append(("root.OUT", f"{final_holder}.G{n}"))
    b.production("root", ["item", "item"], functions=funcs)
    leaf_funcs = [("item.G1", "item.F1 + X.W")] if n >= 1 else []
    for i in range(2, n + 1):
        leaf_funcs.append((f"item.G{i}", f"item.F{i} + item.G{i-1}"))
    b.production("item", ["X"], functions=leaf_funcs)
    return b.finish()


def predicted_passes(directions, first=R):
    """Closed form: G{i} must be computed in a pass running in
    ``directions[i-1]``; pass numbers are nondecreasing along the chain
    and advance to the next pass of the right parity on each change."""
    current = 0  # pass number of the previous link (0 = before pass 1)
    for d in directions:
        candidate = max(current, 1)
        # Advance until the candidate pass runs in direction d.
        def dir_of(k):
            return first if k % 2 == 1 else first.opposite

        if current == 0:
            candidate = 1 if dir_of(1) is d else 2
        else:
            candidate = current if dir_of(current) is d else current + 1
        current = candidate
    return current


def expected_value(directions, w_left, w_right):
    """Direct simulation of the chained flows."""
    vals = {"L": {"F": {}, "G": {}}, "R": {"F": {}, "G": {}}}
    w = {"L": w_left, "R": w_right}
    for i, d in enumerate(directions, start=1):
        src, dst = ("L", "R") if d is L else ("R", "L")
        # F{i} at src is 0; at dst it's src's G{i}.
        for side in ("L", "R"):
            prev_g = vals[side]["G"].get(i - 1, None)
            base = w[side] if i == 1 else prev_g
            f_val = 0 if side == src else None  # filled after G known
            vals[side]["F"][i] = f_val
        # G{i}(side) = F{i}(side) + (W if i==1 else G{i-1}(side))
        # Compute src first (its F is 0), then dst.
        def g_of(side, f_val):
            base = w[side] if i == 1 else vals[side]["G"][i - 1]
            return f_val + base

        g_src = g_of(src, 0)
        vals[src]["G"][i] = g_src
        vals[dst]["F"][i] = g_src
        vals[dst]["G"][i] = g_of(dst, g_src)
    final = "R" if directions[-1] is L else "L"
    return vals[final]["G"][len(directions)]


DIRECTION_SEQS = [
    [R], [L],
    [R, L], [L, R], [R, R], [L, L],
    [R, L, R], [L, R, L], [R, R, L],
    [L, R, L, R], [R, L, R, L],
]


class TestFlowChainFamily:
    @pytest.mark.parametrize("directions", DIRECTION_SEQS,
                             ids=lambda ds: "".join(d.name[0] for d in ds))
    def test_pass_count_matches_closed_form(self, directions):
        ag = flow_chain(directions)
        assignment = assign_passes(ag, R)
        assert assignment.n_passes == predicted_passes(directions, first=R)

    @pytest.mark.parametrize("directions", DIRECTION_SEQS[:8],
                             ids=lambda ds: "".join(d.name[0] for d in ds))
    def test_evaluation_matches_direct_simulation(self, directions):
        pipe = Pipeline(flow_chain(directions))
        toks = tokens_of([("X", "5"), ("X", "11")])
        result, _ = pipe.evaluate(toks, backend="generated")
        assert result["OUT"] == expected_value(directions, 5, 11)

    @given(st.lists(st.sampled_from([L, R]), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_property_pass_count_and_value(self, directions):
        ag = flow_chain(directions)
        assignment = assign_passes(ag, R)
        assert assignment.n_passes == predicted_passes(directions, first=R)
        pipe = Pipeline(ag)
        toks = tokens_of([("X", "3"), ("X", "7")])
        result, _ = pipe.evaluate(toks, backend="interp")
        assert result["OUT"] == expected_value(directions, 3, 7)

    def test_oracle_agrees_on_deep_chain(self):
        directions = [R, L, R, L, R, L]
        pipe = Pipeline(flow_chain(directions))
        toks = tokens_of([("X", "2"), ("X", "9")])
        result, _ = pipe.evaluate(toks, backend="generated")
        oracle_result, _ = pipe.oracle(toks)
        assert result["OUT"] == oracle_result["OUT"]
