"""Differential testing of the generated calc translator.

Random well-formed desk-calculator programs are rendered to source,
compiled and evaluated through the full LINGUIST pipeline (scanner →
LALR parser → two alternating passes over spool files), and compared
against a direct Python interpretation of the same program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Linguist
from repro.grammars import load_source
from repro.grammars.scanners import calc_scanner_spec

_TRANSLATOR = None


def translator():
    global _TRANSLATOR
    if _TRANSLATOR is None:
        _TRANSLATOR = Linguist(load_source("calc")).make_translator(
            calc_scanner_spec()
        )
    return _TRANSLATOR


# -- random program ASTs -----------------------------------------------------

@st.composite
def expr_ast(draw, env_names, depth=0):
    if depth >= 3 or not env_names:
        if env_names and draw(st.booleans()):
            return ("var", draw(st.sampled_from(env_names)))
        return ("num", draw(st.integers(0, 99)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return ("num", draw(st.integers(0, 99)))
    if kind == 1:
        return ("var", draw(st.sampled_from(env_names)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return (op, draw(expr_ast(env_names, depth + 1)),
            draw(expr_ast(env_names, depth + 1)))


@st.composite
def programs(draw):
    stmts = []
    names = []
    n = draw(st.integers(1, 8))
    for i in range(n):
        if names and draw(st.booleans()):
            stmts.append(("print", draw(expr_ast(tuple(names)))))
        else:
            name = f"v{len(names)}"
            stmts.append(("let", name, draw(expr_ast(tuple(names)))))
            names.append(name)
    if not any(s[0] == "print" for s in stmts):
        stmts.append(("print", draw(expr_ast(tuple(names)))))
    return stmts


# -- rendering and direct interpretation ------------------------------------

def render_expr(e):
    kind = e[0]
    if kind == "num":
        return str(e[1])
    if kind == "var":
        return e[1]
    return f"({render_expr(e[1])} {kind} {render_expr(e[2])})"


def render(stmts):
    lines = []
    for s in stmts:
        if s[0] == "let":
            lines.append(f"let {s[1]} = {render_expr(s[2])}")
        else:
            lines.append(f"print {render_expr(s[1])}")
    return " ;\n".join(lines)


def interpret(stmts):
    env = {}
    out = []

    def ev(e):
        kind = e[0]
        if kind == "num":
            return e[1]
        if kind == "var":
            return env[e[1]]
        a, b = ev(e[1]), ev(e[2])
        return a + b if kind == "+" else a - b if kind == "-" else a * b

    for s in stmts:
        if s[0] == "let":
            env[s[1]] = ev(s[2])
        else:
            out.append(ev(s[1]))
    return out


class TestCalcDifferential:
    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_translator_matches_direct_interpretation(self, stmts):
        source = render(stmts)
        result = translator().translate(source)
        assert list(result["OUT"]) == interpret(stmts)

    def test_fixed_corner_cases(self):
        cases = [
            ("print 0", [0]),
            ("let a = 5 ;\nprint a * a * a", [125]),
            ("let a = 3 ;\nlet a2 = a - 7 ;\nprint a2 ;\nprint a2 * 0",
             [-4, 0]),
        ]
        for source, expected in cases:
            assert list(translator().translate(source)["OUT"]) == expected
