"""Unit tests for the list-processing package (S1)."""

import pytest

from repro.util.lists import (
    BOTTOM,
    NIL,
    ConsList,
    PartialFunction,
    Sequence,
    SetList,
    STANDARD_FUNCTIONS,
)


class TestConsList:
    def test_nil_is_empty(self):
        assert len(NIL) == 0
        assert not NIL
        assert NIL.is_nil
        assert list(NIL) == []

    def test_cons_prepends(self):
        lst = NIL.cons(3).cons(2).cons(1)
        assert list(lst) == [1, 2, 3]
        assert len(lst) == 3

    def test_cons_is_persistent(self):
        base = NIL.cons(2)
        a = base.cons(1)
        b = base.cons(9)
        assert list(base) == [2]
        assert list(a) == [1, 2]
        assert list(b) == [9, 2]

    def test_structural_equality_and_hash(self):
        a = ConsList.from_iterable([1, 2, 3])
        b = NIL.cons(3).cons(2).cons(1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_lengths(self):
        assert ConsList.from_iterable([1]) != ConsList.from_iterable([1, 2])

    def test_contains(self):
        lst = ConsList.from_iterable("abc")
        assert "b" in lst
        assert "z" not in lst

    def test_reverse(self):
        lst = ConsList.from_iterable([1, 2, 3])
        assert list(lst.reverse()) == [3, 2, 1]

    def test_append(self):
        a = ConsList.from_iterable([1, 2])
        b = ConsList.from_iterable([3, 4])
        assert list(a.append(b)) == [1, 2, 3, 4]

    def test_from_iterable_empty(self):
        assert ConsList.from_iterable([]) == NIL

    def test_bad_tail_type_rejected(self):
        with pytest.raises(TypeError):
            ConsList(1, [2, 3])

    def test_cons_none_value(self):
        lst = NIL.cons(None)
        assert len(lst) == 1
        assert list(lst) == [None]


class TestSetList:
    def test_add_is_idempotent(self):
        s = SetList.empty().add(1).add(2).add(1)
        assert len(s) == 2

    def test_union(self):
        a = SetList.from_iterable([1, 2])
        b = SetList.from_iterable([2, 3])
        assert a.union(b) == SetList.from_iterable([1, 2, 3])

    def test_order_insensitive_equality(self):
        a = SetList.empty().add(1).add(2)
        b = SetList.empty().add(2).add(1)
        assert a == b
        assert hash(a) == hash(b)

    def test_intersection_and_difference(self):
        a = SetList.from_iterable([1, 2, 3])
        b = SetList.from_iterable([2, 3, 4])
        assert a.intersection(b) == SetList.from_iterable([2, 3])
        assert a.difference(b) == SetList.from_iterable([1])

    def test_empty_is_singleton(self):
        assert SetList.empty() is SetList.empty()


class TestPartialFunction:
    def test_lookup_unbound_is_bottom(self):
        pf = PartialFunction.empty()
        assert pf.lookup("x") is BOTTOM
        assert not pf.is_bound("x")

    def test_bind_and_lookup(self):
        pf = PartialFunction.empty().bind("x", 1).bind("y", 2)
        assert pf.lookup("x") == 1
        assert pf.lookup("y") == 2

    def test_rebind_shadows(self):
        pf = PartialFunction.empty().bind("x", 1).bind("x", 2)
        assert pf.lookup("x") == 2
        assert len(pf) == 1

    def test_domain(self):
        pf = PartialFunction.empty().bind("x", 1).bind("y", 2)
        assert pf.domain() == SetList.from_iterable(["x", "y"])

    def test_equality_ignores_shadowed(self):
        a = PartialFunction.empty().bind("x", 1).bind("x", 2)
        b = PartialFunction.empty().bind("x", 2)
        assert a == b

    def test_bottom_is_falsy(self):
        assert not BOTTOM


class TestStandardFunctions:
    def test_union_setof(self):
        f = STANDARD_FUNCTIONS["union$setof"]
        s = f(1, SetList.empty())
        assert list(s) == [1]
        assert f(1, s) == s

    def test_is_in(self):
        f = STANDARD_FUNCTIONS["IsIn"]
        assert f(1, SetList.from_iterable([1, 2]))
        assert not f(9, SetList.from_iterable([1, 2]))
        assert not f(1, None)

    def test_cons_pf_and_eval_pf(self):
        pf = STANDARD_FUNCTIONS["consPF"]("k", "v", None)
        assert STANDARD_FUNCTIONS["EvalPF"](pf, "k") == "v"
        assert STANDARD_FUNCTIONS["EvalPF"](pf, "missing") is BOTTOM

    def test_incr_if_zero(self):
        f = STANDARD_FUNCTIONS["IncrIfZero"]
        assert f(0, 5) == 6
        assert f(1, 5) == 5

    def test_cons_msg_drops_no_msg(self):
        f = STANDARD_FUNCTIONS["cons$msg"]
        empty = STANDARD_FUNCTIONS["null$msg$list"]()
        assert f(1, "no$msg", None, empty) == empty
        out = f(3, "boom", "f", empty)
        assert list(out) == [(3, "boom", "f")]

    def test_merge_msgs(self):
        f = STANDARD_FUNCTIONS["merge$msgs"]
        a = Sequence.from_iterable([1, 2])
        b = Sequence.from_iterable([3])
        assert list(f(a, b)) == [1, 2, 3]

    def test_cons2_cons3(self):
        s = STANDARD_FUNCTIONS["cons2"]("a", "b", Sequence.empty())
        assert list(s) == [("a", "b")]
        s3 = STANDARD_FUNCTIONS["cons3"]("a", "b", "c", Sequence.empty())
        assert list(s3) == [("a", "b", "c")]


class TestNameTableIntegration:
    def test_intern_round_trip(self):
        from repro.util.nametable import NameTable

        nt = NameTable()
        i = nt.intern("alpha")
        j = nt.intern("beta")
        assert i != j
        assert nt.intern("alpha") == i
        assert nt.spelling(i) == "alpha"
        assert len(nt) == 2
        assert "alpha" in nt
        assert nt.lookup("missing") == NameTable.NO_NAME

    def test_spelling_out_of_range(self):
        from repro.util.nametable import NameTable

        nt = NameTable()
        import pytest

        with pytest.raises(KeyError):
            nt.spelling(99)

    def test_byte_size_counts_entries(self):
        from repro.util.nametable import NameTable

        nt = NameTable()
        assert nt.byte_size() == 0
        nt.intern("abcd")
        assert nt.byte_size() == 12


class TestCatSeq:
    """The concatenation rope behind large appends."""

    def make_big(self, n=100):
        from repro.util.lists import Sequence

        return Sequence.from_iterable(range(n))

    def test_large_append_returns_rope(self):
        from repro.util.lists import CatSeq, Sequence

        big = self.make_big()
        out = big.append(Sequence.from_iterable([1000]))
        assert isinstance(out, CatSeq)
        assert list(out) == list(range(100)) + [1000]

    def test_small_append_stays_eager(self):
        from repro.util.lists import CatSeq, Sequence

        small = Sequence.from_iterable([1, 2])
        out = small.append(Sequence.from_iterable([3]))
        assert not isinstance(out, CatSeq)
        assert list(out) == [1, 2, 3]

    def test_rope_equality_with_cons_list(self):
        from repro.util.lists import Sequence

        big = self.make_big()
        rope = big.append(Sequence.from_iterable([7]))
        flat = Sequence.from_iterable(list(range(100)) + [7])
        assert rope == flat
        assert flat == rope
        assert hash(rope) == hash(flat)

    def test_rope_head_tail_cons(self):
        from repro.util.lists import Sequence

        rope = self.make_big(50).append(Sequence.from_iterable([99]))
        assert rope.head == 0
        assert rope.tail.head == 1
        assert rope.cons(-1).head == -1
        assert len(rope.cons(-1)) == 52

    def test_deep_rope_iteration_is_iterative(self):
        """10k chained appends must not hit the recursion limit."""
        from repro.util.lists import Sequence

        acc = Sequence.from_iterable(range(40))
        unit = Sequence.from_iterable([1])
        for _ in range(10_000):
            acc = acc.append(unit)
        assert len(acc) == 40 + 10_000
        assert sum(1 for _ in acc) == len(acc)

    def test_accumulation_is_linear_not_quadratic(self):
        """The whole point: n appends of constant pieces is ~O(n).

        Timing-free check: quadratic accumulation copies O(n^2) cells in
        total; the rope must allocate only O(n) nodes.  We count cells
        by construction instead of racing the clock.
        """
        from repro.util.lists import CatSeq, Sequence

        unit = Sequence.from_iterable([1, 2, 3])
        acc = unit
        for _ in range(2000):
            acc = acc.append(unit)
        assert len(acc) == 3 * 2001
        # The rope's left spine depth equals the append count — verify
        # iteration handles it and no flattening happened along the way.
        depth = 0
        node = acc
        while isinstance(node, CatSeq):
            depth += 1
            node = node.left
        assert depth >= 1980  # first few appends are eager (below the rope threshold)
        assert sum(1 for _ in acc) == len(acc)

    def test_rope_pickles_flat(self):
        import pickle
        from repro.util.lists import CatSeq, Sequence

        rope = self.make_big().append(Sequence.from_iterable([5]))
        back = pickle.loads(pickle.dumps(rope))
        assert not isinstance(back, CatSeq)
        assert back == rope

    def test_merge_msgs_handles_ropes(self):
        from repro.util.lists import Sequence, STANDARD_FUNCTIONS

        merge = STANDARD_FUNCTIONS["merge$msgs"]
        rope = self.make_big().append(Sequence.from_iterable(["x"]))
        merged = merge(rope, Sequence.from_iterable(["y"]))
        assert list(merged)[-2:] == ["x", "y"]
