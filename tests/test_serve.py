"""Tests for the fault-tolerant translation service (``repro.serve``).

Covers the robustness contract end to end:

* the pure admission primitives (deadline, backoff, circuit breaker)
  with a fake clock — every automaton transition is pinned;
* the SRVJ1 request journal — write/replay round trip, torn-tail
  crash artifacts vs real corruption, salvage, and the ``repro fsck``
  routing;
* the supervised worker handle — crash/hang detection and restart;
* the daemon — admission control, per-request timeouts, worker death
  mid-request with bounded idempotent retries, breaker degradation,
  graceful drain, and byte-identical outputs vs ``repro batch``.
"""

import asyncio
import json
import os

import pytest

from repro.errors import (
    GrammarUnavailable,
    JournalCorruptionError,
    ServeError,
    ServerOverloaded,
    TranslationTimeout,
    WorkerCrashed,
)
from repro.grammars import load_source, source_path
from repro.obs import MetricsRegistry
from repro.serve.admission import Backoff, CircuitBreaker, Deadline
from repro.serve.daemon import ServeConfig, TranslationServer
from repro.serve.journal import (
    RequestJournal,
    journal_path,
    replay_journal,
    salvage_journal,
    scan_journal,
)
from repro.serve.workers import WorkerHandle
from repro.testing.faults import (
    DIE_MARKER_ENV,
    HANG_MARKER_ENV,
    HANG_SECONDS_ENV,
    bit_flip,
)
from repro.workloads.generators import generate_calc_program


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def make_spec(tmp_path):
    from repro.batch import WorkerSpec

    return WorkerSpec(
        source=load_source("calc"),
        filename=source_path("calc"),
        grammar_name="calc",
        direction="r2l",
        cache_dir=str(tmp_path / "cache"),
    )


# ---------------------------------------------------------------------------
# admission primitives
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.tick(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.tick(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_none_is_unbounded(self):
        deadline = Deadline(None, clock=FakeClock())
        assert deadline.remaining() is None
        assert not deadline.expired


class TestBackoff:
    def test_grows_exponentially_to_cap(self):
        backoff = Backoff(base=0.1, factor=2.0, cap=5.0)
        delays = [backoff.next_delay() for _ in range(10)]
        # monotone up to the cap (jitter is at most 10%)
        assert delays[0] < delays[1] < delays[2]
        assert all(d <= 5.0 * 1.1 for d in delays)
        assert delays[-1] >= 5.0

    def test_deterministic(self):
        a = Backoff()
        b = Backoff()
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]

    def test_reset(self):
        backoff = Backoff()
        first = backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == first


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=5.0, metrics=None):
        return CircuitBreaker(
            grammar="calc",
            failure_threshold=threshold,
            reset_seconds=reset,
            max_reset_seconds=20.0,
            clock=clock,
            metrics=metrics,
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.admit()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(GrammarUnavailable) as excinfo:
            breaker.admit()
        assert excinfo.value.retry_after == pytest.approx(5.0)
        assert not breaker.available

    def test_success_resets_failure_count(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # e.g. a per-input error: service worked
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.tick(5.1)
        assert breaker.available
        breaker.admit()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        with pytest.raises(GrammarUnavailable):
            breaker.admit()  # second request while the probe is out

    def test_probe_success_closes(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        breaker = self.make(clock, metrics=metrics)
        for _ in range(3):
            breaker.record_failure()
        clock.tick(5.1)
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.admit()  # freely admitting again
        snap = metrics.snapshot()
        assert snap["serve.breaker_state"] == 0
        assert snap["serve.breaker.open"] == 1
        assert snap["serve.breaker.closed"] == 1

    def test_probe_failure_doubles_reset_time(self):
        clock = FakeClock()
        breaker = self.make(clock, reset=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.tick(5.1)
        breaker.admit()
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        clock.tick(5.1)  # old reset time is NOT enough any more
        with pytest.raises(GrammarUnavailable):
            breaker.admit()
        clock.tick(5.1)  # 10s total: doubled reset reached
        breaker.admit()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # ...and a success restores the base reset time
        breaker.record_success()
        assert breaker.reset_seconds == 5.0

    def test_release_probe_unwedges_half_open(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.tick(5.1)
        breaker.admit()
        # The probe got rejected at a full queue: neither success nor
        # failure — without release_probe() the breaker would wedge.
        breaker.release_probe()
        breaker.admit()
        assert breaker.state == CircuitBreaker.HALF_OPEN


# ---------------------------------------------------------------------------
# the request journal
# ---------------------------------------------------------------------------


class TestJournal:
    def write_journal(self, path, seal=True):
        journal = RequestJournal(str(path), grammars=["calc"])
        journal.admitted(1, "calc", "in-1")
        journal.completed(1, "calc", "out-1\n", 0.01, worker_id=0)
        journal.admitted(2, "calc", "in-2")
        journal.failed(2, "calc", "ParseError", "bad input")
        journal.admitted(3, "calc", "in-3")  # in flight at the "kill"
        if seal:
            journal.seal()
        else:
            journal.close()
        return journal.path

    def test_directory_vs_file_paths(self, tmp_path):
        assert journal_path(str(tmp_path)) == str(
            tmp_path / "requests.ndjson"
        )
        missing_dir = str(tmp_path / "not-yet")
        assert journal_path(missing_dir) == os.path.join(
            missing_dir, "requests.ndjson"
        )
        explicit = str(tmp_path / "mine.ndjson")
        assert journal_path(explicit) == explicit

    def test_write_scan_replay_round_trip(self, tmp_path):
        path = self.write_journal(tmp_path / "j")
        report = scan_journal(path)
        assert report.ok and report.sealed and not report.torn_tail
        state = replay_journal(path)
        assert state.sealed
        assert set(state.completed) == {1}
        assert state.failed[2][0] == "ParseError"
        assert state.in_flight == [3]
        assert state.duplicates == []
        assert state.n_admitted == 3

    def test_unsealed_journal_is_ok_not_corrupt(self, tmp_path):
        path = self.write_journal(tmp_path / "j", seal=False)
        report = scan_journal(path)
        assert report.ok and not report.sealed
        assert replay_journal(path).completed == {
            1: replay_journal(path).completed[1]
        }

    def test_torn_tail_is_expected_after_kill(self, tmp_path):
        path = self.write_journal(tmp_path / "j", seal=False)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"e":"done","i":5,"id":9,"sha":"abc')  # torn mid-write
        report = scan_journal(path)
        assert report.ok and report.torn_tail and not report.sealed
        state = replay_journal(path)
        assert state.torn_tail
        assert 9 not in state.completed  # the torn record does not count

    def test_bit_flip_is_corruption(self, tmp_path):
        path = self.write_journal(tmp_path / "j")
        bit_flip(path, os.path.getsize(path) // 2)
        report = scan_journal(path)
        assert not report.ok
        assert report.error.reason in ("checksum", "framing", "seal")
        with pytest.raises(JournalCorruptionError):
            replay_journal(path)

    def test_truncated_seal_detected(self, tmp_path):
        path = self.write_journal(tmp_path / "j")
        # drop one mid-stream record: the seal no longer matches
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
        with open(path, "w", encoding="utf-8") as f:
            f.writelines(lines[:2] + lines[3:])
        report = scan_journal(path)
        assert not report.ok

    def test_salvage_recovers_valid_prefix(self, tmp_path):
        path = self.write_journal(tmp_path / "j", seal=False)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"torn')
        out = str(tmp_path / "salvaged.ndjson")
        salvage_journal(path, out)
        report = scan_journal(out)
        assert report.ok and report.sealed
        state = replay_journal(out)
        assert set(state.completed) == {1} and set(state.failed) == {2}

    def test_duplicate_done_records_are_reported(self, tmp_path):
        journal = RequestJournal(str(tmp_path / "j"), grammars=["calc"])
        journal.admitted(1, "calc", "x")
        journal.completed(1, "calc", "out\n", 0.01)
        journal.completed(1, "calc", "out\n", 0.01)  # the invariant breach
        journal.seal()
        state = replay_journal(journal.path)
        assert state.duplicates == [1]

    def test_rotation_preserves_previous_run(self, tmp_path):
        first = self.write_journal(tmp_path / "j")
        journal = RequestJournal(str(tmp_path / "j"), grammars=["calc"])
        journal.seal()
        assert journal.rotated_from is not None
        assert os.path.exists(journal.rotated_from)
        assert scan_journal(journal.rotated_from).ok
        assert journal.path == first

    def test_writing_after_seal_raises(self, tmp_path):
        journal = RequestJournal(str(tmp_path / "j"))
        journal.seal()
        journal.seal()  # idempotent
        with pytest.raises(JournalCorruptionError):
            journal.admitted(1, "calc", "late")


class TestFsckJournalCLI:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_sealed_journal_fscks_clean(self, tmp_path, capsys):
        path = TestJournal().write_journal(tmp_path / "j")
        assert self.run_cli(["fsck", path]) == 0
        out = capsys.readouterr().out
        assert "SRVJ1, sealed" in out
        assert "1 completed, 1 failed, 1 in flight" in out

    def test_unsealed_journal_fscks_clean(self, tmp_path, capsys):
        path = TestJournal().write_journal(tmp_path / "j", seal=False)
        assert self.run_cli(["fsck", path]) == 0
        assert "UNSEALED" in capsys.readouterr().out

    def test_corrupt_journal_exits_one(self, tmp_path, capsys):
        path = TestJournal().write_journal(tmp_path / "j")
        bit_flip(path, os.path.getsize(path) // 2)
        assert self.run_cli(["fsck", path]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_salvage_then_clean(self, tmp_path, capsys):
        path = TestJournal().write_journal(tmp_path / "j", seal=False)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"torn')
        out = str(tmp_path / "fixed.ndjson")
        assert self.run_cli(["fsck", path, "--salvage", out]) == 0
        capsys.readouterr()
        assert self.run_cli(["fsck", out]) == 0


# ---------------------------------------------------------------------------
# supervised workers
# ---------------------------------------------------------------------------


class TestWorkerHandle:
    def test_call_round_trip(self, tmp_path):
        handle = WorkerHandle(make_spec(tmp_path)).start()
        try:
            answer = handle.call(7, "let a = 6 ; print a * 7")
            job_id, ok, attrs, _, _, _, seconds = answer
            assert job_id == 7 and ok
            assert seconds >= 0
        finally:
            handle.stop()
        assert not handle.alive

    def test_worker_death_raises_typed_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DIE_MARKER_ENV, "@@die@@")
        handle = WorkerHandle(make_spec(tmp_path)).start()
        try:
            with pytest.raises(WorkerCrashed) as excinfo:
                handle.call(1, "let a = 1 ; print a @@die@@")
            assert excinfo.value.exitcode == 3
        finally:
            handle.kill()

    def test_hang_raises_timeout_and_restart_recovers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        metrics = MetricsRegistry()
        handle = WorkerHandle(make_spec(tmp_path), metrics=metrics).start()
        try:
            with pytest.raises(TranslationTimeout):
                handle.call(1, "@@hang@@", timeout=0.4)
            handle.restart()
            answer = handle.call(2, "let a = 2 ; print a")
            assert answer[1] is True
            assert metrics.snapshot()["serve.worker_restarts"] == 1
        finally:
            handle.kill()


# ---------------------------------------------------------------------------
# the daemon
# ---------------------------------------------------------------------------


def serve_config(tmp_path, **overrides):
    defaults = dict(
        workers=2,
        queue_depth=8,
        request_timeout=30.0,
        drain_timeout=10.0,
        journal_dir=str(tmp_path / "journal"),
        breaker_reset_seconds=0.5,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run_server(tmp_path, body, metrics=None, **config_overrides):
    """Start a calc server, run ``await body(server)``, always drain."""

    async def main():
        server = TranslationServer(
            {"calc": make_spec(tmp_path)},
            serve_config(tmp_path, **config_overrides),
            metrics=metrics,
        )
        await server.start()
        try:
            return await body(server)
        finally:
            server.request_shutdown()
            await server.drain()

    return asyncio.run(main())


class TestTranslationServer:
    def test_submit_matches_batch_output(self, tmp_path):
        from repro.batch import build_batch_translator
        from repro.evalgen.runtime import render_root_attrs

        texts = [generate_calc_program(4 + i % 3, seed=i) for i in range(6)]
        translator = build_batch_translator(make_spec(tmp_path))
        expected = [
            "\n".join(render_root_attrs(translator.translate(t).root_attrs))
            + "\n"
            for t in texts
        ]

        async def body(server):
            results = await asyncio.gather(
                *[server.submit("calc", t) for t in texts]
            )
            return [r.output for r in results]

        served = run_server(tmp_path, body)
        assert served == expected  # byte-identical to the batch renderer

    def test_per_input_error_is_not_infrastructure(self, tmp_path):
        metrics = MetricsRegistry()

        async def body(server):
            result = await server.submit("calc", "let ( = broken")
            assert not result.ok
            assert result.error_type == "ParseError"
            assert server.services["calc"].breaker.state == "closed"

        run_server(tmp_path, body, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["serve.input_errors"] == 1
        assert "serve.failed" not in snap

    def test_unknown_grammar_raises(self, tmp_path):
        async def body(server):
            with pytest.raises(ServeError, match="unknown grammar"):
                await server.submit("nope", "x")

        run_server(tmp_path, body)

    def test_queue_full_rejects_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "5")
        metrics = MetricsRegistry()

        async def body(server):
            # one worker, depth-1 queue: a hung request + a queued one
            # saturate the grammar; the next submit must bounce.
            hung = asyncio.ensure_future(
                server.submit("calc", "@@hang@@", timeout=1.5)
            )
            await asyncio.sleep(0.3)  # dispatcher picks the hang up
            queued = asyncio.ensure_future(
                server.submit("calc", "let a = 1 ; print a")
            )
            await asyncio.sleep(0.05)
            with pytest.raises(ServerOverloaded) as excinfo:
                await server.submit("calc", "let a = 2 ; print a")
            assert excinfo.value.retry_after > 0
            with pytest.raises(TranslationTimeout):
                await hung
            result = await queued  # served once the worker restarts
            assert result.ok

        run_server(
            tmp_path, body, metrics=metrics, workers=1, queue_depth=1
        )
        snap = metrics.snapshot()
        assert snap["serve.rejected"] == 1
        assert snap["serve.timeouts"] >= 1
        assert snap["serve.worker_restarts"] >= 1

    def test_draining_rejects_new_requests(self, tmp_path):
        async def body(server):
            server.request_shutdown()
            with pytest.raises(ServerOverloaded, match="draining"):
                await server.submit("calc", "let a = 1 ; print a")

        run_server(tmp_path, body)

    def test_worker_death_retries_on_fresh_worker(
        self, tmp_path, monkeypatch
    ):
        """The crashed worker's incarnation inherited the DIE marker;
        the restarted incarnation (forked after the env is cleared)
        does not — so the bounded re-dispatch succeeds and proves
        idempotent retry end to end."""
        metrics = MetricsRegistry()
        # The marker doubles as a valid calc identifier, so the text
        # both triggers the fault hook and still translates cleanly.
        os.environ[DIE_MARKER_ENV] = "diemarker"

        async def body(server):
            del os.environ[DIE_MARKER_ENV]
            result = await server.submit(
                "calc", "let diemarker = 3 ; print diemarker"
            )
            assert result.ok
            assert result.retries == 1
            return result

        try:
            run_server(
                tmp_path, body, metrics=metrics, workers=1, max_retries=1
            )
        finally:
            os.environ.pop(DIE_MARKER_ENV, None)
        snap = metrics.snapshot()
        assert snap["serve.retries"] == 1
        assert snap["serve.worker_restarts"] >= 1
        assert snap["serve.completed"] == 1

    def test_retries_are_bounded_then_fail_fast(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(DIE_MARKER_ENV, "@@die@@")
        metrics = MetricsRegistry()

        async def body(server):
            with pytest.raises(WorkerCrashed):
                await server.submit("calc", "print 1 -- @@die@@")

        run_server(
            tmp_path,
            body,
            metrics=metrics,
            workers=1,
            max_retries=1,
            breaker_threshold=10,
        )
        snap = metrics.snapshot()
        assert snap["serve.retries"] == 1  # exactly one re-dispatch
        assert snap["serve.failed"] == 1

    def test_breaker_degrades_persistently_failing_grammar(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(DIE_MARKER_ENV, "@@die@@")
        metrics = MetricsRegistry()

        async def body(server):
            with pytest.raises(WorkerCrashed):
                await server.submit("calc", "print 1 -- @@die@@")
            # threshold=1 and retries=0: the breaker is now open
            assert server.services["calc"].breaker.state == "open"
            with pytest.raises(GrammarUnavailable) as excinfo:
                await server.submit("calc", "let a = 1 ; print a")
            assert excinfo.value.retry_after > 0
            assert server.health()["grammars"]["calc"]["breaker"] == "open"

        run_server(
            tmp_path,
            body,
            metrics=metrics,
            workers=1,
            max_retries=0,
            breaker_threshold=1,
            breaker_reset_seconds=30.0,
        )
        assert metrics.snapshot()["serve.breaker.open"] == 1

    def test_drain_under_load_journals_every_request_exactly_once(
        self, tmp_path
    ):
        texts = [generate_calc_program(5, seed=i) for i in range(12)]
        metrics = MetricsRegistry()

        async def body(server):
            tasks = [
                asyncio.ensure_future(server.submit("calc", t))
                for t in texts
            ]
            await asyncio.sleep(0.05)  # some in flight, some queued
            server.request_shutdown()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            results = [o for o in outcomes if not isinstance(o, Exception)]
            assert results, "drain must finish admitted in-flight work"
            assert all(r.ok for r in results)
            return [r.request_id for r in results]

        completed_ids = run_server(tmp_path, body, metrics=metrics)
        state = replay_journal(str(tmp_path / "journal"))
        assert state.sealed
        assert state.duplicates == []
        assert state.in_flight == []  # nothing lost in the drain
        assert sorted(state.completed) == sorted(completed_ids)

    def test_drain_deadline_overrun_fails_inflight_fast(
        self, tmp_path, monkeypatch
    ):
        """A hung request cut off by the drain deadline must resolve:
        the awaiting client gets a typed error (not a forever-pending
        future) and the sealed journal carries its terminal record."""
        monkeypatch.setenv(HANG_MARKER_ENV, "@@hang@@")
        monkeypatch.setenv(HANG_SECONDS_ENV, "30")
        metrics = MetricsRegistry()

        async def body(server):
            hung = asyncio.ensure_future(server.submit("calc", "@@hang@@"))
            await asyncio.sleep(0.3)  # the dispatcher holds it in flight
            assert server.services["calc"].in_flight
            server.request_shutdown()
            clean = await server.drain(timeout=0.05)
            assert clean is False
            with pytest.raises(ServeError, match="drained"):
                await asyncio.wait_for(hung, timeout=1.0)

        run_server(tmp_path, body, metrics=metrics, workers=1)
        snap = metrics.snapshot()
        assert snap["serve.failed"] == 1
        assert snap["serve.drain_deadline_overruns"] == 1
        state = replay_journal(str(tmp_path / "journal"))
        assert state.sealed
        assert state.in_flight == []  # the straggler has a terminal record
        assert [et for et, _ in state.failed.values()] == ["DrainTimeout"]

    def test_journal_replay_matches_served_outputs(self, tmp_path):
        from repro.serve.journal import sha256_text

        texts = [generate_calc_program(4, seed=i) for i in range(4)]

        async def body(server):
            results = await asyncio.gather(
                *[server.submit("calc", t) for t in texts]
            )
            return {r.request_id: r.output for r in results}

        outputs = run_server(tmp_path, body)
        state = replay_journal(str(tmp_path / "journal"))
        assert state.completed == {
            rid: sha256_text(output) for rid, output in outputs.items()
        }


class TestServeArtifactPlane:
    """The daemon's shared-memory artifact plane: supervised restarts
    attach to the existing segment (near-instant, zero rehydration)
    and drain sweeps every segment."""

    def test_restart_attaches_to_plane_without_rebuild(self, tmp_path):
        """Kill a worker mid-request with the build cache *deleted*:
        the supervisor's replacement incarnation can only come up by
        attaching to the plane.  The cache directory staying absent is
        the proof — any rebuild/rehydration path would recreate it via
        ``BuildCache.store``."""
        import shutil

        from repro.buildcache.shm import plane_segments

        metrics = MetricsRegistry()
        before = set(plane_segments())
        os.environ[DIE_MARKER_ENV] = "diemarker"
        cache_dir = str(tmp_path / "cache")

        async def body(server):
            del os.environ[DIE_MARKER_ENV]
            service = server.services["calc"]
            assert service.plane is not None, "daemon exported no plane"
            assert service.worker_spec.shm_plane == service.plane.name
            assert service.plane.name in set(plane_segments()) - before
            # Ambush every rebuild path: without the plane, a restarted
            # worker would have to rebuild through the cache dir.
            shutil.rmtree(cache_dir)
            result = await server.submit(
                "calc", "let diemarker = 3 ; print diemarker"
            )
            assert result.ok
            assert result.retries == 1  # the crash really happened
            assert not os.path.exists(cache_dir), (
                "restarted worker rehydrated through the build cache "
                "instead of attaching to the artifact plane"
            )

        try:
            run_server(
                tmp_path, body, metrics=metrics, workers=1, max_retries=1
            )
        finally:
            os.environ.pop(DIE_MARKER_ENV, None)
        snap = metrics.snapshot()
        assert snap["serve.worker_restarts"] >= 1
        assert snap["batch.shm.export"] == 1
        assert set(plane_segments()) == before, (
            "drain left a plane segment linked"
        )

    def test_no_shm_config_still_serves(self, tmp_path):
        """``use_shm=False`` (the ``--no-shm`` escape hatch) serves
        identically with cache-rehydrating workers and no segments."""
        from repro.buildcache.shm import plane_segments

        before = set(plane_segments())

        async def body(server):
            assert server.services["calc"].plane is None
            assert set(plane_segments()) == before
            result = await server.submit("calc", "let a = 6 ; print a * 7")
            assert result.ok
            return result.output

        output = run_server(tmp_path, body, use_shm=False)
        assert "OUT = [42]" in output


class TestHttpFrontend:
    @staticmethod
    async def http(host, port, method, target, body=b""):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, payload = raw.partition(b"\r\n\r\n")
        return int(head.split(b" ", 2)[1]), head, payload

    def test_http_round_trip(self, tmp_path):
        from repro.serve.http import HttpFrontend

        async def body(server):
            frontend = HttpFrontend(server, "127.0.0.1", 0)
            host, port = await frontend.start()
            try:
                status, head, payload = await self.http(
                    host, port, "POST", "/translate",
                    b"let a = 6 ; print a * 7",
                )
                assert status == 200
                assert payload == b"OUT = [42]\n"
                assert b"X-Request-Id:" in head

                status, _, payload = await self.http(
                    host, port, "POST", "/translate", b"let ( ="
                )
                assert status == 422
                assert json.loads(payload)["error"] == "ParseError"

                status, _, payload = await self.http(
                    host, port, "GET", "/healthz"
                )
                assert status == 200
                assert json.loads(payload)["status"] == "ok"

                status, _, payload = await self.http(
                    host, port, "GET", "/stats"
                )
                assert status == 200
                assert json.loads(payload)["serve.admitted"] == 2

                status, _, _ = await self.http(host, port, "GET", "/nope")
                assert status == 404
                status, _, _ = await self.http(
                    host, port, "POST", "/translate?grammar=unknown", b"x"
                )
                assert status == 500
                status, _, _ = await self.http(
                    host, port, "POST", "/translate?timeout=banana", b"x"
                )
                assert status == 400
            finally:
                await frontend.stop()

        run_server(tmp_path, body, metrics=MetricsRegistry())

    def test_oversized_body_gets_413_and_connection_close(self, tmp_path):
        """The 413 path never reads the oversized body, so the server
        must close the connection instead of honouring keep-alive —
        reusing it would parse the unread body bytes as a request head."""
        from repro.serve.http import MAX_BODY_BYTES, HttpFrontend

        async def body(server):
            frontend = HttpFrontend(server, "127.0.0.1", 0)
            host, port = await frontend.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    (
                        "POST /translate HTTP/1.1\r\nHost: t\r\n"
                        f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
                        "Connection: keep-alive\r\n\r\n"
                    ).encode()
                    + b"only the start of a huge body"
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                head, _, payload = raw.partition(b"\r\n\r\n")
                assert int(head.split(b" ", 2)[1]) == 413
                assert b"Connection: close" in head
                assert json.loads(payload)["error"] == "PayloadTooLarge"
            finally:
                await frontend.stop()

        run_server(tmp_path, body)

    def test_healthz_degrades_while_draining(self, tmp_path):
        from repro.serve.http import HttpFrontend

        async def body(server):
            frontend = HttpFrontend(server, "127.0.0.1", 0)
            host, port = await frontend.start()
            try:
                server.request_shutdown()
                status, _, payload = await self.http(
                    host, port, "GET", "/healthz"
                )
                assert status == 503
                assert json.loads(payload)["status"] == "draining"
            finally:
                await frontend.stop()

        run_server(tmp_path, body)

# ---------------------------------------------------------------------------
# disk governance
# ---------------------------------------------------------------------------


class TestServeGovernance:
    def test_low_disk_degrades_then_recovers_with_gap(
        self, tmp_path, monkeypatch
    ):
        """The full watermark story: trip -> 503 + Retry-After with the
        journal suspended, /healthz still 200 (degraded, not down),
        recover -> admission resumes and the sealed journal carries an
        explicit gap marker."""
        from repro.governance import FAKE_DISK_FREE_ENV
        from repro.serve.http import HttpFrontend

        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "10000")

        async def body(server):
            frontend = HttpFrontend(server, "127.0.0.1", 0)
            host, port = await frontend.start()
            try:
                ok = await server.submit("calc", "let a = 2 ; print a")
                assert ok.ok

                os.environ[FAKE_DISK_FREE_ENV] = "100"  # below low
                await asyncio.sleep(0.4)
                assert server.degraded
                assert server.journal.suspended
                with pytest.raises(GrammarUnavailable) as excinfo:
                    await server.submit("calc", "let a = 3 ; print a")
                assert excinfo.value.retry_after > 0
                status, head, payload = await TestHttpFrontend.http(
                    host, port, "POST", "/translate", b"let a = 1 ; print a"
                )
                assert status == 503
                assert b"Retry-After:" in head
                status, _, payload = await TestHttpFrontend.http(
                    host, port, "GET", "/healthz"
                )
                health = json.loads(payload)
                assert status == 200  # degraded, not down
                assert health["status"] == "degraded"
                assert health["grammars"]["calc"]["state"] == "degraded"
                assert "low-disk" in health["grammars"]["calc"]["reasons"]
                assert health["journal"]["suspended"] is True
                assert health["disk"]["trips"] == 1

                os.environ[FAKE_DISK_FREE_ENV] = "10000"  # above high
                await asyncio.sleep(0.4)
                assert not server.degraded
                assert not server.journal.suspended
                ok = await server.submit("calc", "let a = 5 ; print a")
                assert ok.ok
            finally:
                await frontend.stop()

        metrics = MetricsRegistry()
        run_server(
            tmp_path, body, metrics=metrics,
            disk_low_bytes=500, disk_high_bytes=800,
            governance_interval=0.05,
        )
        snap = metrics.snapshot()
        assert snap["governance.serve_degraded"] == 1
        assert snap["governance.serve_recovered"] == 1
        report = scan_journal(journal_path(str(tmp_path / "journal")))
        assert report.ok and report.sealed
        assert report.gaps == 1  # the suspension is an explicit marker

    def test_healthz_503_only_when_all_grammars_unavailable(self, tmp_path):
        from repro.serve.http import HttpFrontend

        async def body(server):
            frontend = HttpFrontend(server, "127.0.0.1", 0)
            host, port = await frontend.start()
            try:
                breaker = server.services["calc"].breaker
                for _ in range(breaker.failure_threshold):
                    breaker.record_failure()
                assert breaker.state == "open"
                status, _, payload = await TestHttpFrontend.http(
                    host, port, "GET", "/healthz"
                )
                health = json.loads(payload)
                assert status == 503  # the ONLY grammar is unavailable
                assert health["status"] == "unavailable"
                calc = health["grammars"]["calc"]
                assert calc["state"] == "unavailable"
                assert "breaker-open" in calc["reasons"]
            finally:
                await frontend.stop()

        run_server(tmp_path, body)

    def test_startup_doctor_sweeps_debris(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        leak = journal_dir / "requests.ndjson.tmp"
        leak.write_bytes(b"half a frame")

        async def body(server):
            assert server.doctor_report is not None
            assert not leak.exists()
            result = await server.submit("calc", "let a = 2 ; print a")
            assert result.ok

        run_server(tmp_path, body)
