"""Incremental re-translation (:mod:`repro.passes.incremental`).

Covers the memo lifecycle end to end: warming, full-splice re-runs,
dirty-spine evaluation after a single-token edit, byte-identity across
backends and fusion settings, the documented invalidation rules
(corruption and checkpoint-resume always degrade to a cold miss, never
a wrong answer), read-only consultation under ``record=`` (with
``reuse`` provenance instants), and the fsck/doctor surface over the
sealed MEMO1 manifest.
"""

import os
import re

import pytest

from repro.core import Linguist
from repro.grammars import load_source, scanner_and_library
from repro.obs import MetricsRegistry
from repro.obs.provenance import ProvenanceLog
from repro.passes.incremental import (
    MEMO_LOG,
    looks_like_memo_manifest,
    salvage_memo,
    scan_memo,
)
from repro.workloads.generators import generate_calc_program
from tests.evalharness import canonical_attrs


def make_translator(grammar="calc", backend="generated", fuse=True):
    source = load_source(grammar)
    spec, library = scanner_and_library(grammar)
    linguist = Linguist(source) if fuse else Linguist(source, fuse_passes=False)
    return linguist.make_translator(spec, library=library, backend=backend)


def edit_last_statement(text: str) -> str:
    """A single-token edit at the end of a calc program: bump the first
    numeric literal of the last statement (the tree shape is unchanged,
    so only the spine from that leaf to the root goes dirty)."""
    lines = text.split(" ;\n")
    edited, n = re.subn(
        r"\d+", lambda m: str(int(m.group()) + 1), lines[-1], count=1
    )
    assert n == 1, f"last statement holds no literal to edit: {lines[-1]!r}"
    return " ;\n".join(lines[:-1] + [edited])


def counters(metrics: MetricsRegistry) -> dict:
    names = (
        "hits", "misses", "spliced_records", "spliced_blocks",
        "spine_nodes", "invalidations", "entries_loaded", "entries_written",
    )
    return {n: metrics.counter(f"incremental.{n}").value for n in names}


PROGRAM = generate_calc_program(40, seed=11)


# ---------------------------------------------------------------------------
# warming + splicing
# ---------------------------------------------------------------------------


def test_warm_rerun_splices_everything(tmp_path):
    """Second translation of the same text is one root-subtree hit."""
    memo = str(tmp_path / "memo")
    tr = make_translator()
    cold = tr.translate(PROGRAM, memo_dir=memo)
    assert os.path.exists(os.path.join(memo, MEMO_LOG))
    metrics = MetricsRegistry()
    warm = tr.translate(PROGRAM, memo_dir=memo, metrics=metrics)
    c = counters(metrics)
    assert canonical_attrs(warm.root_attrs) == canonical_attrs(cold.root_attrs)
    assert c["hits"] >= 1
    assert c["misses"] == 0
    assert c["spine_nodes"] == 0
    assert c["spliced_records"] > 0


def test_single_token_edit_reevaluates_only_the_spine(tmp_path):
    """After editing the last statement, the clean prefix is spliced and
    the dirty spine is a small fraction of the tree."""
    memo = str(tmp_path / "memo")
    tr = make_translator()
    tr.translate(PROGRAM, memo_dir=memo)
    edited = edit_last_statement(PROGRAM)

    scratch = make_translator()  # memo-free reference for byte-identity
    reference = scratch.translate(edited)

    metrics = MetricsRegistry()
    result = tr.translate(edited, memo_dir=memo, metrics=metrics)
    c = counters(metrics)
    assert canonical_attrs(result.root_attrs) == canonical_attrs(
        reference.root_attrs
    )
    assert c["hits"] >= 1, "the clean prefix subtree was not spliced"
    # Cold evaluation visits every node; the dirty spine must be a
    # small slice of that (the bench pins < 20%; tests pin < 50% to
    # stay robust across grammar tweaks).
    cold_metrics = MetricsRegistry()
    scratch.translate(edited, memo_dir=str(tmp_path / "cold"),
                      metrics=cold_metrics)
    cold_visits = counters(cold_metrics)["misses"]
    assert c["spine_nodes"] + c["misses"] < cold_visits / 2


def test_memo_carries_entries_forward_across_splices(tmp_path):
    """A fully spliced re-run re-seals the manifest with the nested
    entries carried forward — the memo's grain survives the splice."""
    memo = str(tmp_path / "memo")
    tr = make_translator()
    tr.translate(PROGRAM, memo_dir=memo)
    before = scan_memo(memo)
    assert before.ok and before.n_entries > 0
    tr.translate(PROGRAM, memo_dir=memo)
    after = scan_memo(memo)
    assert after.ok
    assert after.n_entries == before.n_entries


def test_generations_rotate_and_old_spools_are_unlinked(tmp_path):
    memo = str(tmp_path / "memo")
    tr = make_translator()
    tr.translate(PROGRAM, memo_dir=memo)
    tr.translate(PROGRAM, memo_dir=memo)
    tr.translate(PROGRAM, memo_dir=memo)
    spools = [
        name for name in os.listdir(memo)
        if re.match(r"^pass\d+\.g\d+\.spool$", name)
    ]
    # One live generation per pass, no stale debris.
    passes = {name.split(".")[0] for name in spools}
    assert len(spools) == len(passes)


# ---------------------------------------------------------------------------
# byte-identity across backends and fusion
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["interp", "generated"])
def test_backends_agree_warm_and_edited(tmp_path, backend):
    memo = str(tmp_path / "memo")
    tr = make_translator(backend=backend)
    cold = tr.translate(PROGRAM, memo_dir=memo)
    warm = tr.translate(PROGRAM, memo_dir=memo)
    assert canonical_attrs(warm.root_attrs) == canonical_attrs(cold.root_attrs)
    edited = edit_last_statement(PROGRAM)
    reference = make_translator(backend=backend).translate(edited)
    spliced = tr.translate(edited, memo_dir=memo)
    assert canonical_attrs(spliced.root_attrs) == canonical_attrs(
        reference.root_attrs
    )


def test_unfused_multi_pass_memoizes_every_pass(tmp_path):
    """With fusion off calc runs two passes; both must memoize (the
    memo is per pass, not pass-1-only)."""
    memo = str(tmp_path / "memo")
    tr = make_translator(fuse=False)
    cold = tr.translate(PROGRAM, memo_dir=memo)
    spools = [
        name for name in os.listdir(memo)
        if re.match(r"^pass\d+\.g\d+\.spool$", name)
    ]
    assert {name.split(".")[0] for name in spools} == {"pass1", "pass2"}
    metrics = MetricsRegistry()
    warm = tr.translate(PROGRAM, memo_dir=memo, metrics=metrics)
    c = counters(metrics)
    assert canonical_attrs(warm.root_attrs) == canonical_attrs(cold.root_attrs)
    assert c["hits"] >= 2, "expected a root splice in each pass"
    assert c["misses"] == 0


# ---------------------------------------------------------------------------
# invalidation rules: corruption is a silent cold miss
# ---------------------------------------------------------------------------


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "rb") as f:
        data = bytearray(f.read())
    data[offset % len(data)] ^= 0xFF
    with open(path, "wb") as f:
        f.write(data)


def test_corrupt_manifest_is_a_cold_miss(tmp_path):
    memo = str(tmp_path / "memo")
    tr = make_translator()
    cold = tr.translate(PROGRAM, memo_dir=memo)
    _flip_byte(os.path.join(memo, MEMO_LOG), 200)
    metrics = MetricsRegistry()
    again = make_translator().translate(
        PROGRAM, memo_dir=memo, metrics=metrics
    )
    c = counters(metrics)
    assert canonical_attrs(again.root_attrs) == canonical_attrs(
        cold.root_attrs
    )
    assert c["invalidations"] >= 1
    assert c["hits"] == 0
    # ... and the cold re-run re-seals a healthy memo.
    assert scan_memo(memo).ok


def test_corrupt_splice_spool_is_a_cold_miss(tmp_path):
    memo = str(tmp_path / "memo")
    tr = make_translator()
    cold = tr.translate(PROGRAM, memo_dir=memo)
    spool = next(
        os.path.join(memo, n) for n in os.listdir(memo)
        if re.match(r"^pass\d+\.g\d+\.spool$", n)
    )
    with open(spool, "r+b") as f:
        f.truncate(os.path.getsize(spool) // 2)
    metrics = MetricsRegistry()
    again = make_translator().translate(
        PROGRAM, memo_dir=memo, metrics=metrics
    )
    c = counters(metrics)
    assert canonical_attrs(again.root_attrs) == canonical_attrs(
        cold.root_attrs
    )
    assert c["invalidations"] >= 1 and c["hits"] == 0


def test_foreign_grammar_memo_is_invalidated(tmp_path):
    """A memo written by another grammar fails the identity check."""
    memo = str(tmp_path / "memo")
    make_translator("binary").translate("1 0 1 . 0 1", memo_dir=memo)
    metrics = MetricsRegistry()
    result = make_translator("calc").translate(
        PROGRAM, memo_dir=memo, metrics=metrics
    )
    assert counters(metrics)["invalidations"] >= 1
    assert dict(result.root_attrs)  # translated fine, just cold


def test_empty_memo_dir_translates_cold(tmp_path):
    memo = str(tmp_path / "does-not-exist-yet" / "memo")
    metrics = MetricsRegistry()
    result = make_translator().translate(PROGRAM, memo_dir=memo,
                                         metrics=metrics)
    assert dict(result.root_attrs)
    c = counters(metrics)
    assert c["hits"] == 0 and c["entries_written"] > 0


# ---------------------------------------------------------------------------
# no memo, no tax
# ---------------------------------------------------------------------------


def test_memoless_translation_builds_no_memo_machinery(tmp_path):
    tr = make_translator()
    plain = tr.translate(PROGRAM)
    assert tr._memo_eval is None
    assert tr._memo_recording_eval is None
    assert tr._memo_stores == {}
    memoed = make_translator().translate(
        PROGRAM, memo_dir=str(tmp_path / "memo")
    )
    assert canonical_attrs(plain.root_attrs) == canonical_attrs(
        memoed.root_attrs
    )


# ---------------------------------------------------------------------------
# read-only consultation: record= and checkpoint runs
# ---------------------------------------------------------------------------


def test_record_run_consults_memo_and_records_reuse_instants(tmp_path):
    """Under ``record=`` the memo is consulted (splices still happen,
    logged as ``reuse`` instants) but never refreshed — the sealed
    manifest and generation are untouched."""
    memo = str(tmp_path / "memo")
    rec = str(tmp_path / "rec")
    tr = make_translator()
    cold = tr.translate(PROGRAM, memo_dir=memo)
    manifest = os.path.join(memo, MEMO_LOG)
    with open(manifest, "rb") as f:
        sealed_before = f.read()

    metrics = MetricsRegistry()
    recorded = tr.translate(
        PROGRAM, record=rec, memo_dir=memo, metrics=metrics
    )
    assert canonical_attrs(recorded.root_attrs) == canonical_attrs(
        cold.root_attrs
    )
    assert counters(metrics)["hits"] >= 1
    with open(manifest, "rb") as f:
        assert f.read() == sealed_before, "read-only memo was rewritten"
    log = ProvenanceLog.open(rec)
    reuse = [e for e in log.events if e.get("e") == "reuse"]
    assert reuse, "no reuse instants in the provenance log"
    assert all(e["r"] >= 1 and e["l"] >= 1 for e in reuse)


def test_resumed_run_evaluates_cold(tmp_path):
    """Checkpoint-resumed runs never consult the memo (documented
    invalidation rule: the resumed spools are authoritative)."""
    memo = str(tmp_path / "memo")
    ckpt = str(tmp_path / "ckpt")
    tr = make_translator()
    cold = tr.translate(PROGRAM, memo_dir=memo)
    tr.translate(PROGRAM, checkpoint_dir=ckpt)
    metrics = MetricsRegistry()
    resumed = tr.translate(
        PROGRAM, checkpoint_dir=ckpt, resume=True,
        memo_dir=memo, metrics=metrics,
    )
    assert canonical_attrs(resumed.root_attrs) == canonical_attrs(
        cold.root_attrs
    )
    c = counters(metrics)
    assert c["entries_written"] == 0


# ---------------------------------------------------------------------------
# fsck / doctor surface
# ---------------------------------------------------------------------------


def test_sniff_scan_salvage_roundtrip(tmp_path):
    memo = str(tmp_path / "memo")
    make_translator().translate(PROGRAM, memo_dir=memo)
    manifest = os.path.join(memo, MEMO_LOG)
    assert looks_like_memo_manifest(manifest)
    spool = next(
        os.path.join(memo, n) for n in os.listdir(memo)
        if n.endswith(".spool")
    )
    assert not looks_like_memo_manifest(spool)

    clean = scan_memo(manifest)
    assert clean.ok and clean.sealed and clean.n_entries == clean.n_valid
    assert clean.spools, "clean scan should name the splice spools"

    _flip_byte(manifest, os.path.getsize(manifest) // 2)
    damaged = scan_memo(manifest)
    assert not damaged.ok
    assert damaged.error.reason in ("checksum", "framing", "seal")
    assert damaged.error.record_index is not None
    assert 0 < damaged.n_valid < clean.n_valid

    out = os.path.join(memo, "salvaged.ndjson")
    report = salvage_memo(manifest, out)
    assert report.n_valid == damaged.n_valid
    resealed = scan_memo(out)
    assert resealed.ok and resealed.n_entries == damaged.n_valid


def test_doctor_classifies_and_repairs_memo_dirs(tmp_path):
    from repro.doctor import ArtifactState, run_doctor

    memo = str(tmp_path / "memo")
    tr = make_translator()
    tr.translate(PROGRAM, memo_dir=memo)
    report = run_doctor([memo])
    assert report.clean
    states = {os.path.basename(a.path): a.state for a in report.artifacts}
    assert states[MEMO_LOG] == ArtifactState.SEALED

    # A stale generation spool beside the sealed manifest is an orphan.
    live = next(n for n in os.listdir(memo) if n.endswith(".spool"))
    stale = re.sub(r"\.g(\d+)\.", lambda m: f".g{int(m.group(1)) + 7}.",
                   live)
    with open(os.path.join(memo, live), "rb") as src:
        with open(os.path.join(memo, stale), "wb") as dst:
            dst.write(src.read())
    report = run_doctor([memo], repair=True)
    assert report.lossy
    assert not os.path.exists(os.path.join(memo, stale))
    assert os.path.exists(os.path.join(memo, live))

    # Manifest damage: doctor salvages in place; the memo stays usable.
    _flip_byte(os.path.join(memo, MEMO_LOG), 300)
    report = run_doctor([memo], repair=True)
    assert report.lossy
    assert scan_memo(memo).ok
    again = tr.translate(PROGRAM, memo_dir=str(memo))
    assert dict(again.root_attrs)
