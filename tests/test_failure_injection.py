"""Failure-injection tests: corrupted files, malformed streams, misuse."""

import os
import struct

import pytest

from repro.apt.storage import DiskSpool, MemorySpool
from repro.errors import EvaluationError


class TestCorruptSpools:
    def make_spool(self, tmp_path, n=5):
        spool = DiskSpool(str(tmp_path / "t.spool"))
        for i in range(n):
            spool.append(("S", None, {"X": i}, False))
        spool.finalize()
        return spool

    def test_truncated_tail_detected_forward(self, tmp_path):
        spool = self.make_spool(tmp_path)
        size = os.path.getsize(spool.path)
        with open(spool.path, "r+b") as f:
            f.truncate(size - 3)
        with pytest.raises(EvaluationError) as exc:
            list(spool.read_forward())
        assert "truncated" in str(exc.value) or "corrupt" in str(exc.value)

    def test_corrupt_length_detected_backward(self, tmp_path):
        spool = self.make_spool(tmp_path)
        with open(spool.path, "r+b") as f:
            f.seek(-4, os.SEEK_END)
            f.write(struct.pack("<I", 10_000_000))  # absurd trailing length
        with pytest.raises(EvaluationError):
            list(spool.read_backward())

    def test_evaluator_detects_truncated_apt(self):
        """An APT file missing records makes the evaluator fail loudly,
        not return partial results."""
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "10.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        # Drop the last record (the root!) from a copy of the spool.
        broken = MemorySpool(channel="broken")
        records = list(spool.read_forward())
        for record in records[:-1]:
            broken.append(record)
        broken.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError):
            driver.run(broken, strategy="bottom-up")

    def test_evaluator_detects_surplus_records(self):
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "1.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        padded = MemorySpool(channel="padded")
        # The first pass reads BACKWARD, so prepend garbage: it is then
        # left unconsumed at the end of the pass.
        padded.append(("ZERO", None, {}, False))
        for record in spool.read_forward():
            padded.append(record)
        padded.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError) as exc:
            driver.run(padded, strategy="bottom-up")
        assert "did not consume" in str(exc.value)

    def test_record_symbol_swap_detected(self):
        """Swapping two node records breaks the phrase-structure sync."""
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "10.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        records = list(spool.read_forward())
        records[0], records[1] = records[1], records[0]
        swapped = MemorySpool(channel="swapped")
        for record in records:
            swapped.append(record)
        swapped.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError):
            driver.run(swapped, strategy="bottom-up")


class TestShippedScanners:
    """Every shipped scanner spec tokenizes a representative input."""

    def test_binary_scanner(self):
        from repro.grammars.scanners import binary_scanner_spec

        sc = binary_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("10.01")][:-1]
        assert kinds == ["ONE", "ZERO", "RADIX", "ZERO", "ONE"]

    def test_calc_scanner(self):
        from repro.grammars.scanners import calc_scanner_spec

        sc = calc_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("let x = 3 ; print x")][:-1]
        assert kinds == ["LET", "ID", "ASSIGN", "NUM", "SEMI", "PRINT", "ID"]

    def test_pascal_scanner_assign_vs_colon(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("x := 1; y : integer")][:-1]
        assert kinds == ["ID", "ASSIGN", "NUM", "SEMI", "ID", "COLON", "INTEGER"]

    def test_pascal_scanner_comments(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("a { a comment } b")][:-1]
        assert kinds == ["ID", "ID"]

    def test_pascal_loop_keywords(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("repeat until for to")][:-1]
        assert kinds == ["REPEAT", "UNTIL", "FOR", "TO"]

    def test_asm_scanner_label_vs_ident(self):
        from repro.grammars.scanners import asm_scanner_spec

        sc = asm_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("loop: jmp loop ; away")][:-1]
        assert kinds == ["LABEL", "JMP", "ID"]
