"""Failure-injection tests: corrupted files, malformed streams, misuse,
the durable spool format v2, deterministic fault plans, fsck/salvage,
and checkpoint/resume."""

import os
import pickle
import struct
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.apt.storage import (
    _FOOTER,
    _HEADER,
    FORMAT_V1,
    FORMAT_V2,
    FORMAT_V3,
    DiskSpool,
    MemorySpool,
    salvage_spool,
    scan_spool,
)
from repro.errors import (
    EvaluationError,
    ResumeError,
    Severity,
    SpoolCorruptionError,
)
from repro.testing.faults import (
    FaultInjected,
    FaultMode,
    FaultPlan,
    FaultyFile,
    FaultySpool,
    bit_flip,
    truncate_file,
)


def make_disk_spool(path, n=5, version=FORMAT_V2):
    spool = DiskSpool(str(path), format_version=version)
    for i in range(n):
        spool.append(("S", None, {"X": i}, False))
    spool.finalize()
    return spool


class TestCorruptSpools:
    def make_spool(self, tmp_path, n=5):
        return make_disk_spool(tmp_path / "t.spool", n)

    def test_truncated_tail_detected_forward(self, tmp_path):
        spool = self.make_spool(tmp_path)
        size = os.path.getsize(spool.path)
        with open(spool.path, "r+b") as f:
            f.truncate(size - 3)
        with pytest.raises(EvaluationError) as exc:
            list(spool.read_forward())
        assert "truncated" in str(exc.value) or "corrupt" in str(exc.value)

    def test_corrupt_length_detected_backward(self, tmp_path):
        spool = self.make_spool(tmp_path)
        with open(spool.path, "r+b") as f:
            f.seek(-4, os.SEEK_END)
            f.write(struct.pack("<I", 10_000_000))  # stomp the footer crc
        with pytest.raises(EvaluationError):
            list(spool.read_backward())

    def test_evaluator_detects_truncated_apt(self):
        """An APT file missing records makes the evaluator fail loudly,
        not return partial results."""
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "10.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        # Drop the last record (the root!) from a copy of the spool.
        broken = MemorySpool(channel="broken")
        records = list(spool.read_forward())
        for record in records[:-1]:
            broken.append(record)
        broken.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError):
            driver.run(broken, strategy="bottom-up")

    def test_evaluator_detects_surplus_records(self):
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "1.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        padded = MemorySpool(channel="padded")
        # The first pass reads BACKWARD, so prepend garbage: it is then
        # left unconsumed at the end of the pass.
        padded.append(("ZERO", None, {}, False))
        for record in spool.read_forward():
            padded.append(record)
        padded.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError) as exc:
            driver.run(padded, strategy="bottom-up")
        assert "did not consume" in str(exc.value)

    def test_record_symbol_swap_detected(self):
        """Swapping two node records breaks the phrase-structure sync."""
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = Pipeline(knuth_binary())
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        toks = tokens_of([(mapping[c], c) for c in "10.1"])
        spool, _ = pipe.build_apt(toks, build_tree=False)
        records = list(spool.read_forward())
        records[0], records[1] = records[1], records[0]
        swapped = MemorySpool(channel="swapped")
        for record in records:
            swapped.append(record)
        swapped.finalize()
        driver = pipe.driver()
        with pytest.raises(EvaluationError):
            driver.run(swapped, strategy="bottom-up")


# ---------------------------------------------------------------------------
# Spool format v2: framing, sealing, and the corruption matrix
# ---------------------------------------------------------------------------


class TestSpoolFormatV2:
    def test_header_magic_and_footer_seal(self, tmp_path):
        spool = make_disk_spool(tmp_path / "v2.spool", 3)
        with open(spool.path, "rb") as f:
            magic, version, flags = _HEADER.unpack(f.read(_HEADER.size))
        assert magic == b"APTSPL2\n"
        assert version == 2
        report = scan_spool(spool.path)
        assert report.ok and report.footer_ok
        assert report.version == FORMAT_V2
        assert report.n_valid == report.sealed_records == 3

    def test_atomic_finalize_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "a.spool"
        spool = DiskSpool(str(path))
        spool.append(1)
        # Before finalize only the temp image exists (plus the empty
        # placeholder for explicitly-pathed spools is not created).
        assert os.path.exists(str(path) + ".tmp")
        assert not os.path.exists(str(path)) or os.path.getsize(str(path)) == 0
        spool.finalize()
        assert not os.path.exists(str(path) + ".tmp")
        assert os.path.exists(str(path))
        assert list(spool.read_forward()) == [1]

    def test_unfinalized_crash_leaves_no_sealed_file(self, tmp_path):
        path = tmp_path / "crash.spool"
        spool = DiskSpool(str(path))
        spool.append(1)
        spool.append(2)
        # Simulated crash: no finalize.  The durable name never appears
        # (or is empty), so a reader can't mistake it for a sealed file.
        if os.path.exists(str(path)):
            assert os.path.getsize(str(path)) == 0
        spool.close()
        assert not os.path.exists(str(path) + ".tmp")

    def test_file_bytes_matches_disk(self, tmp_path):
        spool = make_disk_spool(tmp_path / "fb.spool", 4)
        assert spool.file_bytes() == os.path.getsize(spool.path)

    def test_open_attaches_and_verifies(self, tmp_path):
        spool = make_disk_spool(tmp_path / "o.spool", 6)
        reopened = DiskSpool.open(spool.path)
        assert reopened.n_records == 6
        assert reopened.data_bytes == spool.data_bytes
        assert list(reopened.read_forward()) == list(spool.read_forward())

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(SpoolCorruptionError):
            DiskSpool.open(str(tmp_path / "nope.spool"))

    # -- the corruption matrix, both read directions -----------------------

    def _both_directions_raise(self, spool):
        """Both readers must raise a located SpoolCorruptionError."""
        errors = []
        for reader in (spool.read_forward, spool.read_backward):
            with pytest.raises(SpoolCorruptionError) as exc:
                list(reader())
            errors.append(exc.value)
            assert exc.value.byte_offset is not None
        return errors

    def test_matrix_truncation(self, tmp_path):
        spool = make_disk_spool(tmp_path / "m1.spool", 5)
        truncate_file(spool.path, 7)
        fwd, bwd = self._both_directions_raise(spool)
        assert fwd.reason in ("footer", "truncated")
        assert bwd.reason in ("footer", "truncated")

    def test_matrix_torn_write(self, tmp_path):
        """A torn final record: footer seal never hit the disk."""
        spool = make_disk_spool(tmp_path / "m2.spool", 5)
        size = os.path.getsize(spool.path)
        truncate_file(spool.path, _FOOTER.size + 9)  # footer + record tail
        assert os.path.getsize(spool.path) == size - _FOOTER.size - 9
        fwd, bwd = self._both_directions_raise(spool)
        assert fwd.reason in ("footer", "truncated")

    def test_matrix_bit_flip_in_payload(self, tmp_path):
        spool = make_disk_spool(tmp_path / "m3.spool", 5)
        # Flip a bit inside the 3rd record's payload.
        offset = _HEADER.size + 2 * (16 + 40)  # approximate; land in data
        bit_flip(spool.path, offset + 20, 3)
        fwd, bwd = self._both_directions_raise(spool)
        assert fwd.record_index is not None
        assert bwd.record_index is not None
        # Forward and backward must localize the SAME record.
        assert fwd.record_index == bwd.record_index

    def test_matrix_header_trailer_mismatch(self, tmp_path):
        spool = make_disk_spool(tmp_path / "m4.spool", 3)
        # Stomp the leading length word of record 0 (keep crc intact).
        with open(spool.path, "r+b") as f:
            f.seek(_HEADER.size)
            f.write(struct.pack("<I", 5))
        fwd, bwd = self._both_directions_raise(spool)
        assert fwd.record_index == 0
        assert fwd.reason in ("framing", "checksum")

    def test_matrix_bad_footer(self, tmp_path):
        spool = make_disk_spool(tmp_path / "m5.spool", 3)
        with open(spool.path, "r+b") as f:
            f.seek(-_FOOTER.size, os.SEEK_END)
            f.write(b"XXXXXXXX")  # destroy the footer magic
        fwd, bwd = self._both_directions_raise(spool)
        assert fwd.reason == "footer"
        assert bwd.reason == "footer"

    def test_corruption_error_names_record_and_offset(self, tmp_path):
        spool = make_disk_spool(tmp_path / "m6.spool", 5)
        report = scan_spool(spool.path)
        assert report.ok
        # Flip a payload bit of the last record.
        bit_flip(spool.path, report.valid_end_offset - 12, 1)
        with pytest.raises(SpoolCorruptionError) as exc:
            list(spool.read_forward())
        err = exc.value
        assert err.record_index == 4
        assert isinstance(err.byte_offset, int)
        assert "record 4" in err.locus()

    def test_corruption_metered_and_traced(self, tmp_path):
        from repro.obs import MetricsRegistry, Tracer

        metrics = MetricsRegistry()
        tracer = Tracer()
        spool = DiskSpool(str(tmp_path / "m7.spool"), tracer=tracer,
                          metrics=metrics)
        for i in range(4):
            spool.append(i)
        spool.finalize()
        bit_flip(spool.path, _HEADER.size + 10, 2)
        with pytest.raises(SpoolCorruptionError):
            list(spool.read_forward())
        snap = metrics.snapshot()
        assert snap["robust.spool_corruption_detected"] == 1
        assert tracer.instants("spool.corruption")


# ---------------------------------------------------------------------------
# v1 back-compat
# ---------------------------------------------------------------------------


class TestV1BackCompat:
    def test_v1_round_trip_both_directions(self, tmp_path):
        spool = make_disk_spool(tmp_path / "v1.spool", 6, version=FORMAT_V1)
        records = [("S", None, {"X": i}, False) for i in range(6)]
        assert list(spool.read_forward()) == records
        assert list(spool.read_backward()) == records[::-1]
        report = scan_spool(spool.path)
        assert report.ok and report.version == FORMAT_V1
        assert report.n_valid == 6

    def test_v1_backward_detects_leading_length_mismatch(self, tmp_path):
        """Satellite: a mismatched *leading* length word must be caught
        by the backward reader, not just the forward one."""
        spool = make_disk_spool(tmp_path / "v1b.spool", 3, version=FORMAT_V1)
        with open(spool.path, "r+b") as f:
            f.seek(0)  # leading length of record 0
            f.write(struct.pack("<I", 2))
        with pytest.raises(SpoolCorruptionError) as exc:
            list(spool.read_backward())
        assert exc.value.reason == "framing"
        with pytest.raises(SpoolCorruptionError):
            list(spool.read_forward())

    def test_v1_backward_absurd_trailing_length(self, tmp_path):
        spool = make_disk_spool(tmp_path / "v1c.spool", 3, version=FORMAT_V1)
        with open(spool.path, "r+b") as f:
            f.seek(-4, os.SEEK_END)
            f.write(struct.pack("<I", 10_000_000))
        with pytest.raises(EvaluationError):
            list(spool.read_backward())

    def test_v1_salvage_to_v2(self, tmp_path):
        spool = make_disk_spool(tmp_path / "v1d.spool", 5, version=FORMAT_V1)
        truncate_file(spool.path, 6)
        dst = str(tmp_path / "rescued.spool")
        report = salvage_spool(spool.path, dst)
        assert not report.ok
        assert report.n_valid == 4
        rescued = DiskSpool.open(dst)
        assert rescued.format_version == FORMAT_V2
        assert list(rescued.read_forward()) == [
            ("S", None, {"X": i}, False) for i in range(4)
        ]


# ---------------------------------------------------------------------------
# Deterministic fault plans
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_fail_after_n_records(self, tmp_path):
        inner = DiskSpool(str(tmp_path / "f1.spool"))
        faulty = FaultySpool(inner, FaultPlan(mode=FaultMode.FAIL_AFTER,
                                              after_records=3))
        for i in range(3):
            faulty.append(i)
        with pytest.raises(FaultInjected):
            faulty.append(3)
        faulty.close()

    def test_torn_write_leaves_detectable_file(self, tmp_path):
        inner = DiskSpool(str(tmp_path / "f2.spool"))
        faulty = FaultySpool(
            inner,
            FaultPlan(mode=FaultMode.TORN_WRITE, after_records=2,
                      torn_keep_bytes=5),
        )
        faulty.append(("R", 0))
        faulty.append(("R", 1))
        with pytest.raises(FaultInjected):
            faulty.append(("R", 2))
        # The torn image is on the temp file; it was never sealed, so a
        # scan of the durable name reports damage, never silent data.
        report = scan_spool(inner._tmp_path or inner.path)
        assert not report.ok
        faulty.close()

    def test_eio_on_finalize(self, tmp_path):
        inner = DiskSpool(str(tmp_path / "f3.spool"))
        faulty = FaultySpool(inner, FaultPlan(mode=FaultMode.EIO_ON_CLOSE))
        faulty.append(1)
        with pytest.raises(FaultInjected):
            faulty.finalize()
        faulty.close()

    def test_short_read_surfaces(self, tmp_path):
        inner = DiskSpool(str(tmp_path / "f4.spool"))
        faulty = FaultySpool(inner, FaultPlan(mode=FaultMode.SHORT_READ,
                                              short_read_at=1))
        for i in range(4):
            faulty.append(i)
        faulty.finalize()
        with pytest.raises(FaultInjected):
            list(faulty.read_forward())

    def test_bit_flip_mode_detected(self, tmp_path):
        inner = DiskSpool(str(tmp_path / "f5.spool"))
        plan = FaultPlan(seed=7, mode=FaultMode.BIT_FLIP, flip_offset=30,
                         flip_bit=4)
        faulty = FaultySpool(inner, plan)
        for i in range(5):
            faulty.append(("rec", i))
        faulty.finalize()
        assert faulty.corrupt_finalized()
        with pytest.raises(SpoolCorruptionError):
            list(inner.read_forward())

    def test_faulty_file_short_read(self, tmp_path):
        path = tmp_path / "ff.bin"
        path.write_bytes(b"0123456789abcdef")
        f = FaultyFile(open(path, "rb"),
                       FaultPlan(mode=FaultMode.SHORT_READ, short_read_at=0))
        first = f.read(8)
        assert len(first) == 4  # short!
        rest = f.read()
        assert first + rest == b"0123456789abcdef"
        f.close()

    def test_faulty_file_torn_write(self, tmp_path):
        path = tmp_path / "fw.bin"
        f = FaultyFile(open(path, "wb"),
                       FaultPlan(mode=FaultMode.TORN_WRITE, after_records=1,
                                 torn_keep_bytes=2))
        f.write(b"AAAA")
        with pytest.raises(FaultInjected):
            f.write(b"BBBB")
        f._inner.close()
        assert path.read_bytes() == b"AAAABB"

    def test_plan_is_deterministic(self):
        a, b = FaultPlan.random(1234), FaultPlan.random(1234)
        assert (a.mode, a.after_records, a.truncate_drop) == (
            b.mode, b.after_records, b.truncate_drop
        )


# ---------------------------------------------------------------------------
# Property-based: every random corruption is detected or salvageable
# ---------------------------------------------------------------------------


class TestCorruptionProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 12))
    def test_clean_round_trip(self, seed, n):
        import random as _random

        rng = _random.Random(seed)
        records = [("S", rng.randrange(99), {"X": rng.random()}, False)
                   for _ in range(n)]
        with tempfile.TemporaryDirectory() as d:
            spool = DiskSpool(os.path.join(d, "p.spool"))
            for r in records:
                spool.append(r)
            spool.finalize()
            assert list(spool.read_forward()) == records
            assert list(spool.read_backward()) == records[::-1]
            assert scan_spool(spool.path).ok

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 10))
    def test_at_rest_corruption_detected_or_salvageable(self, seed, n):
        """For random record sequences and random at-rest fault plans,
        every corruption is either detected (typed error naming a byte
        offset, in BOTH read directions) or the file still round-trips
        exactly; in the detected case the salvage path recovers a
        checksum-valid prefix of the original records."""
        import random as _random

        rng = _random.Random(seed)
        records = [
            ("N", rng.randrange(50), {"A": rng.random(),
                                      "B": "x" * rng.randrange(20)}, False)
            for _ in range(n)
        ]
        plan = FaultPlan.random(seed, n_records=n)
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "p.spool")
            spool = DiskSpool(path)
            for r in records:
                spool.append(r)
            spool.finalize()
            if not plan.corrupt_file(path):
                return  # in-flight-only mode; at-rest file is clean
            errors = {}
            results = {}
            for name, reader in (("fwd", spool.read_forward),
                                 ("bwd", spool.read_backward)):
                try:
                    results[name] = list(reader())
                    errors[name] = None
                except SpoolCorruptionError as exc:
                    errors[name] = exc
            if errors["fwd"] is None and errors["bwd"] is None:
                # Harmless damage (e.g. a flipped reserved-flag bit):
                # the data must be byte-for-byte intact.
                assert results["fwd"] == records
                assert results["bwd"] == records[::-1]
                return
            # Detection must be symmetric and located.
            assert errors["fwd"] is not None and errors["bwd"] is not None
            for exc in errors.values():
                assert exc.byte_offset is not None
            # ... and the valid prefix must be salvageable.
            dst = os.path.join(d, "rescued.spool")
            report = salvage_spool(path, dst)
            rescued = DiskSpool.open(dst)
            recovered = list(rescued.read_forward())
            assert recovered == records[: len(recovered)]
            if (
                report.version == FORMAT_V3
                and len(recovered) == 0
                and report.nametable_ok is not True
            ):
                # v3 blobs spell their strings through the sealed name
                # table; when neither the footer nor the section itself
                # survives, the valid blocks are undecodable by design
                # and salvage writes an empty sealed spool instead of
                # garbage (see docs/robustness.md).
                pass
            else:
                assert len(recovered) == report.n_valid
            assert scan_spool(dst).ok

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31), st.integers(1, 10))
    def test_in_flight_faults_never_seal_a_file(self, seed, n):
        """Write-side faults (fail-after, torn write, EIO-on-close) must
        leave no file that passes verification as a sealed spool."""
        plan = FaultPlan.random(seed, n_records=n)
        if plan.mode not in (FaultMode.FAIL_AFTER, FaultMode.TORN_WRITE,
                             FaultMode.EIO_ON_CLOSE):
            return
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "p.spool")
            faulty = FaultySpool(DiskSpool(path), plan)
            try:
                for i in range(n):
                    faulty.append(("S", i))
                faulty.finalize()
            except FaultInjected:
                pass
            else:
                return  # plan fired past the end of this short run
            # Whatever is on disk must NOT look like a sealed spool.
            if os.path.exists(path) and os.path.getsize(path) > 0:
                assert not scan_spool(path).ok


# ---------------------------------------------------------------------------
# fsck / salvage
# ---------------------------------------------------------------------------


class TestFsckCli:
    def test_fsck_clean(self, tmp_path, capsys):
        from repro.cli import main

        spool = make_disk_spool(tmp_path / "ok.spool", 4)
        assert main(["fsck", spool.path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fsck_corrupt_exits_nonzero_with_location(self, tmp_path, capsys):
        from repro.cli import main

        spool = make_disk_spool(tmp_path / "bad.spool", 5)
        bit_flip(spool.path, _HEADER.size + 24, 5)
        assert main(["fsck", spool.path]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out
        assert "record" in captured.err and "byte" in captured.err
        assert str(spool.path) in captured.err  # location-bearing diagnostic

    def test_fsck_salvage_recovers_prefix(self, tmp_path, capsys):
        from repro.cli import main

        spool = make_disk_spool(tmp_path / "sick.spool", 6)
        report = scan_spool(spool.path)
        # Damage record 3's payload: records 0-2 stay recoverable.
        with open(spool.path, "r+b") as f:
            f.seek(report.valid_end_offset - 60)
        bit_flip(spool.path, _HEADER.size + 3 * 56 + 20, 1)
        out = str(tmp_path / "rescued.spool")
        rc = main(["fsck", spool.path, "--salvage", out])
        assert rc == 2  # salvaged with loss
        assert "salvaged" in capsys.readouterr().out
        rescued = DiskSpool.open(out)
        originals = [("S", None, {"X": i}, False) for i in range(6)]
        got = list(rescued.read_forward())
        assert got == originals[: len(got)]
        assert len(got) >= 1

    def test_fsck_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fsck", str(tmp_path / "ghost.spool")]) == 1


class TestFsckV3:
    """fsck/salvage over the block-framed v3 format: block-relative and
    record-relative loci, CLI behavior on a bit-flipped block, and the
    name-table-preserving salvage path."""

    def _spool(self, tmp_path, n=300, block_size=256):
        path = str(tmp_path / "v3.spool")
        spool = DiskSpool(path, block_size=block_size)
        records = [
            (f"Sym{i % 3}", i % 4, {"VAL": i, "NAME": f"n{i % 5}"}, False)
            for i in range(n)
        ]
        for r in records:
            spool.append(r)
        spool.finalize()
        assert spool._n_blocks > 2  # the scenarios below need several
        return spool, records

    def test_scan_reports_blocks_and_nametable(self, tmp_path):
        spool, records = self._spool(tmp_path)
        report = scan_spool(spool.path)
        assert report.ok
        assert report.version == FORMAT_V3
        assert report.n_valid == len(records)
        assert report.sealed_blocks == spool._n_blocks
        assert report.n_blocks_valid == spool._n_blocks
        assert report.nametable_ok is True
        rendered = report.render()
        assert "blocks" in rendered and "name table  sealed" in rendered

    def test_block_flip_carries_block_locus(self, tmp_path):
        spool, _ = self._spool(tmp_path)
        # Flip a payload bit inside the SECOND block.
        from repro.apt.storage import _BLOCK_HEAD, _HEADER

        with open(spool.path, "rb") as f:
            f.seek(_HEADER.size)
            payload_len, n0, _crc = _BLOCK_HEAD.unpack(f.read(_BLOCK_HEAD.size))
        block2 = _HEADER.size + 24 + payload_len  # BLOCK_OVERHEAD == 24
        bit_flip(spool.path, block2 + _BLOCK_HEAD.size + 5, 3)
        with pytest.raises(SpoolCorruptionError) as exc:
            list(spool.read_forward())
        err = exc.value
        assert err.reason == "checksum"
        assert err.block_index == 1
        assert err.record_index == n0  # first record of the bad block
        assert err.byte_offset == block2
        assert f"block {err.block_index}" in err.locus()
        # Backward reads detect the same damage.
        with pytest.raises(SpoolCorruptionError):
            list(spool.read_backward())
        report = scan_spool(spool.path)
        assert not report.ok
        assert report.n_valid == n0
        assert report.n_blocks_valid == 1
        assert report.error.block_index == 1

    def test_record_relative_offset_inside_block(self, tmp_path):
        # _split_block runs under a *matching* checksum, so its framing
        # errors (crafted or logic bugs) must carry the block-relative
        # record offset.
        spool, _ = self._spool(tmp_path)
        bogus = struct.pack("<I", 10_000) + b"x"  # length overruns payload
        with pytest.raises(SpoolCorruptionError) as exc:
            spool._split_block(
                bogus, 1, block_index=7, block_start=1000,
                first_record_index=42,
            )
        err = exc.value
        assert err.block_index == 7
        assert err.block_byte_offset == 4  # just past the length prefix
        assert err.record_index == 42
        assert "block 7 + 4" in err.locus()

    def test_fsck_cli_v3_block_flip_and_salvage(self, tmp_path, capsys):
        from repro.cli import main

        spool, records = self._spool(tmp_path)
        report = scan_spool(spool.path)
        assert report.ok
        # Flip one bit in the last block's payload: earlier blocks stay
        # recoverable.
        bit_flip(spool.path, report.valid_end_offset - 10, 2)
        assert main(["fsck", spool.path]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.out
        assert "block" in captured.out
        out = str(tmp_path / "rescued.spool")
        assert main(["fsck", spool.path, "--salvage", out]) == 2
        assert "salvaged" in capsys.readouterr().out
        rescued = DiskSpool.open(out)
        # v3 sources are rescued as v3, name table intact: the records
        # decode identically (ids still spell the same strings).
        assert rescued.format_version == FORMAT_V3
        got = list(rescued.read_forward())
        assert got == records[: len(got)]
        assert len(got) > 0
        assert scan_spool(out).ok

    def test_salvage_survives_footer_damage(self, tmp_path):
        # A flipped footer bit must not cost the whole spool: salvage
        # re-locates the name-table section after the last valid block.
        spool, records = self._spool(tmp_path)
        size = os.path.getsize(spool.path)
        bit_flip(spool.path, size - 6, 1)  # inside the footer crc
        report = scan_spool(spool.path)
        assert not report.ok and not report.footer_ok
        out = str(tmp_path / "rescued.spool")
        salvage_spool(spool.path, out)
        rescued = DiskSpool.open(out)
        assert list(rescued.read_forward()) == records
        assert scan_spool(out).ok

    def test_unsealed_v3_is_unrecoverable_but_clean(self, tmp_path):
        # Crash before finalize: no name table yet, ids are unspellable
        # — salvage must produce an empty sealed spool, not garbage.
        spool, _ = self._spool(tmp_path)
        truncate_file(spool.path, 400)
        report = scan_spool(spool.path)
        assert not report.ok
        out = str(tmp_path / "rescued.spool")
        salvage_spool(spool.path, out)
        rescued = DiskSpool.open(out)
        assert rescued.n_records == 0
        assert scan_spool(out).ok


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


def _binary_pipeline():
    from tests.evalharness import Pipeline, tokens_of
    from tests.sample_grammars import knuth_binary

    pipe = Pipeline(knuth_binary())
    mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
    toks = tokens_of([(mapping[c], c) for c in "1101.01"])
    return pipe, toks


class TestCheckpointResume:
    def _drivers(self, pipe, tmp_path, executor=None):
        from repro.evalgen.driver import AlternatingPassDriver
        from repro.evalgen.interp import InterpretiveEvaluator

        real = InterpretiveEvaluator(pipe.ag).run_pass
        return AlternatingPassDriver(
            pipe.ag,
            pipe.plans,
            executor or real,
            library=pipe.library,
            checkpoint_dir=str(tmp_path),
        )

    def test_resume_after_kill_matches_uninterrupted(self, tmp_path):
        from repro.evalgen.interp import InterpretiveEvaluator

        pipe, toks = _binary_pipeline()
        assert len(pipe.plans) >= 2, "need a multi-pass grammar"
        # Ground truth: one uninterrupted run.
        baseline, _ = pipe.evaluate(toks)

        real = InterpretiveEvaluator(pipe.ag).run_pass

        def dies_in_pass_2(plan, runtime):
            if plan.pass_k == 2:
                raise FaultInjected("power loss during pass 2")
            return real(plan, runtime)

        spool, _ = pipe.build_apt(toks, build_tree=False)
        killed = self._drivers(pipe, tmp_path, executor=dies_in_pass_2)
        with pytest.raises(FaultInjected):
            killed.run(spool, strategy="bottom-up")
        # Pass 1 is sealed on disk; the manifest knows.
        assert os.path.exists(tmp_path / "checkpoint.json")
        assert os.path.exists(tmp_path / "pass1.spool")
        assert scan_spool(str(tmp_path / "pass1.spool")).ok

        spool2, _ = pipe.build_apt(toks, build_tree=False)
        resumed = self._drivers(pipe, tmp_path)
        result = resumed.run(spool2, strategy="bottom-up", resume=True)
        # Only the incomplete passes ran.
        assert [s["pass"] for s in resumed.pass_stats] == [
            p.pass_k for p in pipe.plans[1:]
        ]
        # Byte-identical root attributes.
        canon = lambda attrs: pickle.dumps(sorted(attrs.items()))
        assert canon(result.root_attrs) == canon(baseline.root_attrs)
        # Resume events are metered.
        snap = resumed.metrics.snapshot()
        assert snap["robust.resume_passes_skipped"] == 1
        assert snap["robust.resume_runs"] == 1

    def test_resume_with_everything_complete(self, tmp_path):
        pipe, toks = _binary_pipeline()
        baseline, _ = pipe.evaluate(toks)
        spool, _ = pipe.build_apt(toks, build_tree=False)
        full = self._drivers(pipe, tmp_path)
        first = full.run(spool, strategy="bottom-up")
        spool2, _ = pipe.build_apt(toks, build_tree=False)
        again = self._drivers(pipe, tmp_path)
        second = again.run(spool2, strategy="bottom-up", resume=True)
        assert again.pass_stats == []  # nothing re-executed
        canon = lambda attrs: pickle.dumps(sorted(attrs.items()))
        assert canon(second.root_attrs) == canon(first.root_attrs)
        assert canon(second.root_attrs) == canon(baseline.root_attrs)

    def test_resume_refuses_foreign_manifest(self, tmp_path):
        pipe, toks = _binary_pipeline()
        spool, _ = pipe.build_apt(toks, build_tree=False)
        full = self._drivers(pipe, tmp_path)
        full.run(spool, strategy="bottom-up")
        # Doctor the manifest to claim another grammar.
        import json

        doc = json.loads((tmp_path / "checkpoint.json").read_text())
        doc["grammar"] = "somebody-else"
        (tmp_path / "checkpoint.json").write_text(json.dumps(doc))
        spool2, _ = pipe.build_apt(toks, build_tree=False)
        resumed = self._drivers(pipe, tmp_path)
        with pytest.raises(ResumeError):
            resumed.run(spool2, strategy="bottom-up", resume=True)

    def test_resume_refuses_damaged_checkpoint_spool(self, tmp_path):
        pipe, toks = _binary_pipeline()
        spool, _ = pipe.build_apt(toks, build_tree=False)
        full = self._drivers(pipe, tmp_path)
        full.run(spool, strategy="bottom-up")
        last = f"pass{len(pipe.plans)}.spool"
        bit_flip(str(tmp_path / last), 40, 2)
        spool2, _ = pipe.build_apt(toks, build_tree=False)
        resumed = self._drivers(pipe, tmp_path)
        with pytest.raises(ResumeError):
            resumed.run(spool2, strategy="bottom-up", resume=True)

    def test_resume_without_manifest(self, tmp_path):
        pipe, toks = _binary_pipeline()
        spool, _ = pipe.build_apt(toks, build_tree=False)
        driver = self._drivers(pipe, tmp_path / "empty")
        with pytest.raises(ResumeError):
            driver.run(spool, strategy="bottom-up", resume=True)

    def test_resume_without_checkpoint_dir(self):
        pipe, toks = _binary_pipeline()
        from repro.evalgen.driver import AlternatingPassDriver
        from repro.evalgen.interp import InterpretiveEvaluator

        spool, _ = pipe.build_apt(toks, build_tree=False)
        driver = AlternatingPassDriver(
            pipe.ag, pipe.plans,
            InterpretiveEvaluator(pipe.ag).run_pass,
            library=pipe.library,
        )
        with pytest.raises(ResumeError):
            driver.run(spool, strategy="bottom-up", resume=True)


class TestNoTempSpoolLeak:
    def test_failed_pass_leaves_no_stray_spools(self, tmp_path, monkeypatch):
        """Satellite: an exception mid-pass must close (and for temp
        spools, delete) both live intermediates."""
        import tempfile as _tempfile

        from repro.evalgen.driver import AlternatingPassDriver
        from repro.evalgen.interp import InterpretiveEvaluator

        straydir = tmp_path / "spools"
        straydir.mkdir()
        monkeypatch.setattr(_tempfile, "tempdir", str(straydir))

        pipe, toks = _binary_pipeline()
        real = InterpretiveEvaluator(pipe.ag).run_pass

        def dies_mid_pass(plan, runtime):
            if plan.pass_k == len(pipe.plans):
                # Consume a record or two, then die with the output
                # spool half-written.
                raise FaultInjected("injected failure mid-pass")
            return real(plan, runtime)

        driver = AlternatingPassDriver(
            pipe.ag, pipe.plans, dies_mid_pass, library=pipe.library,
            spool_factory=lambda ch: DiskSpool(channel=ch),
        )
        spool, _ = pipe.build_apt(toks, build_tree=False)
        with pytest.raises(FaultInjected):
            driver.run(spool, strategy="bottom-up")
        stray = sorted(p.name for p in straydir.iterdir())
        assert stray == [], f"stray temp spool files: {stray}"


# ---------------------------------------------------------------------------
# errors.py satellite fixes
# ---------------------------------------------------------------------------


class TestErrorsSatellites:
    def test_severity_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_severity_lt_non_severity_is_typeerror(self):
        with pytest.raises(TypeError):
            Severity.NOTE < 3  # NotImplemented -> TypeError, not ValueError

    def test_raise_if_errors_default_type(self):
        from repro.errors import DiagnosticSink, SemanticError

        sink = DiagnosticSink()
        sink.error("boom")
        with pytest.raises(SemanticError):
            sink.raise_if_errors()
        with pytest.raises(ResumeError):
            sink.raise_if_errors(ResumeError)

    def test_spool_corruption_error_carries_locus(self):
        err = SpoolCorruptionError(
            "bad", record_index=7, byte_offset=1234, reason="checksum"
        )
        assert err.record_index == 7
        assert err.byte_offset == 1234
        assert "record 7 @ byte 1234" == err.locus()
        assert isinstance(err, EvaluationError)


class TestShippedScanners:
    """Every shipped scanner spec tokenizes a representative input."""

    def test_binary_scanner(self):
        from repro.grammars.scanners import binary_scanner_spec

        sc = binary_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("10.01")][:-1]
        assert kinds == ["ONE", "ZERO", "RADIX", "ZERO", "ONE"]

    def test_calc_scanner(self):
        from repro.grammars.scanners import calc_scanner_spec

        sc = calc_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("let x = 3 ; print x")][:-1]
        assert kinds == ["LET", "ID", "ASSIGN", "NUM", "SEMI", "PRINT", "ID"]

    def test_pascal_scanner_assign_vs_colon(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("x := 1; y : integer")][:-1]
        assert kinds == ["ID", "ASSIGN", "NUM", "SEMI", "ID", "COLON", "INTEGER"]

    def test_pascal_scanner_comments(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("a { a comment } b")][:-1]
        assert kinds == ["ID", "ID"]

    def test_pascal_loop_keywords(self):
        from repro.grammars.scanners import pascal_scanner_spec

        sc = pascal_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("repeat until for to")][:-1]
        assert kinds == ["REPEAT", "UNTIL", "FOR", "TO"]

    def test_asm_scanner_label_vs_ident(self):
        from repro.grammars.scanners import asm_scanner_spec

        sc = asm_scanner_spec().generate()
        kinds = [t.kind for t in sc.scan("loop: jmp loop ; away")][:-1]
        assert kinds == ["LABEL", "JMP", "ID"]
