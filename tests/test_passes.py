"""Unit tests for the alternating-pass evaluability analysis (S8)."""

import pytest

from repro.errors import PassError
from repro.passes import (
    Direction,
    StepKind,
    assign_passes,
    direction_of_pass,
    render_pass_report,
)
from repro.passes.partition import choose_first_direction
from repro.passes.schedule import INTRINSIC_PASS, schedule_production

from tests.sample_grammars import (
    knuth_binary,
    left_flow,
    right_flow,
    synthesized_only,
    with_limb,
    zigzag_unbounded,
)


class TestDirections:
    def test_alternation_from_r2l(self):
        assert direction_of_pass(1, Direction.R2L) is Direction.R2L
        assert direction_of_pass(2, Direction.R2L) is Direction.L2R
        assert direction_of_pass(3, Direction.R2L) is Direction.R2L

    def test_alternation_from_l2r(self):
        assert direction_of_pass(1, Direction.L2R) is Direction.L2R
        assert direction_of_pass(2, Direction.L2R) is Direction.R2L

    def test_opposite(self):
        assert Direction.L2R.opposite is Direction.R2L
        assert Direction.R2L.opposite is Direction.L2R


class TestPassCounts:
    def test_synthesized_only_one_pass_both_directions(self):
        ag = synthesized_only()
        assert assign_passes(ag, Direction.R2L).n_passes == 1
        assert assign_passes(ag, Direction.L2R).n_passes == 1

    def test_left_flow_depends_on_direction(self):
        ag = left_flow()
        assert assign_passes(ag, Direction.L2R).n_passes == 1
        # Starting right-to-left, ACC of the right item needs TOT of the
        # left item, which is only available in the second (L2R) pass.
        assert assign_passes(ag, Direction.R2L).n_passes == 2

    def test_right_flow_mirror(self):
        ag = right_flow()
        assert assign_passes(ag, Direction.R2L).n_passes == 1
        assert assign_passes(ag, Direction.L2R).n_passes == 2

    def test_knuth_binary_two_passes(self):
        ag = knuth_binary()
        assignment = assign_passes(ag, Direction.R2L)
        assert assignment.n_passes == 2
        # LEN is computable in pass 1; SCALE and VAL must wait.
        assert assignment.pass_of("bits", "LEN") == 1
        assert assignment.pass_of("bits", "SCALE") == 2
        assert assignment.pass_of("bits", "VAL") == 2
        assert assignment.pass_of("bit", "SCALE") == 2

    def test_zigzag_rejected(self):
        ag = zigzag_unbounded()
        with pytest.raises(PassError) as exc:
            assign_passes(ag, Direction.R2L, max_passes=8)
        assert "not evaluable" in str(exc.value)
        with pytest.raises(PassError):
            assign_passes(ag, Direction.L2R, max_passes=8)

    def test_choose_first_direction_picks_cheaper(self):
        assignment = choose_first_direction(left_flow())
        assert assignment.first_direction is Direction.L2R
        assert assignment.n_passes == 1
        assignment = choose_first_direction(right_flow())
        assert assignment.first_direction is Direction.R2L

    def test_choose_first_direction_rejects_zigzag(self):
        with pytest.raises(PassError):
            choose_first_direction(zigzag_unbounded(), max_passes=6)

    def test_intrinsic_attrs_in_pass_zero(self):
        ag = left_flow()
        assignment = assign_passes(ag, Direction.L2R)
        assert assignment.attr_pass[("X", "W")] == INTRINSIC_PASS

    def test_function_pass_numbers_stamped(self):
        ag = knuth_binary()
        assign_passes(ag, Direction.R2L)
        leaf_bits = ag.productions[2]
        passes = sorted({f.pass_number for f in leaf_bits.functions})
        assert passes == [1, 2]  # LEN in pass 1, VAL/SCALE copies in pass 2

    def test_limb_attribute_gets_pass(self):
        ag = with_limb()
        assignment = assign_passes(ag, Direction.R2L)
        assert assignment.pass_of("PairLimb", "DIFF") == 1
        assert assignment.n_passes == 1


class TestSchedules:
    def test_skeleton_order_l2r(self):
        ag = left_flow()
        assignment = assign_passes(ag, Direction.L2R)
        prod = ag.productions[0]  # root = item item
        steps = assignment.schedule(prod, 1).steps
        ops = [(s.kind, s.position) for s in steps if s.kind is not StepKind.EVAL]
        assert ops == [
            (StepKind.READ, 1),
            (StepKind.VISIT, 1),
            (StepKind.WRITE, 1),
            (StepKind.READ, 2),
            (StepKind.VISIT, 2),
            (StepKind.WRITE, 2),
        ]

    def test_skeleton_order_r2l(self):
        ag = right_flow()
        assignment = assign_passes(ag, Direction.R2L)
        prod = ag.productions[0]
        steps = assignment.schedule(prod, 1).steps
        reads = [s.position for s in steps if s.kind is StepKind.READ]
        assert reads == [2, 1]

    def test_inherited_eval_precedes_visit(self):
        ag = left_flow()
        assignment = assign_passes(ag, Direction.L2R)
        prod = ag.productions[0]
        steps = assignment.schedule(prod, 1).steps
        visit1 = next(i for i, s in enumerate(steps)
                      if s.kind is StepKind.VISIT and s.position == 1)
        acc_evals = [
            i for i, s in enumerate(steps)
            if s.kind is StepKind.EVAL
            and s.binding.target.position == 1
            and s.binding.target.attr_name == "ACC"
        ]
        assert acc_evals and all(i < visit1 for i in acc_evals)

    def test_terminals_read_and_written_not_visited(self):
        ag = knuth_binary()
        assignment = assign_passes(ag, Direction.R2L)
        prod = ag.productions[0]  # number = bits DOT bits
        steps = assignment.schedule(prod, 1).steps
        dot_ops = [s.kind for s in steps if s.position == 2 and s.kind is not StepKind.EVAL]
        assert dot_ops == [StepKind.READ, StepKind.WRITE]

    def test_limb_read_first_written_last(self):
        from repro.ag.model import LIMB_POSITION

        ag = with_limb()
        assignment = assign_passes(ag, Direction.R2L)
        prod = ag.productions[1]
        steps = assignment.schedule(prod, 1).steps
        assert steps[0].kind is StepKind.READ
        assert steps[0].position == LIMB_POSITION
        assert steps[-1].kind is StepKind.WRITE
        assert steps[-1].position == LIMB_POSITION

    def test_early_synthesized_eval(self):
        """The §III loosening: an LHS synthesized attribute whose arguments
        are ready before the last child visit is evaluated early."""
        from repro.ag import GrammarBuilder

        b = GrammarBuilder("early", start="root")
        b.nonterminal("root", synthesized={"OUT": "int"})
        b.nonterminal("u", synthesized={"V": "int"})
        b.terminal("T", intrinsic={"W": "int"})
        b.production("root", ["T", "u"], functions=[
            ("root.OUT", "T.W"),  # ready right after reading T
        ])
        b.production("u", ["T"], functions=[("u.V", "T.W")])
        ag = b.finish()
        assignment = assign_passes(ag, Direction.L2R)
        steps = assignment.schedule(ag.productions[0], 1).steps
        eval_i = next(i for i, s in enumerate(steps) if s.kind is StepKind.EVAL)
        visit_u = next(i for i, s in enumerate(steps) if s.kind is StepKind.VISIT)
        assert eval_i < visit_u

    def test_schedule_renders(self):
        ag = with_limb()
        assignment = assign_passes(ag, Direction.R2L)
        prod = ag.productions[1]
        text = "\n".join(s.render(prod) for s in assignment.schedule(prod, 1).steps)
        assert "get PairLimb" in text
        assert "eval" in text

    def test_report_renders(self):
        ag = knuth_binary()
        assignment = assign_passes(ag, Direction.R2L)
        text = render_pass_report(assignment)
        assert "2 alternating pass(es)" in text
        assert "bits.LEN" in text
        assert "intrinsic" not in text or "parser" in text


class TestScheduleFailureReporting:
    def test_failed_bindings_identified(self):
        ag = left_flow()
        # Force a wrong assignment: everything in pass 1, direction R2L.
        attr_pass = {
            ("root", "OUT"): 1,
            ("item", "ACC"): 1,
            ("item", "TOT"): 1,
            ("X", "W"): INTRINSIC_PASS,
        }
        result = schedule_production(
            ag, ag.productions[0], 1, Direction.R2L, attr_pass
        )
        assert not result.ok
        failed_targets = {str(b.target) for b in result.failed}
        # item1.ACC needs item0.TOT: impossible right-to-left in pass 1.
        assert any("ACC" in t for t in failed_targets)
