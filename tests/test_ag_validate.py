"""Unit tests for validation, implicit copy-rules, statistics, circularity (S7)."""

import pytest

from repro.ag import (
    AttrRef,
    GrammarBuilder,
    check_noncircular,
    compute_statistics,
    LHS_POSITION,
)
from repro.ag.copyrules import grammar_bindings, is_copy_rule, production_bindings
from repro.errors import CircularityError, SemanticError


def simple_builder():
    b = GrammarBuilder("t", start="S")
    b.nonterminal("S", synthesized={"VAL": "int"}, inherited={})
    b.nonterminal("E", synthesized={"VAL": "int"}, inherited={"ENV": "EnvT"})
    b.terminal("NUM", intrinsic={"LEX": "int"})
    b.terminal("PLUS")
    return b


class TestValidation:
    def test_valid_grammar_passes(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.VAL"),
            ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["E", "PLUS", "E"], functions=[
            ("E0.VAL", "E1.VAL + E2.VAL"),
            ("E1.ENV", "E0.ENV"),
            ("E2.ENV", "E0.ENV"),
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        ag = b.finish()
        assert len(ag.productions) == 3

    def test_missing_synthesized_rejected(self):
        b = GrammarBuilder("t", start="S")
        # S.RESULT shares no name with any E attribute, so no implicit
        # copy-rule can repair the omission.
        b.nonterminal("S", synthesized={"RESULT": "int"})
        b.nonterminal("E", inherited={"ENV": "EnvT"}, synthesized={"VAL": "int"})
        b.terminal("NUM", intrinsic={"LEX": "int"})
        b.production("S", ["E"], functions=[("E.ENV", "empty$pf()")])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "RESULT" in str(exc.value)

    def test_missing_inherited_rejected_when_no_implicit(self):
        b = simple_builder()
        # S has no ENV attribute, so no implicit copy for E.ENV exists.
        b.production("S", ["E"], functions=[("S.VAL", "E.VAL")])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError):
            b.finish()

    def test_double_definition_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.VAL"),
            ("S.VAL", "0"),
            ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "twice" in str(exc.value)

    def test_defining_intrinsic_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.VAL"), ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[
            ("E.VAL", "NUM.LEX"),
            ("NUM.LEX", "0"),
        ])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "intrinsic" in str(exc.value)

    def test_defining_lhs_inherited_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.VAL"), ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[
            ("E.VAL", "NUM.LEX"),
            ("E.ENV", "empty$pf()"),  # E is the LHS here: illegal target
        ])
        with pytest.raises(SemanticError):
            b.finish()

    def test_defining_rhs_synthesized_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "0"),
            ("E.ENV", "empty$pf()"),
            ("E.VAL", "1"),  # synthesized attr of a RHS occurrence: illegal
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError):
            b.finish()

    def test_unknown_occurrence_in_expr_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "Q.VAL"),
            ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "Q" in str(exc.value)

    def test_unknown_attribute_in_expr_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.NOPE"),
            ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        with pytest.raises(SemanticError):
            b.finish()

    def test_start_symbol_inherited_rejected(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", inherited={"X": "int"}, synthesized={"V": "int"})
        b.terminal("A")
        b.production("S", ["A"], functions=[("S.V", "0")])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "start" in str(exc.value)

    def test_nonterminal_without_productions_rejected(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "E.VAL"), ("E.ENV", "empty$pf()"),
        ])
        # no production for E
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "no productions" in str(exc.value)

    def test_bare_symbolic_constant_resolves(self):
        b = simple_builder()
        b.production("S", ["E"], functions=[
            ("S.VAL", "no$msg"),
            ("E.ENV", "empty$pf()"),
        ])
        b.production("E", ["NUM"], functions=[("E.VAL", "NUM.LEX")])
        ag = b.finish()
        func = [f for f in ag.productions[0].functions if not f.implicit][0]
        from repro.ag.expr import Const

        assert func.expr == Const("no$msg", is_symbolic=True)

    def test_multi_target_arity_mismatch_rejected(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"A": "int", "B": "int"})
        b.terminal("T")
        b.production("S", ["T"], functions=[
            (["S.A", "S.B"], "if 1 = 1 then 1, 2, 3 else 4, 5, 6 endif"),
        ])
        with pytest.raises(SemanticError):
            b.finish()

    def test_multi_target_shared_value(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"A": "int", "B": "int"})
        b.terminal("T")
        b.production("S", ["T"], functions=[
            (["S.A", "S.B"], "7"),
        ])
        ag = b.finish()
        bindings = production_bindings(ag.productions[0])
        assert len(bindings) == 2
        assert {str(b.target.attribute) for b in bindings} == {"S.A", "S.B"}


class TestLimbAttributes:
    def make(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.terminal("T", intrinsic={"N": "int"})
        b.limb("SLimb", local={"TMP": "int"})
        return b

    def test_limb_attr_as_common_subexpression(self):
        b = self.make()
        b.production("S", ["T"], limb="SLimb", functions=[
            ("TMP", "T.N + 1"),
            ("S.V", "TMP * TMP"),
        ])
        ag = b.finish()
        funcs = ag.productions[0].functions
        assert len(funcs) == 2

    def test_referenced_undefined_limb_attr_rejected(self):
        b = self.make()
        b.production("S", ["T"], limb="SLimb", functions=[
            ("S.V", "TMP + 1"),
        ])
        with pytest.raises(SemanticError) as exc:
            b.finish()
        assert "TMP" in str(exc.value)

    def test_unused_limb_attr_warns_not_errors(self):
        from repro.errors import DiagnosticSink, Severity

        b = self.make()
        b.production("S", ["T"], limb="SLimb", functions=[
            ("S.V", "T.N"),
        ])
        sink = DiagnosticSink()
        ag = b.finish(sink)
        warnings = [d for d in sink if d.severity is Severity.WARNING]
        assert any("TMP" in d.message for d in warnings)

    def test_bare_target_without_limb_rejected(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.terminal("T")
        b.production("S", ["T"], functions=[
            ("TMP", "1"),
            ("S.V", "2"),
        ])
        with pytest.raises(SemanticError):
            b.finish()


class TestImplicitCopyRules:
    """§IV's two flavors of implicit copy-rule insertion."""

    def test_flavor1_inherited_copied_down(self):
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"OUT": "int"})
        b.nonterminal("S", inherited={"ENV": "E"}, synthesized={"OUT": "int"})
        b.terminal("T")
        # R has no ENV, so R's production must define S.ENV explicitly...
        b.production("R", ["S"], functions=[("S.ENV", "empty$pf()")])
        # ...but S's own recursion gets ENV implicitly: S1.ENV = S0.ENV.
        b.production("S", ["T", "S"], functions=[
            ("S0.OUT", "S1.OUT + 1"),
        ])
        b.production("S", ["T"], functions=[("S.OUT", "0")])
        ag = b.finish()
        rec = ag.productions[1]
        implicit = [f for f in rec.functions if f.implicit]
        assert len(implicit) == 1
        (f,) = implicit
        assert str(f.targets[0]) == "S[rhs2].ENV"
        assert f.expr == AttrRef("S0", "ENV", LHS_POSITION)

    def test_flavor1_requires_same_name_on_lhs(self):
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"OUT": "int"})
        b.nonterminal("S", inherited={"CTX": "E"}, synthesized={"OUT": "int"})
        b.terminal("T")
        b.production("R", ["S"], functions=[("S.CTX", "empty$pf()")])
        b.production("S", ["T"], functions=[("S.OUT", "0")])
        ag = b.finish()  # fine: CTX explicitly defined at root, leaf has none

    def test_flavor2_synthesized_copied_up(self):
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"OUT": "int"})
        b.nonterminal("S", synthesized={"OUT": "int"})
        b.terminal("T")
        b.production("R", ["S"])  # R.OUT = S.OUT inserted implicitly
        b.production("S", ["T"], functions=[("S.OUT", "1")])
        ag = b.finish()
        implicit = [f for f in ag.productions[0].functions if f.implicit]
        assert len(implicit) == 1
        assert implicit[0].expr == AttrRef("S", "OUT", 1)

    def test_flavor2_not_inserted_when_two_candidates(self):
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"OUT": "int"})
        b.nonterminal("S", synthesized={"OUT": "int"})
        b.terminal("T")
        # two occurrences of S: ambiguous, no implicit copy, so error.
        b.production("R", ["S", "S"])
        b.production("S", ["T"], functions=[("S.OUT", "1")])
        with pytest.raises(SemanticError):
            b.finish()

    def test_flavor2_not_inserted_across_different_symbols(self):
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"OUT": "int"})
        b.nonterminal("S", synthesized={"OUT": "int"})
        b.nonterminal("U", synthesized={"OUT": "int"})
        b.terminal("T")
        b.production("R", ["S", "U"])  # two distinct symbols with OUT: ambiguous
        b.production("S", ["T"], functions=[("S.OUT", "1")])
        b.production("U", ["T"], functions=[("U.OUT", "2")])
        with pytest.raises(SemanticError):
            b.finish()

    def test_list_production_both_flavors(self):
        """The paper's canonical list shape: context flows down, result up."""
        b = GrammarBuilder("t", start="R")
        b.nonterminal("R", synthesized={"N": "int"})
        b.nonterminal("L", inherited={"D": "int"}, synthesized={"N": "int"})
        b.terminal("X")
        b.production("R", ["L"], functions=[("L.D", "1")])
        b.production("L", ["L", "X"])  # L1.D = L0.D and L0.N = L1.N implicit
        b.production("L", ["X"], functions=[("L.N", "L.D")])
        ag = b.finish()
        implicit = [f for f in ag.productions[1].functions if f.implicit]
        assert len(implicit) == 2


class TestCopyRuleClassification:
    def test_copy_rule_detected(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.nonterminal("E", synthesized={"V": "int"})
        b.terminal("N", intrinsic={"L": "int"})
        b.production("S", ["E"], functions=[("S.V", "E.V")])
        b.production("E", ["N"], functions=[("E.V", "N.L + 0")])
        ag = b.finish()
        funcs0 = ag.productions[0].functions
        funcs1 = ag.productions[1].functions
        assert is_copy_rule(funcs0[0])
        assert not is_copy_rule(funcs1[0])

    def test_same_name_copy(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.nonterminal("E", synthesized={"V": "int", "W": "int"})
        b.terminal("N")
        b.production("S", ["E"], functions=[("S.V", "E.W")])
        b.production("E", ["N"], functions=[("E.V", "1"), ("E.W", "2")])
        ag = b.finish()
        bindings = production_bindings(ag.productions[0])
        copies = [x for x in bindings if x.is_copy()]
        assert len(copies) == 1
        assert not copies[0].is_same_name_copy()  # V = W: different names

    def test_statistics(self):
        b = GrammarBuilder("stats", start="R")
        b.nonterminal("R", synthesized={"N": "int"})
        b.nonterminal("L", inherited={"D": "int"}, synthesized={"N": "int"})
        b.terminal("X", intrinsic={"I": "int"})
        b.production("R", ["L"], functions=[("L.D", "1")])
        b.production("L", ["L", "X"])
        b.production("L", ["X"], functions=[("L.N", "L.D + X.I")])
        ag = b.finish()
        ag.source_lines = 11
        stats = compute_statistics(ag, n_passes=2)
        assert stats.n_productions == 3
        assert stats.n_symbols == 3
        assert stats.n_attributes == 4
        # 2 explicit + 3 implicit (R.N = L.N, L1.D = L0.D, L0.N = L1.N)
        assert stats.n_semantic_functions == 5
        assert stats.n_copy_rules == 3
        assert stats.n_implicit_copy_rules == 3
        assert stats.n_passes == 2
        assert 0 < stats.copy_rule_percent < 100
        assert "productions" in stats.render()


class TestCircularity:
    def test_noncircular_grammar_passes(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.nonterminal("E", inherited={"D": "int"}, synthesized={"V": "int"})
        b.terminal("N")
        b.production("S", ["E"], functions=[("E.D", "0"), ("S.V", "E.V")])
        b.production("E", ["N"], functions=[("E.V", "E.D + 1")])
        ag = b.finish()
        report = check_noncircular(ag)
        assert report.ok
        assert ("D", "V") in report.io["E"]

    def test_circular_grammar_detected(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.nonterminal("X", inherited={"I": "int"}, synthesized={"O": "int"})
        b.terminal("N")
        # X.I = X.O at the use site; X.O = X.I inside: a true cycle.
        b.production("S", ["X"], functions=[("X.I", "X.O"), ("S.V", "X.O")])
        b.production("X", ["N"], functions=[("X.O", "X.I")])
        b_ag = b.finish()
        with pytest.raises(CircularityError):
            check_noncircular(b_ag)
        report = check_noncircular(b_ag, strict=False)
        assert not report.ok
        assert report.cycles
        assert "circular" in report.render(b_ag)

    def test_io_relation_empty_for_independent_attrs(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"V": "int"})
        b.nonterminal("E", inherited={"D": "int"}, synthesized={"V": "int"})
        b.terminal("N", intrinsic={"L": "int"})
        b.production("S", ["E"], functions=[("E.D", "0"), ("S.V", "E.V")])
        b.production("E", ["N"], functions=[("E.V", "N.L")])  # V independent of D
        ag = b.finish()
        report = check_noncircular(ag)
        assert report.io["E"] == set()
