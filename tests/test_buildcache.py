"""Unit tests for the persistent grammar-artifact cache.

Three contracts, in increasing strictness:

1. the **store** seals entries (header echo + payload CRC + sealed
   footer) and treats *every* corruption as a transparent miss — count
   it, unlink it, rebuild — never a crash, never a wrong payload;
2. a **warm build is a real hit**: the counters say so, and the
   rehydrated translator equals the cold one;
3. a warm build does **zero rebuild work**: with every expensive
   builder (LALR construction, NFA/subset/minimize, pass planning,
   code generation, even the `.ag` parser) monkeypatch-poisoned to
   raise, construction through a warm cache still succeeds.
"""

import os
import pickle

import pytest

from repro.buildcache import (
    BuildCache,
    CACHE_DIR_ENV,
    default_cache_root,
    grammar_key,
    scanner_key,
    source_key,
)
from repro.buildcache.store import _HEADER, ENTRY_SUFFIX
from repro.core import Linguist
from repro.errors import CacheCorruptionError
from repro.grammars import load_source, scanner_and_library
from repro.obs import MetricsRegistry, Tracer

KEY_A = "a" * 64
KEY_B = "b" * 64


# ---------------------------------------------------------------------------
# the sealed store
# ---------------------------------------------------------------------------


class TestStore:
    def test_round_trip(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        payload = {"x": [1, 2, 3], "y": "text"}
        path = cache.store("unit", KEY_A, payload)
        assert path.endswith(ENTRY_SUFFIX)
        assert cache.load("unit", KEY_A) == payload

    def test_miss_counters(self, tmp_path):
        metrics = MetricsRegistry()
        cache = BuildCache(str(tmp_path), metrics=metrics)
        assert cache.load("unit", KEY_A) is None
        cache.store("unit", KEY_A, {"v": 1})
        assert cache.load("unit", KEY_A) == {"v": 1}
        snap = metrics.snapshot()
        assert snap["cache.miss"] == 1
        assert snap["cache.unit.miss"] == 1
        assert snap["cache.write"] == 1
        assert snap["cache.hit"] == 1
        assert snap["cache.unit.hit"] == 1

    def test_per_call_metrics_override(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        metrics = MetricsRegistry()
        cache.store("unit", KEY_A, {}, metrics=metrics)
        cache.load("unit", KEY_A, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["cache.write"] == 1 and snap["cache.hit"] == 1

    def test_entries_and_clear(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        cache.store("k1", KEY_A, {"v": 1})
        cache.store("k2", KEY_B, {"v": 2})
        entries = cache.entries()
        assert [(e.kind, e.key) for e in entries] == [
            ("k1", KEY_A), ("k2", KEY_B)
        ]
        assert all(e.file_bytes > 0 for e in entries)
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-cache"))
        assert default_cache_root() == str(tmp_path / "env-cache")
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert "repro-linguist" in default_cache_root()


# ---------------------------------------------------------------------------
# corruption: always a miss, never a crash
# ---------------------------------------------------------------------------


def _corrupt(path: str, fn) -> None:
    with open(path, "rb") as f:
        data = bytearray(f.read())
    data = fn(data)
    with open(path, "wb") as f:
        f.write(bytes(data))


def _flip_payload_byte(data):
    i = _HEADER.size + 2  # inside the pickled blob
    data[i] ^= 0xFF
    return data


CORRUPTIONS = {
    "payload-bitflip": _flip_payload_byte,
    "truncated-tail": lambda d: d[: len(d) - 6],
    "truncated-short": lambda d: d[:10],
    "bad-magic": lambda d: b"XXXXXXXX" + bytes(d[8:]),
    "bad-version": lambda d: d[:8] + b"\xff\xff" + bytes(d[10:]),
    "empty": lambda d: b"",
    "garbage": lambda d: os.urandom(len(d)),
}


class TestCorruption:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corruption_is_a_miss(self, tmp_path, name):
        metrics = MetricsRegistry()
        tracer = Tracer()
        cache = BuildCache(str(tmp_path), metrics=metrics, tracer=tracer)
        path = cache.store("unit", KEY_A, {"v": 42})
        _corrupt(path, CORRUPTIONS[name])
        assert cache.load("unit", KEY_A) is None  # never raises
        snap = metrics.snapshot()
        assert snap["cache.corrupt"] == 1
        assert snap["cache.unit.corrupt"] == 1
        assert snap["cache.miss"] == 1
        # the damaged file is unlinked so the rebuild can re-seal it
        assert not os.path.exists(path)
        names = [r.name for r in tracer.records]
        assert "cache.corruption" in names
        # ...and a rebuild round-trips again
        cache.store("unit", KEY_A, {"v": 42})
        assert cache.load("unit", KEY_A) == {"v": 42}

    def test_key_echo_rejects_renamed_file(self, tmp_path):
        """A file renamed to another key can never satisfy that lookup."""
        cache = BuildCache(str(tmp_path))
        path_a = cache.store("unit", KEY_A, {"v": 1})
        path_b = cache.path_for("unit", KEY_B)
        os.replace(path_a, path_b)
        assert cache.load("unit", KEY_B) is None
        assert not os.path.exists(path_b)

    def test_valid_checksum_bad_pickle(self, tmp_path):
        """A well-sealed entry whose blob is not a pickle is corrupt."""
        cache = BuildCache(str(tmp_path))
        cache.store("unit", KEY_A, {"v": 1})
        # Re-seal with a non-pickle blob through the store's own writer
        # by pickling a non-dict (valid pickle, wrong shape).
        cache.store("unit", KEY_B, {"v": 2})
        import struct, zlib
        from repro.buildcache.store import (
            _FOOTER, _U32, ENTRY_FORMAT, FOOTER_MAGIC, MAGIC,
        )

        blob = b"not a pickle at all"
        path = cache.path_for("unit", KEY_A)
        footer_body = _FOOTER.pack(FOOTER_MAGIC, len(blob), zlib.crc32(blob), 0)[:-4]
        with open(path, "wb") as f:
            f.write(_HEADER.pack(MAGIC, ENTRY_FORMAT, 0,
                                 KEY_A.encode().ljust(64, b"\x00")))
            f.write(blob)
            f.write(footer_body)
            f.write(_U32.pack(zlib.crc32(footer_body)))
        assert cache.load("unit", KEY_A) is None

    def test_non_dict_payload_is_corrupt(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        path = cache.store("unit", KEY_A, {"v": 1})
        # splice in a pickled list with a correct checksum
        import zlib
        from repro.buildcache.store import (
            _FOOTER, _U32, ENTRY_FORMAT, FOOTER_MAGIC, MAGIC,
        )

        blob = pickle.dumps([1, 2, 3])
        footer_body = _FOOTER.pack(FOOTER_MAGIC, len(blob), zlib.crc32(blob), 0)[:-4]
        with open(path, "wb") as f:
            f.write(_HEADER.pack(MAGIC, ENTRY_FORMAT, 0,
                                 KEY_A.encode().ljust(64, b"\x00")))
            f.write(blob)
            f.write(footer_body)
            f.write(_U32.pack(zlib.crc32(footer_body)))
        assert cache.load("unit", KEY_A) is None

    def test_corruption_error_is_typed(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        path = cache.store("unit", KEY_A, {"v": 1})
        _corrupt(path, _flip_payload_byte)
        with pytest.raises(CacheCorruptionError) as exc:
            cache._read_sealed(path, KEY_A)
        assert exc.value.reason == "checksum"
        assert exc.value.path == path


# ---------------------------------------------------------------------------
# warm builds: counted, equal, and free
# ---------------------------------------------------------------------------


def _cold_then_warm(tmp_path, name="calc"):
    source = load_source(name)
    spec, library = scanner_and_library(name)
    cold_metrics = MetricsRegistry()
    cold = Linguist(
        source, cache=BuildCache(str(tmp_path)), metrics=cold_metrics
    )
    cold_t = cold.make_translator(spec, library=library)
    warm_metrics = MetricsRegistry()
    warm = Linguist(
        source, cache=BuildCache(str(tmp_path)), metrics=warm_metrics
    )
    warm_t = warm.make_translator(spec, library=library)
    return cold, cold_t, cold_metrics, warm, warm_t, warm_metrics


class TestWarmBuild:
    def test_counters_and_equality(self, tmp_path):
        cold, cold_t, cm, warm, warm_t, wm = _cold_then_warm(tmp_path)
        assert not cold.from_cache and warm.from_cache
        cs, ws = cm.snapshot(), wm.snapshot()
        # cold: alias miss + grammar miss + scanner miss, three writes
        assert cs["cache.miss"] == 3 and cs["cache.write"] == 3
        assert cs.get("cache.hit", 0) == 0
        # warm: alias + grammar + scanner hits, nothing written
        assert ws["cache.hit"] == 3
        assert ws.get("cache.miss", 0) == 0 and ws.get("cache.write", 0) == 0
        assert ws["cache.alias.hit"] == 1
        assert ws["cache.grammar.hit"] == 1
        assert ws["cache.scanner.hit"] == 1
        # the rehydrated build equals the cold one
        assert [a.text for a in warm.python_artifacts] == [
            a.text for a in cold.python_artifacts
        ]
        text = "let a = 2 ; let b = a * a ; print b + 1"
        assert (
            warm_t.translate(text).root_attrs
            == cold_t.translate(text).root_attrs
        )

    def test_corrupt_entry_rebuilds_cleanly(self, tmp_path):
        """Corrupting every cached file still yields a working build —
        slower, never wrong, never a crash."""
        _cold_then_warm(tmp_path)
        cache = BuildCache(str(tmp_path))
        entries = cache.entries()
        assert {e.kind for e in entries} == {"alias", "grammar", "scanner"}
        for entry in entries:
            _corrupt(entry.path, _flip_payload_byte)
        metrics = MetricsRegistry()
        source = load_source("calc")
        spec, library = scanner_and_library("calc")
        rebuilt = Linguist(
            source, cache=BuildCache(str(tmp_path)), metrics=metrics
        )
        translator = rebuilt.make_translator(spec, library=library)
        assert not rebuilt.from_cache
        snap = metrics.snapshot()
        assert snap["cache.corrupt"] >= 2  # alias + grammar (+ scanner)
        assert snap["cache.write"] == 3  # everything re-sealed
        result = translator.translate("let a = 1 ; print a + 9")
        assert list(result.root_attrs["OUT"]) == [10]
        # and the very next build is warm again
        again = Linguist(source, cache=BuildCache(str(tmp_path)))
        assert again.from_cache

    def test_payload_missing_keys_is_a_cold_build(self, tmp_path):
        """A payload from some other layout (valid seal, wrong shape)
        is not trusted."""
        source = load_source("binary")
        Linguist(source, cache=BuildCache(str(tmp_path)))
        cache = BuildCache(str(tmp_path))
        skey = source_key(source)
        alias = cache.load("alias", skey)
        cache.store("grammar", alias["target"], {"ag": None})  # wrong shape
        rebuilt = Linguist(source, cache=BuildCache(str(tmp_path)))
        assert not rebuilt.from_cache
        assert rebuilt.n_passes >= 2


def test_poisoned_builders_warm_build(tmp_path, monkeypatch):
    """Seed the cache cold, then poison every builder and construct a
    full translator warm: zero LALR / DFA / planning / codegen work."""
    source = load_source("calc")
    spec, library = scanner_and_library("calc")
    Linguist(source, cache=BuildCache(str(tmp_path))).make_translator(
        spec, library=library
    )

    import repro.core.linguist as lingmod
    import repro.evalgen.codegen_py as codegen_py
    import repro.regex.generator as regexgen

    def poison(module, name):
        def boom(*args, **kwargs):
            raise AssertionError(
                f"{name} ran on the warm path (cache hit must do zero "
                "rebuild work)"
            )

        monkeypatch.setattr(module, name, boom)

    poison(lingmod, "parse_ag_text")
    poison(lingmod, "analyze")
    poison(lingmod, "check_noncircular")
    poison(lingmod, "build_tables")
    poison(lingmod, "assign_passes")
    poison(lingmod, "analyze_deadness")
    poison(lingmod, "choose_static_attributes")
    poison(lingmod, "build_pass_plans")
    poison(codegen_py.PythonCodeGenerator, "__init__")
    poison(lingmod, "PascalCodeGenerator")
    poison(regexgen, "build_nfa")
    poison(regexgen, "determinize")
    poison(regexgen, "minimize")

    warm = Linguist(source, cache=BuildCache(str(tmp_path)))
    assert warm.from_cache
    translator = warm.make_translator(spec, library=library)
    result = translator.translate("let a = 6 ; print a * 7")
    assert list(result.root_attrs["OUT"]) == [42]


def test_keys_are_stable_hex(tmp_path):
    """Keys are 64-char hex — filesystem-safe names under any OS."""
    source = load_source("binary")
    cold = Linguist(source)
    spec, _ = scanner_and_library("binary")
    for key in (
        grammar_key(cold.ag),
        scanner_key(spec),
        source_key(source),
    ):
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)
