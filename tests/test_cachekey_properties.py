"""Property tests for the build-cache content addressing.

The cache key must be exactly as sensitive as the build it names:

* **any single semantic mutation** — renaming an attribute, reordering
  productions (production indices feed the LALR construction), tweaking
  a semantic function, or changing the pass strategy — must change the
  key (a collision would replay the wrong artifacts);
* **serialization-order noise** — declaring the same symbols, the same
  attributes, or the same per-production semantic functions in a
  different order — must NOT change the key (the grammar is
  declarative; equal grammars share one payload);
* **a cache hit must be invisible**: the warm build's artifacts equal
  the cold build's, byte for byte.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ag import GrammarBuilder
from repro.buildcache import grammar_key, scanner_key, source_key
from repro.passes.schedule import Direction
from repro.evalgen.subsumption import SubsumptionConfig

# ---------------------------------------------------------------------------
# a parametric grammar: every knob is one observable mutation site
# ---------------------------------------------------------------------------

#: (symbol-declaration order, per-production function order) never
#: change semantics; everything else does.


def make_grammar(
    attr="TOT",
    const="0",
    expr="item.ACC + X.W",
    swap_productions=False,
    sym_order=(0, 1, 2),
    fn_order=(0, 1, 2),
    attr_order=False,
):
    b = GrammarBuilder("keyprobe", start="root")

    def declare_item():
        # attr_order flips only the *declaration order* of item's
        # attributes (symbol.attributes is insertion-ordered): the
        # grammar is identical either way.
        if attr_order:
            b.nonterminal("item", synthesized={attr: "int"},
                          inherited={"ACC": "int"})
        else:
            b.nonterminal("item", inherited={"ACC": "int"},
                          synthesized={attr: "int"})

    decls = [
        lambda: b.nonterminal("root", synthesized={"OUT": "int"}),
        declare_item,
        lambda: b.terminal("X", intrinsic={"W": "int"}),
    ]
    for i in sym_order:
        decls[i]()
    root_functions = [
        ("item0.ACC", const),
        ("item1.ACC", f"item0.{attr}"),
        ("root.OUT", f"item1.{attr}"),
    ]
    root_functions = [root_functions[i] for i in fn_order]
    prods = [
        lambda: b.production("root", ["item", "item"], functions=root_functions),
        lambda: b.production(
            "item", ["X"], functions=[(f"item.{attr}", expr)]
        ),
    ]
    if swap_productions:
        # Same production set, alternatives of 'item' swapped in index
        # order via an extra epsilon-free alternative pair.
        prods = [prods[1], prods[0]]
    for make in prods:
        make()
    return b.finish()


BASE_KEY = grammar_key(make_grammar())


# ---------------------------------------------------------------------------
# sensitivity: every single mutation changes the key
# ---------------------------------------------------------------------------

MUTATIONS = {
    "rename-attribute": dict(attr="SUM"),
    "tweak-constant": dict(const="1"),
    "tweak-function": dict(expr="item.ACC - X.W"),
    "reorder-productions": dict(swap_productions=True),
}


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_single_model_mutation_changes_key(name):
    mutated = grammar_key(make_grammar(**MUTATIONS[name]))
    assert mutated != BASE_KEY, f"mutation {name} collided with the base key"


@given(
    attr=st.sampled_from(["TOT", "SUM", "N", "ACCOUT"]),
    const=st.integers(0, 50).map(str),
)
@settings(max_examples=30, deadline=None)
def test_attr_and_constant_feed_the_key(attr, const):
    """The key is injective over this two-knob family: two builds
    collide iff their knobs are equal."""
    a = grammar_key(make_grammar(attr=attr, const=const))
    b = grammar_key(make_grammar())
    if attr == "TOT" and const == "0":
        assert a == b
    else:
        assert a != b


STRATEGIES = [
    dict(first_direction=Direction.L2R),
    dict(subsumption=SubsumptionConfig(enabled=False)),
    dict(subsumption=SubsumptionConfig(grouping="per-attribute")),
    dict(dead_attribute_suppression=False),
    dict(check_circularity=False),
]


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: str(sorted(s)))
def test_pass_strategy_changes_key(strategy):
    ag = make_grammar()
    assert grammar_key(ag, **strategy) != grammar_key(ag)
    assert source_key("src", **strategy) != source_key("src")


# ---------------------------------------------------------------------------
# insensitivity: declaration-order noise collides
# ---------------------------------------------------------------------------


@given(
    sym_order=st.permutations(range(3)),
    fn_order=st.permutations(range(3)),
    attr_order=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_declaration_order_is_canonicalized_away(sym_order, fn_order, attr_order):
    """The same grammar re-serialized in any symbol / attribute /
    semantic-function declaration order has the same key."""
    shuffled = make_grammar(
        sym_order=tuple(sym_order),
        fn_order=tuple(fn_order),
        attr_order=attr_order,
    )
    assert grammar_key(shuffled) == BASE_KEY


def test_key_is_deterministic_across_builds():
    assert grammar_key(make_grammar()) == grammar_key(make_grammar())


# ---------------------------------------------------------------------------
# scanner keys
# ---------------------------------------------------------------------------


def _spec(pattern="[0-9]+", keyword="let"):
    from repro.regex.generator import ScannerSpec

    spec = ScannerSpec()
    spec.rule("NUM", pattern)
    spec.rule("WS", "[ \t\n]+", skip=True)
    spec.keyword(keyword)
    return spec


def test_scanner_key_sensitivity():
    base = scanner_key(_spec())
    assert scanner_key(_spec()) == base
    assert scanner_key(_spec(pattern="[0-9]*")) != base
    assert scanner_key(_spec(keyword="print")) != base


def test_scanner_rule_order_matters():
    """Earlier rules win ties, so rule order is semantic — it must
    feed the key."""
    from repro.regex.generator import ScannerSpec

    a = ScannerSpec().rule("A", "x").rule("B", "x|y")
    b = ScannerSpec().rule("B", "x|y").rule("A", "x")
    assert scanner_key(a) != scanner_key(b)


# ---------------------------------------------------------------------------
# a cache hit is invisible: warm artifacts == cold artifacts
# ---------------------------------------------------------------------------


def _warm_equals_cold(source: str, seed_source: str) -> None:
    import tempfile

    from repro.buildcache import BuildCache
    from repro.core import Linguist

    cold = Linguist(source)
    with tempfile.TemporaryDirectory() as root:
        Linguist(seed_source, cache=BuildCache(root))  # seeds the cache
        warm = Linguist(source, cache=BuildCache(root))
        assert warm.from_cache
    assert [a.text for a in warm.python_artifacts] == [
        a.text for a in cold.python_artifacts
    ]
    assert warm.assignment.n_passes == cold.assignment.n_passes
    assert warm.listing == cold.listing


@pytest.mark.parametrize("name", ["binary", "calc"])
def test_cache_hit_equals_cold_build(name):
    from repro.grammars import load_source

    source = load_source(name)
    _warm_equals_cold(source, source)


@given(pad=st.text(alphabet=" \t\n", min_size=1, max_size=8))
@settings(max_examples=10, deadline=None)
def test_model_key_hit_equals_cold_build(pad):
    """A differently formatted but equal grammar (source-alias miss,
    model-key hit) still rehydrates to exactly the cold build."""
    from repro.grammars import load_source

    seed_source = load_source("binary")
    _warm_equals_cold(seed_source + pad, seed_source)
