"""Unit tests for diagnostics, accounting, overlays, and small helpers."""

import pytest

from repro.errors import (
    Diagnostic,
    DiagnosticSink,
    NOWHERE,
    ReproError,
    SemanticError,
    Severity,
    SourceLocation,
)
from repro.util.iotrack import ChannelStats, IOAccountant, MemoryGauge
from repro.util.recursion import DEEP_LIMIT, deep_recursion


class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_location_rendering(self):
        loc = SourceLocation(3, 7, "g.ag")
        assert str(loc) == "g.ag:3:7"
        assert str(NOWHERE) == "<input>"

    def test_sink_counts_and_iteration(self):
        sink = DiagnosticSink()
        sink.note("n")
        sink.warning("w")
        sink.error("e1")
        sink.error("e2")
        assert len(sink) == 4
        assert sink.error_count == 2
        assert sink.has_errors
        kinds = [d.severity for d in sink]
        assert kinds == [Severity.NOTE, Severity.WARNING, Severity.ERROR,
                         Severity.ERROR]

    def test_sorted_by_location(self):
        sink = DiagnosticSink()
        sink.error("late", SourceLocation(9, 1))
        sink.error("early", SourceLocation(2, 5))
        msgs = [d.message for d in sink.sorted_by_location()]
        assert msgs == ["early", "late"]

    def test_raise_if_errors(self):
        sink = DiagnosticSink()
        sink.warning("just a warning")
        sink.raise_if_errors()  # no-op
        sink.error("boom", SourceLocation(4, 2, "f.ag"))
        with pytest.raises(SemanticError) as exc:
            sink.raise_if_errors()
        assert "boom" in str(exc.value)
        assert "f.ag:4:2" in str(exc.value)
        assert exc.value.diagnostics[0].message == "boom"

    def test_diagnostic_str(self):
        d = Diagnostic(Severity.WARNING, "careful", SourceLocation(1, 1))
        assert "warning: careful" in str(d)

    def test_custom_exception_type(self):
        from repro.errors import PassError

        sink = DiagnosticSink()
        sink.error("x")
        with pytest.raises(PassError):
            sink.raise_if_errors(PassError)


class TestIOAccounting:
    def test_totals(self):
        acct = IOAccountant()
        acct.charge_write(100, "a")
        acct.charge_write(50, "b")
        acct.charge_read(100, "a")
        assert acct.total_bytes == 250
        assert acct.total_records == 3
        assert acct.by_channel["a"].bytes_written == 100
        assert acct.by_channel["a"].bytes_read == 100
        assert acct.by_channel["b"].records_written == 1

    def test_snapshot(self):
        acct = IOAccountant()
        acct.charge_read(7)
        snap = acct.snapshot()
        assert snap["bytes_read"] == 7
        assert snap["records_read"] == 1

    def test_unchannelled_traffic(self):
        acct = IOAccountant()
        acct.charge_write(10)
        assert acct.bytes_written == 10
        assert acct.by_channel == {}

    def test_memory_gauge_peaks(self):
        g = MemoryGauge()
        g.acquire(100)
        g.acquire(50)
        assert g.current_bytes == 150
        assert g.peak_bytes == 150
        assert g.peak_nodes == 2
        g.release(50)
        g.acquire(20)
        assert g.peak_bytes == 150  # peak unchanged
        assert g.current_bytes == 120
        g.reset()
        assert g.peak_bytes == g.current_bytes == 0


class TestRecursionGuard:
    def test_raises_limit_temporarily(self):
        import sys

        before = sys.getrecursionlimit()
        with deep_recursion():
            assert sys.getrecursionlimit() >= DEEP_LIMIT
        assert sys.getrecursionlimit() == before

    def test_never_lowers_limit(self):
        import sys

        before = sys.getrecursionlimit()
        with deep_recursion(limit=10):
            assert sys.getrecursionlimit() == before


class TestOverlays:
    def test_clock_records_in_order(self):
        from repro.core.overlays import OverlayClock

        clock = OverlayClock()
        assert clock.run("first", lambda: 41) == 41
        assert clock.run("second", lambda: 42) == 42
        names = [n for n, _ in clock.timing.entries]
        assert names == ["first", "second"]
        assert clock.timing.total >= 0
        rendered = clock.timing.render()
        assert "first" in rendered and "TOTAL" in rendered


class TestDependencies:
    def test_has_cycle_detects(self):
        from repro.ag.dependencies import has_cycle

        acyclic = {(0, "a"): {(0, "b")}, (0, "b"): set()}
        assert has_cycle(acyclic) == []
        cyclic = {(0, "a"): {(0, "b")}, (0, "b"): {(0, "a")}}
        cycle = has_cycle(cyclic)
        assert cycle
        assert cycle[0] == cycle[-1]

    def test_transitive_closure(self):
        from repro.ag.dependencies import transitive_closure

        graph = {(0, "a"): {(0, "b")}, (0, "b"): {(0, "c")}, (0, "c"): set()}
        closure = transitive_closure(graph)
        assert (0, "c") in closure[(0, "a")]


class TestLALRConflictFormatting:
    def test_format_includes_state_items(self):
        from repro.lalr import Grammar, build_tables
        from repro.lalr.conflicts import format_conflicts
        from repro.lalr.lr0 import LR0Automaton

        g = Grammar("E", [("E", ["E", "PLUS", "E"], "Add"), ("E", ["ID"], "Var")])
        tables = build_tables(g, strict=False)
        auto = LR0Automaton(g)
        text = format_conflicts(tables, auto)
        assert "shift/reduce" in text
        assert "state" in text
        assert "·" in text  # the dotted item rendering


class TestBindingCache:
    def test_cache_invalidates_when_functions_added(self):
        """The validator appends implicit copies after explicit functions;
        the binding cache must not serve a stale list."""
        from repro.ag.copyrules import production_bindings
        from repro.ag.model import AttributeGrammar, AttrKind, SymbolKind
        from repro.ag.validate import RawFunction, validate_grammar
        from repro.ag.exprtext import parse_expression
        from repro.errors import DiagnosticSink

        ag = AttributeGrammar("t", "s")
        s = ag.add_symbol("s", SymbolKind.NONTERMINAL)
        s.add_attribute("V", AttrKind.SYNTHESIZED)
        u = ag.add_symbol("u", SymbolKind.NONTERMINAL)
        u.add_attribute("V", AttrKind.SYNTHESIZED)
        ag.add_symbol("T", SymbolKind.TERMINAL)
        p0 = ag.add_production("s", ["u"])
        p1 = ag.add_production("u", ["T"])
        assert production_bindings(p0) == []  # cached empty
        validate_grammar(ag, {
            p1.index: [RawFunction([("u", "V")], parse_expression("1"))],
        }, DiagnosticSink())
        # p0 got an implicit s.V = u.V; the cache must reflect it.
        assert len(production_bindings(p0)) == 1
