"""Attribute provenance: recording, querying, differentials, faults.

The headline guarantee (ISSUE 6's sixth differential axis): the
dependency-directed backward slice reconstructed from a *generated*-
evaluator recording equals the one from an *interpreter* recording —
same semantic-function instants, same values — on fused and unfused
pass plans alike.  Since slices are pure functions of the log, the
tests assert the stronger property (identical event streams) and then
spot-check slice equality through the query engine.
"""

import json
import os
import zlib

import pytest

from repro.core.linguist import Linguist
from repro.errors import ProvenanceCorruptionError, ProvenanceError
from repro.grammars import library_for, load_source
from repro.grammars.scanners import binary_scanner_spec, calc_scanner_spec
from repro.obs.provenance import (
    LOG_NAME,
    DebugSession,
    ProvenanceLog,
    canonical_value,
    parse_target,
    render_path,
    scan_provenance,
)
from repro.testing.faults import bit_flip, truncate_file
from repro.workloads import generate_calc_program

CALC_PROGRAM = generate_calc_program(3, seed=11)
BINARY_INPUT = "110.101"


def record_calc(directory, backend, fused=True):
    linguist = Linguist(load_source("calc"), fuse_passes=fused)
    translator = linguist.make_translator(
        calc_scanner_spec(), library=library_for("calc"), backend=backend
    )
    result = translator.translate(CALC_PROGRAM, record=str(directory))
    return result


def record_binary(directory, backend):
    linguist = Linguist(load_source("binary"))
    translator = linguist.make_translator(
        binary_scanner_spec(), library=library_for("binary"), backend=backend
    )
    return translator.translate(BINARY_INPUT, record=str(directory))


def read_lines(directory):
    with open(os.path.join(str(directory), LOG_NAME)) as f:
        return f.read().splitlines()


@pytest.fixture(scope="module")
def recordings(tmp_path_factory):
    """One recording per (workload, backend, plan shape), shared."""
    out = {}
    for key, maker in (
        ("calc-fused-generated", lambda d: record_calc(d, "generated", True)),
        ("calc-fused-interp", lambda d: record_calc(d, "interp", True)),
        ("calc-unfused-generated", lambda d: record_calc(d, "generated", False)),
        ("calc-unfused-interp", lambda d: record_calc(d, "interp", False)),
        ("binary-generated", lambda d: record_binary(d, "generated")),
        ("binary-interp", lambda d: record_binary(d, "interp")),
    ):
        directory = tmp_path_factory.mktemp(key)
        result = maker(directory)
        out[key] = (str(directory), result)
    return out


# ---------------------------------------------------------------------------
# the sixth differential axis
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "gen_key,int_key",
    [
        ("calc-fused-generated", "calc-fused-interp"),
        ("calc-unfused-generated", "calc-unfused-interp"),
        ("binary-generated", "binary-interp"),
    ],
)
def test_backends_record_identical_event_streams(recordings, gen_key, int_key):
    """Interpreter and generated evaluator emit byte-identical event
    lines (everything between the header and the seal)."""
    gen = read_lines(recordings[gen_key][0])
    intp = read_lines(recordings[int_key][0])
    assert len(gen) == len(intp)
    assert gen[1:-1] == intp[1:-1]
    # Headers agree on everything except the backend tag.
    gh, ih = json.loads(gen[0]), json.loads(intp[0])
    assert gh.pop("backend") == "generated"
    assert ih.pop("backend") == "interp"
    gh.pop("c"), ih.pop("c")
    assert gh == ih


@pytest.mark.parametrize(
    "gen_key,int_key,target",
    [
        ("calc-fused-generated", "calc-fused-interp", "root.OUT"),
        ("calc-unfused-generated", "calc-unfused-interp", "root.OUT"),
        ("binary-generated", "binary-interp", "root.VAL"),
    ],
)
def test_backward_slice_matches_across_backends(
    recordings, gen_key, int_key, target
):
    """`repro debug why` yields the same instants and values from either
    backend's recording (the acceptance criterion, asserted directly)."""
    path, attr = parse_target(target)
    with DebugSession(recordings[gen_key][0]) as gen_session, DebugSession(
        recordings[int_key][0]
    ) as int_session:
        gen_slice = gen_session.slice_instants(gen_session.why(path, attr))
        int_slice = int_session.slice_instants(int_session.why(path, attr))
        assert gen_slice == int_slice
        assert gen_session.render_why(target) == int_session.render_why(target)


def test_slice_root_value_matches_translation(recordings):
    directory, result = recordings["calc-fused-generated"]
    with DebugSession(directory) as session:
        node = session.why((), "OUT")
    assert node["value"] == canonical_value(result.root_attrs["OUT"])
    assert node["event"] is not None


def test_unfused_slice_crosses_passes(recordings):
    """On the unfused (2-pass) plan the slice of root.OUT includes
    instants from more than one pass — cross-pass resolution works."""
    with DebugSession(recordings["calc-unfused-generated"][0]) as session:
        instants = session.slice_instants(session.why((), "OUT", max_depth=40))
    passes = {
        session.log.events[seq]["p"]
        for seq, _path, _attr, _value, kind in instants
        if seq is not None
    }
    assert len(passes) > 1


# ---------------------------------------------------------------------------
# log integrity + structure
# ---------------------------------------------------------------------------


def test_log_opens_and_indexes(recordings):
    directory, _ = recordings["binary-generated"]
    log = ProvenanceLog.open(directory)
    assert log.header["format"] == "PROV1"
    assert log.header["grammar"] == "binary"
    assert log.n_passes == 2
    assert len(log.pass_marks) == 2
    assert log.defines  # at least one recorded instant
    # Every event line is CRC-clean and contiguously sequenced — open()
    # verified that; spot-check the seal covers the stream.
    lines = read_lines(directory)
    seal = json.loads(lines[-1])
    crc = 0
    for line in lines[:-1]:
        crc = zlib.crc32((line + "\n").encode(), crc)
    assert seal["crc"] == crc
    assert seal["n"] == len(lines) - 2


def test_missing_log_is_a_typed_error(tmp_path):
    with pytest.raises(ProvenanceError, match="no sealed provenance log"):
        ProvenanceLog.open(str(tmp_path))


def test_bit_flip_names_the_damaged_record(recordings, tmp_path):
    directory, _ = recordings["calc-fused-generated"]
    src = os.path.join(directory, LOG_NAME)
    dst = tmp_path / LOG_NAME
    dst.write_bytes(open(src, "rb").read())
    # Flip a bit in the middle of the file: some record's CRC must fail.
    size = os.path.getsize(dst)
    bit_flip(str(dst), size // 2, bit=3)
    with pytest.raises(ProvenanceCorruptionError) as info:
        ProvenanceLog.open(str(tmp_path))
    assert info.value.record_index is not None
    assert info.value.reason in ("checksum", "framing")
    assert f"record {info.value.record_index}" == info.value.locus()
    report = scan_provenance(str(dst))
    assert not report.ok
    assert report.n_valid <= info.value.record_index


def test_truncation_is_detected(recordings, tmp_path):
    directory, _ = recordings["calc-fused-generated"]
    src = os.path.join(directory, LOG_NAME)
    dst = tmp_path / LOG_NAME
    dst.write_bytes(open(src, "rb").read())
    truncate_file(str(dst), 40)  # tears the seal line
    with pytest.raises(ProvenanceCorruptionError) as info:
        ProvenanceLog.open(str(tmp_path))
    assert info.value.reason in ("seal", "framing", "checksum", "truncated")


def test_fsck_scans_and_salvages_provenance_logs(recordings, tmp_path):
    from repro.cli import main

    directory, _ = recordings["calc-fused-generated"]
    src = os.path.join(directory, LOG_NAME)
    assert main(["fsck", src]) == 0

    dst = tmp_path / LOG_NAME
    dst.write_bytes(open(src, "rb").read())
    bit_flip(str(dst), os.path.getsize(dst) // 2, bit=1)
    assert main(["fsck", str(dst)]) == 1
    out = tmp_path / "salvaged.ndjson"
    assert main(["fsck", str(dst), "--salvage", str(out)]) == 2
    # The salvaged prefix is a clean, sealed log again.
    salvaged = ProvenanceLog.open(str(out))
    assert salvaged.header["format"] == "PROV1"
    full = ProvenanceLog.open(src)
    assert 0 < len(salvaged.events) < len(full.events)
    assert salvaged.events == full.events[: len(salvaged.events)]


def test_crash_leaves_only_an_unsealed_tmp(tmp_path):
    """An aborted run must not publish a sealed (but incomplete) log."""
    from repro.obs.provenance import ProvenanceRecorder

    linguist = Linguist(load_source("calc"))
    rec = ProvenanceRecorder(
        str(tmp_path), "calc", "generated", linguist.ag.start,
        linguist.ag.productions,
    )
    rec.begin_run("prefix", ["left-to-right"])
    rec.begin_pass(1, "left-to-right")
    rec.abort()
    assert not os.path.exists(os.path.join(str(tmp_path), LOG_NAME))
    assert os.path.exists(os.path.join(str(tmp_path), LOG_NAME + ".tmp"))
    with pytest.raises(ProvenanceError, match="unsealed"):
        ProvenanceLog.open(str(tmp_path))


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


def test_history_reads_sealed_spools(recordings):
    """History on the bottom-up binary workload: the initial row comes
    from a reconstruction walk of initial.spool, the pass rows from
    random access into the sealed pass spools."""
    directory, result = recordings["binary-generated"]
    with DebugSession(directory) as session:
        rows = session.history((), "VAL")
    assert [r["stage"] for r in rows] == ["initial", "pass 1", "pass 2"]
    assert rows[0]["status"] == "absent"
    final = rows[-1]
    assert final["value"] == canonical_value(result.root_attrs["VAL"])
    assert final["address"] is not None


def test_history_distinguishes_not_yet_defined_from_dropped(recordings):
    directory, _ = recordings["binary-generated"]
    with DebugSession(directory) as session:
        # An attribute whose *final* define is in pass 2: its pass-1 row
        # must say "not yet defined", never "dropped".
        ev = next(
            e
            for e in session.log.events
            if e.get("e") == "def"
            and e["p"] == 2
            and session.log.define_of(tuple(e["n"]), e["a"]) is e
        )
        rows = session.history(tuple(ev["n"]), ev["a"])
    by_stage = {r["stage"]: r for r in rows}
    assert by_stage["pass 1"]["status"] in ("not yet defined", "no sealed record")
    assert by_stage["pass 2"]["value"] == ev["v"] or by_stage["pass 2"][
        "status"
    ].startswith("dropped")


def test_step_forward_and_backward(recordings):
    directory, _ = recordings["calc-fused-generated"]
    with DebugSession(directory) as session:
        n = len(session.log.events)
        fwd = session.step(at=0, count=5)
        assert [e["i"] for e in fwd] == [0, 1, 2, 3, 4]
        back = session.step(at=n - 1, count=5, backward=True)
        assert [e["i"] for e in back] == list(range(n - 5, n))
        with pytest.raises(ProvenanceError, match="out of range"):
            session.step(at=n)
        rendered = session.render_step(at=0, count=3)
        assert rendered.splitlines()[1].startswith(">> #0")


def test_summary_totals_are_consistent(recordings):
    directory, _ = recordings["calc-fused-generated"]
    with DebugSession(directory) as session:
        s = session.summary()
    assert s["n_events"] == s["n_defines"] + s["n_puts"] + len(
        session.log.pass_marks
    )
    assert s["n_subsumed"] <= s["n_defines"]
    assert sum(v["defines"] for v in s["per_pass"].values()) == s["n_defines"]


def test_parse_and_render_targets():
    assert parse_target("root.OUT") == ((), "OUT")
    assert parse_target("OUT") == ((), "OUT")
    assert parse_target("root.2.1.VAL") == ((2, 1), "VAL")
    assert parse_target("root.1.limb.CODE") == ((1, -1), "CODE")
    assert render_path((1, -1)) == "root.1.limb"
    assert render_path(()) == "root"
    with pytest.raises(ProvenanceError):
        parse_target("root.0.VAL")
    with pytest.raises(ProvenanceError):
        parse_target("root.x.y.VAL")


# ---------------------------------------------------------------------------
# recording modes: resume, checkpoint coupling, CLI
# ---------------------------------------------------------------------------


def test_record_conflicting_checkpoint_dir_rejected(tmp_path):
    from repro.errors import EvaluationError

    linguist = Linguist(load_source("calc"))
    translator = linguist.make_translator(
        calc_scanner_spec(), library=library_for("calc")
    )
    with pytest.raises(EvaluationError, match="record= implies checkpointing"):
        translator.translate(
            CALC_PROGRAM,
            record=str(tmp_path / "a"),
            checkpoint_dir=str(tmp_path / "b"),
        )


def test_resume_all_complete_seals_empty_log(tmp_path):
    """Resuming a fully checkpointed evaluation still seals a log (with
    resumed_from set and zero events); queries degrade gracefully to
    'intrinsic/unrecorded' rather than erroring."""
    directory = str(tmp_path / "rec")
    linguist = Linguist(load_source("binary"))
    translator = linguist.make_translator(
        binary_scanner_spec(), library=library_for("binary")
    )
    first = translator.translate(BINARY_INPUT, record=directory)
    resumed = translator.translate(BINARY_INPUT, record=directory, resume=True)
    assert dict(resumed.root_attrs) == dict(first.root_attrs)
    log = ProvenanceLog.open(directory)
    assert log.header["resumed_from"] == 2
    assert log.events == []
    with DebugSession(directory) as session:
        node = session.why((), "VAL")
        rendered = session.render_why("root.VAL")
    assert node["event"] is None  # nothing was re-recorded
    assert "intrinsic" in rendered


def test_partial_resume_records_remaining_passes(tmp_path):
    """A recording resumed after pass 1 records only pass 2, marks
    resumed_from=1, and still answers why-queries for attributes the
    resumed passes defined (earlier inputs become unrecorded leaves
    that keep their values from the define event)."""
    directory = str(tmp_path / "rec")
    linguist = Linguist(load_source("binary"))
    translator = linguist.make_translator(
        binary_scanner_spec(), library=library_for("binary")
    )
    first = translator.translate(BINARY_INPUT, record=directory)
    # Rewind the checkpoint to "pass 1 done, pass 2 lost" — the state a
    # crash between pass 2 and seal leaves behind.
    manifest_path = os.path.join(directory, "checkpoint.json")
    with open(manifest_path) as f:
        manifest = json.load(f)
    assert len(manifest["completed"]) == 2
    manifest["completed"] = manifest["completed"][:1]
    with open(manifest_path, "w") as f:
        json.dump(manifest, f)
    os.remove(os.path.join(directory, "pass2.spool"))
    os.remove(os.path.join(directory, LOG_NAME))

    resumed = translator.translate(BINARY_INPUT, record=directory, resume=True)
    assert dict(resumed.root_attrs) == dict(first.root_attrs)
    log = ProvenanceLog.open(directory)
    assert log.header["resumed_from"] == 1
    assert {e["p"] for e in log.events} == {2}
    with DebugSession(directory) as session:
        node = session.why((), "VAL")
        assert node["event"] is not None
        assert node["value"] == canonical_value(first.root_attrs["VAL"])
        # Inputs computed during the (unrecorded) pass 1 surface as
        # leaves but still carry the values the define event captured.
        leaves = [
            row
            for row in session.slice_instants(node)
            if row[4] == "leaf"
        ]
        assert leaves
        assert all(value is not None for _s, _p, _a, value, _k in leaves)


def test_debug_queries_on_resumed_fused_run(tmp_path, capsys):
    """``repro debug why|history`` must answer on a recording produced
    by ``--resume`` over a *fused* plan.  Calc fuses to a single pass,
    so a resume either replays nothing (all complete) or everything
    (rewound to zero) — both ends need graceful answers."""
    from repro.cli import main

    directory = str(tmp_path / "rec")
    linguist = Linguist(load_source("calc"))
    assert linguist.n_passes == 1, "calc no longer fuses to one pass"
    translator = linguist.make_translator(
        calc_scanner_spec(), library=library_for("calc")
    )
    first = translator.translate(CALC_PROGRAM, record=directory)

    # Resume with everything checkpointed: the re-sealed log is empty;
    # why/history degrade to intrinsic/unrecorded, never error.
    resumed = translator.translate(CALC_PROGRAM, record=directory, resume=True)
    assert dict(resumed.root_attrs) == dict(first.root_attrs)
    assert ProvenanceLog.open(directory).header["resumed_from"] == 1
    assert main(["debug", "why", directory, "root.OUT"]) == 0
    assert "intrinsic" in capsys.readouterr().out
    assert main(["debug", "history", directory, "root.OUT"]) == 0
    assert "history root.OUT" in capsys.readouterr().out

    # Rewind the checkpoint to "nothing completed" — the state a crash
    # mid-pass leaves behind — and resume: the single fused pass re-runs
    # and re-records, so why/history answer in full.
    manifest_path = os.path.join(directory, "checkpoint.json")
    with open(manifest_path) as f:
        manifest = json.load(f)
    manifest["completed"] = []
    with open(manifest_path, "w") as f:
        json.dump(manifest, f)
    os.remove(os.path.join(directory, "pass1.spool"))
    os.remove(os.path.join(directory, LOG_NAME))
    resumed = translator.translate(CALC_PROGRAM, record=directory, resume=True)
    assert dict(resumed.root_attrs) == dict(first.root_attrs)
    log = ProvenanceLog.open(directory)
    assert log.header["resumed_from"] == 0
    assert {e["p"] for e in log.events if "p" in e} == {1}
    assert main(["debug", "why", directory, "root.OUT"]) == 0
    out = capsys.readouterr().out
    assert "why root.OUT" in out
    assert "compute in pass 1" in out  # the root's instant was re-recorded
    assert main(["debug", "history", directory, "root.OUT"]) == 0
    assert "history root.OUT" in capsys.readouterr().out


def test_cli_debug_queries(recordings, capsys):
    from repro.cli import main

    directory, _ = recordings["calc-fused-generated"]
    assert main(["debug", "why", directory, "root.OUT"]) == 0
    assert "why root.OUT" in capsys.readouterr().out
    assert main(["debug", "history", directory, "root.1.OUT"]) == 0
    assert "history root.1.OUT" in capsys.readouterr().out
    assert main(["debug", "step", directory, "--count", "3"]) == 0
    assert ">> #0" in capsys.readouterr().out
    assert main(["debug", "summary", directory, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "provenance summary" in out
    assert "debug.queries_summary" in out


def test_cli_debug_on_damaged_log_exits_with_typed_error(
    recordings, tmp_path, capsys
):
    from repro.cli import main

    src = os.path.join(recordings["calc-fused-generated"][0], LOG_NAME)
    dst = tmp_path / LOG_NAME
    dst.write_bytes(open(src, "rb").read())
    bit_flip(str(dst), os.path.getsize(dst) // 2, bit=0)
    assert main(["debug", "why", str(tmp_path), "root.OUT"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "record" in err


def test_disabled_mode_emits_no_artifacts(tmp_path):
    """Without record=, translation leaves no provenance machinery
    behind (the recorder must be pay-for-use)."""
    linguist = Linguist(load_source("calc"))
    translator = linguist.make_translator(
        calc_scanner_spec(), library=library_for("calc")
    )
    translator.translate(CALC_PROGRAM)
    assert translator._recording_eval is None
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# random access into sealed spools
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("format_version", [2, 3])
def test_random_access_reader_matches_forward_read(tmp_path, format_version):
    from repro.apt.storage import DiskSpool, RandomAccessReader

    path = str(tmp_path / "t.spool")
    spool = DiskSpool(path, format_version=format_version, block_size=256)
    records = [
        ("sym%d" % i, i % 5, {"A": i, "B": "x" * (i % 17)}, False)
        for i in range(120)
    ]
    for record in records:
        spool.append(record)
    spool.finalize()
    attached = DiskSpool.open(path)
    expected = list(attached.read_forward())
    with RandomAccessReader(DiskSpool.open(path)) as reader:
        assert reader.n_records == len(records)
        # Random-order access, repeated hits, block-boundary neighbors.
        order = [0, 119, 57, 58, 1, 119, 0, 60, 59]
        for i in order:
            assert reader.record(i) == expected[i]
        for i in range(len(records)):
            assert reader.record(i) == expected[i]
        addr = reader.address(4, 117)
        assert addr.pass_k == 4
        assert addr.render() == f"4:{addr.block}:{addr.record}"
        if format_version == 3:
            assert addr.block > 0  # 256-byte blocks force many blocks
        else:
            assert addr.block == 0 and addr.record == 117
        with pytest.raises(Exception):
            reader.record(len(records))


def test_record_address_roundtrip():
    from repro.apt.codec import RecordAddress, parse_address

    addr = RecordAddress(2, 7, 31)
    assert parse_address(addr.render()) == addr
    with pytest.raises(ValueError):
        parse_address("1:2")
    with pytest.raises(ValueError):
        parse_address("a:b:c")


# ---------------------------------------------------------------------------
# golden: the worked `repro debug why` example
# ---------------------------------------------------------------------------

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "calc_debug_why.golden")


def test_debug_why_matches_golden(recordings, update_golden):
    """Pins the full `repro debug why root.OUT` rendering on the fixed
    seeded calc workload — the worked example in docs/debugging.md."""
    with DebugSession(recordings["calc-fused-generated"][0]) as session:
        rendered = session.render_why("root.OUT", max_depth=8) + "\n"
    if update_golden:
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w", encoding="utf-8") as f:
            f.write(rendered)
        pytest.skip(f"golden file rewritten: {GOLDEN}")
    assert os.path.exists(GOLDEN), (
        f"missing golden file {GOLDEN}; generate it with "
        "`pytest tests/test_provenance.py --update-golden`"
    )
    with open(GOLDEN, "r", encoding="utf-8") as f:
        expected = f.read()
    assert rendered == expected, (
        "`repro debug why` output changed; if intentional, regenerate "
        "with --update-golden and commit the diff"
    )
