"""Every shipped example must run end-to-end and print its key results."""

import importlib.util
import os

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, capsys):
    path = os.path.join(EXAMPLES, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "value of       101.01  =  5.25" in out
        assert "alternating passes" in out
        assert "procedure" in out  # the generated Pascal excerpt

    def test_desk_calculator(self, capsys):
        out = run_example("desk_calculator", capsys)
        assert "printed values: [42, 130, 96]" in out
        assert "get" in out and "put" in out  # the paradigm trace

    def test_pascal_compiler(self, capsys):
        out = run_example("pascal_compiler", capsys)
        assert "hand compiler agree: True" in out
        assert "undeclared variable" in out
        assert "type mismatch in assignment" in out

    def test_assembler(self, capsys):
        out = run_example("assembler", capsys)
        assert "3 alternating pass" in out
        assert "resolved correctly" in out

    def test_self_generation(self, capsys):
        out = run_example("self_generation", capsys)
        assert "MISMATCH" not in out
        assert "symbol sets equal: True" in out
        assert "agreement: True" in out
