"""Shared sample attribute grammars used across the test suite."""

from repro.ag import GrammarBuilder


def synthesized_only():
    """Pure bottom-up counting: evaluable in one pass, either direction."""
    b = GrammarBuilder("synth_only", start="root")
    b.nonterminal("root", synthesized={"N": "int"})
    b.nonterminal("tree", synthesized={"N": "int"})
    b.terminal("LEAF")
    b.terminal("LPAR")
    b.terminal("RPAR")
    b.production("root", ["tree"])
    b.production("tree", ["LPAR", "tree", "tree", "RPAR"], functions=[
        ("tree0.N", "tree1.N + tree2.N"),
    ])
    b.production("tree", ["LEAF"], functions=[("tree.N", "1")])
    return b.finish()


def left_flow():
    """Inherited flows to the right sibling from the left sibling's
    synthesized value: one L-to-R pass, but two passes starting R-to-L."""
    b = GrammarBuilder("left_flow", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    b.nonterminal("item", inherited={"ACC": "int"}, synthesized={"TOT": "int"})
    b.terminal("X", intrinsic={"W": "int"})
    b.production("root", ["item", "item"], functions=[
        ("item0.ACC", "0"),
        ("item1.ACC", "item0.TOT"),
        ("root.OUT", "item1.TOT"),
    ])
    b.production("item", ["X"], functions=[("item.TOT", "item.ACC + X.W")])
    return b.finish()


def right_flow():
    """Mirror image: information flows right-to-left."""
    b = GrammarBuilder("right_flow", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    b.nonterminal("item", inherited={"ACC": "int"}, synthesized={"TOT": "int"})
    b.terminal("X", intrinsic={"W": "int"})
    b.production("root", ["item", "item"], functions=[
        ("item1.ACC", "0"),
        ("item0.ACC", "item1.TOT"),
        ("root.OUT", "item0.TOT"),
    ])
    b.production("item", ["X"], functions=[("item.TOT", "item.ACC + X.W")])
    return b.finish()


def knuth_binary():
    """Knuth's binary-number grammar (with a fraction part): the fraction
    SCALE needs the fraction's own LEN, so two alternating passes."""
    b = GrammarBuilder("knuth_binary", start="number")
    b.nonterminal("number", synthesized={"VAL": "real"})
    b.nonterminal(
        "bits",
        inherited={"SCALE": "int"},
        synthesized={"VAL": "real", "LEN": "int"},
    )
    b.nonterminal("bit", inherited={"SCALE": "int"}, synthesized={"VAL": "real"})
    b.terminal("ZERO")
    b.terminal("ONE")
    b.terminal("DOT")
    b.production("number", ["bits", "DOT", "bits"], functions=[
        ("bits0.SCALE", "0"),
        ("bits1.SCALE", "0 - bits1.LEN"),
        ("number.VAL", "bits0.VAL + bits1.VAL"),
    ])
    b.production("bits", ["bits", "bit"], functions=[
        ("bit.SCALE", "bits0.SCALE"),
        ("bits1.SCALE", "bits0.SCALE + 1"),
        ("bits0.VAL", "bits1.VAL + bit.VAL"),
        ("bits0.LEN", "bits1.LEN + 1"),
    ])
    b.production("bits", ["bit"], functions=[
        # bit.SCALE = bits.SCALE comes in as an implicit copy-rule.
        ("bits.VAL", "bit.VAL"),
        ("bits.LEN", "1"),
    ])
    b.production("bit", ["ZERO"], functions=[("bit.VAL", "0")])
    b.production("bit", ["ONE"], functions=[("bit.VAL", "Pow2(bit.SCALE)")])
    return b.finish()


def zigzag_unbounded():
    """Cross flows over the same attributes in both directions: the pass
    number needed grows with tree depth, so NOT alternating-pass evaluable."""
    b = GrammarBuilder("zigzag", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    b.nonterminal("X", inherited={"I": "int"}, synthesized={"S": "int"})
    b.terminal("A", intrinsic={"W": "int"})
    b.production("root", ["X"], functions=[
        ("X.I", "0"),
        ("root.OUT", "X.S"),
    ])
    # Left-to-right flow production...
    b.production("X", ["X", "X", "A"], functions=[
        ("X1.I", "X0.I"),
        ("X2.I", "X1.S"),
        ("X0.S", "X2.S"),
    ])
    # ...and a right-to-left flow production over the same attributes.
    b.production("X", ["A", "X", "X"], functions=[
        ("X2.I", "X0.I"),
        ("X1.I", "X2.S"),
        ("X0.S", "X1.S"),
    ])
    b.production("X", ["A"], functions=[("X.S", "X.I + A.W")])
    return b.finish()


def context_heavy():
    """Nested blocks with an environment copied down unchanged and output
    copied up — the copy-chain shape static subsumption exists for."""
    b = GrammarBuilder("context_heavy", start="root")
    b.nonterminal("root", synthesized={"OUT": "list"})
    b.nonterminal("block", inherited={"ENV": "pf"}, synthesized={"OUT": "list"})
    b.nonterminal("stmt$list", inherited={"ENV": "pf"}, synthesized={"OUT": "list"})
    b.nonterminal("stmt", inherited={"ENV": "pf"}, synthesized={"OUT": "list"})
    b.terminal("BEGIN")
    b.terminal("END")
    b.terminal("SEMI")
    b.terminal("PRINT")
    b.terminal("NAME", intrinsic={"TEXT": "string"})
    b.production("root", ["block"], functions=[
        ("block.ENV", "consPF('x', 1, consPF('y', 2, empty$pf()))"),
    ])  # root.OUT = block.OUT is implicit
    b.production("block", ["BEGIN", "stmt$list", "END"])  # both copies implicit
    b.production("stmt$list", ["stmt$list", "SEMI", "stmt"], functions=[
        ("stmt$list0.OUT", "append(stmt$list1.OUT, stmt.OUT)"),
    ])  # ENV copies implicit
    b.production("stmt$list", ["stmt"])  # ENV and OUT copies implicit
    b.production("stmt", ["PRINT", "NAME"], functions=[
        ("stmt.OUT", "cons(EvalPF(stmt.ENV, NAME.TEXT), empty$list())"),
    ])
    b.production("stmt", ["BEGIN", "stmt$list", "END"])  # nested block; implicit
    return b.finish()


def with_limb():
    """A production using a limb attribute as a common subexpression."""
    b = GrammarBuilder("with_limb", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    b.nonterminal("pair", synthesized={"BIG": "int", "SMALL": "int"})
    b.terminal("N", intrinsic={"V": "int"})
    b.limb("PairLimb", local={"DIFF": "int"})
    b.production("root", ["pair"], functions=[
        ("root.OUT", "pair.BIG - pair.SMALL"),
    ])
    b.production("pair", ["N", "N"], limb="PairLimb", functions=[
        ("DIFF", "N0.V - N1.V"),
        (["pair.BIG", "pair.SMALL"],
         "if DIFF > 0 then N0.V, N1.V else N1.V, N0.V endif"),
    ])
    return b.finish()


def env_fanout():
    """A wide context-distribution grammar: ENV is set once at the root
    and copied down three fanout levels (nine copy sites) — the shape
    where static subsumption pays most clearly."""
    b = GrammarBuilder("env_fanout", start="root")
    b.nonterminal("root", synthesized={"OUT": "int"})
    for nt in ("a", "b", "c", "d"):
        b.nonterminal(nt, inherited={"ENV": "pf"}, synthesized={"OUT": "int"})
    b.terminal("T", intrinsic={"KEY": "string"})
    b.production("root", ["a"], functions=[
        ("a.ENV", "consPF('x', 1, consPF('y', 2, empty$pf()))"),
    ])
    b.production("a", ["b", "b", "b"], functions=[
        ("a.OUT", "b0.OUT + b1.OUT + b2.OUT"),
    ])
    b.production("b", ["c", "c", "c"], functions=[
        ("b.OUT", "c0.OUT + c1.OUT + c2.OUT"),
    ])
    b.production("c", ["d", "d", "d"], functions=[
        ("c.OUT", "d0.OUT + d1.OUT + d2.OUT"),
    ])
    b.production("d", ["T"], functions=[
        ("d.OUT", "EvalPF(d.ENV, T.KEY)"),
    ])
    return b.finish()
