"""The assembler example as a test: forward references across 3 passes."""

import importlib.util
import os

import pytest

from repro.passes.partition import assign_passes
from repro.passes.schedule import Direction


def _load_example():
    path = os.path.join(
        os.path.dirname(__file__), "..", "examples", "assembler.py"
    )
    spec = importlib.util.spec_from_file_location("assembler_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def asm():
    return _load_example()


@pytest.fixture(scope="module")
def assembled(asm):
    """A reusable assemble() helper built from the example's pieces."""
    from repro.apt.build import APTBuilder, default_intrinsics
    from repro.apt.storage import MemorySpool
    from repro.evalgen.codegen_py import GeneratedEvaluator
    from repro.evalgen.deadness import analyze_deadness
    from repro.evalgen.driver import AlternatingPassDriver
    from repro.evalgen.plan import build_pass_plans
    from repro.evalgen.runtime import FunctionLibrary
    from repro.evalgen.subsumption import SubsumptionConfig, choose_static_attributes
    from repro.lalr.parser import LALRParser
    from repro.lalr.tables import build_tables

    ag = asm.build_grammar()
    assignment = assign_passes(ag, Direction.R2L)
    deadness = analyze_deadness(ag, assignment)
    allocation = choose_static_attributes(ag, assignment, SubsumptionConfig())
    plans = build_pass_plans(ag, assignment, deadness, allocation)
    generated = GeneratedEvaluator(ag, plans)
    scanner = asm.scanner_spec().generate()
    parser = LALRParser(build_tables(ag.underlying_cfg()))

    def intrinsics(token, symbol, attr):
        value = default_intrinsics(token, symbol, attr)
        if symbol == "LABEL" and attr == "TEXT":
            return value.rstrip(":")
        return value

    def assemble(source: str):
        spool = MemorySpool(channel="initial")
        builder = APTBuilder(ag, spool, intrinsic_fn=intrinsics)
        parser.parse(scanner.tokens(source), listener=builder, build_tree=False)
        builder.finish()
        driver = AlternatingPassDriver(
            ag, plans, generated.executor, library=FunctionLibrary()
        )
        return driver.run(spool, strategy="bottom-up")

    return ag, assignment, assemble


class TestAssembler:
    def test_three_alternating_passes(self, assembled):
        _, assignment, _ = assembled
        assert assignment.n_passes == 3
        assert assignment.pass_of("line$list", "LBLS") == 2
        assert assignment.pass_of("instr", "ENV") == 3

    def test_forward_and_backward_references(self, assembled):
        _, _, assemble = assembled
        result = assemble(asm_source := (
            "start: add 1\n jmp end\n add 2\n jmp start\nend: halt\n"
        ))
        code = list(result["CODE"])
        assert code == [
            ("ADD", 1), ("JMP", 4), ("ADD", 2), ("JMP", 0), ("HALT", 0),
        ]
        assert result["N"] == 5

    def test_single_instruction(self, assembled):
        _, _, assemble = assembled
        result = assemble("halt")
        assert list(result["CODE"]) == [("HALT", 0)]

    def test_chained_labels(self, assembled):
        _, _, assemble = assembled
        result = assemble("a: jmp b\nb: jmp c\nc: halt\n")
        assert list(result["CODE"]) == [("JMP", 1), ("JMP", 2), ("HALT", 0)]

    def test_example_main_runs(self, asm, capsys):
        asm.main()
        out = capsys.readouterr().out
        assert "resolved correctly" in out


class TestShippedAsmGrammar:
    """asm.ag (frontend path) must agree with the builder-made grammar."""

    def test_frontend_and_builder_grammars_agree(self, asm):
        from repro.ag import compute_statistics
        from repro.frontend import load_grammar
        from repro.grammars import load_source

        via_frontend = load_grammar(load_source("asm"))
        via_builder = asm.build_grammar()
        a = compute_statistics(via_frontend)
        b = compute_statistics(via_builder)
        assert a.n_productions == b.n_productions
        assert a.n_semantic_functions == b.n_semantic_functions
        assert a.n_copy_rules == b.n_copy_rules
        # Same phrase structure, same pass structure.
        fa = assign_passes(via_frontend, Direction.R2L)
        fb = assign_passes(via_builder, Direction.R2L)
        assert fa.n_passes == fb.n_passes == 3
        assert fa.attr_pass == fb.attr_pass

    def test_shipped_asm_translates(self):
        from repro.apt.build import default_intrinsics
        from repro.core import Linguist
        from repro.grammars import load_source
        from repro.grammars.scanners import asm_scanner_spec

        def intrinsics(token, symbol, attr):
            v = default_intrinsics(token, symbol, attr)
            if symbol == "LABEL" and attr == "TEXT":
                return v.rstrip(":")
            return v

        lg = Linguist(load_source("asm"))
        t = lg.make_translator(asm_scanner_spec(), intrinsic_fn=intrinsics)
        r = t.translate("a: add 7\n jmp a\n halt")
        assert list(r["CODE"]) == [("ADD", 7), ("JMP", 0), ("HALT", 0)]
