"""Golden-file tests pinning the generated evaluator source.

The Python code generator's exact output is part of this repo's
contract: the build cache persists generated pass-module *text* and
exec-compiles it on rehydration, so silent churn in the emitted code
would invalidate caches (and, worse, could change semantics without any
unit test noticing).  These tests pin the full generated text — every
pass module, plus the size accounting — for two sample grammars that
together exercise the interesting emission shapes:

* ``knuth_binary`` — two alternating passes, an inherited attribute
  computed from a later-pass synthesized one, implicit copy-rules;
* ``context_heavy`` — the copy-chain shape where static subsumption
  fires: SNAPSHOT/SETGLOBAL/ENTRY_SAVE/EXIT_RESTORE actions and
  subsumed-copy-rule comments.

Updating intentionally::

    PYTHONPATH=src python -m pytest tests/test_golden_codegen.py --update-golden

then inspect ``git diff tests/golden/`` and commit the new goldens with
the generator change (see docs/performance.md).
"""

import os

import pytest

from repro.evalgen.codegen_py import PythonCodeGenerator
from tests import sample_grammars
from tests.evalharness import Pipeline

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

GRAMMARS = {
    "knuth_binary": sample_grammars.knuth_binary,
    "context_heavy": sample_grammars.context_heavy,
}


def render_generated(name: str) -> str:
    """All generated pass modules for one sample grammar, concatenated
    deterministically with their size accounting."""
    pipeline = Pipeline(GRAMMARS[name]())
    artifacts = PythonCodeGenerator(pipeline.ag).generate_all(pipeline.plans)
    chunks = []
    for artifact in artifacts:
        chunks.append(
            f"# ==== pass {artifact.pass_k}: "
            f"husk={artifact.husk_bytes}B sem={artifact.sem_bytes}B "
            f"subsumed={artifact.n_subsumed} ====\n"
        )
        chunks.append(artifact.text)
    return "".join(chunks)


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.codegen.py.golden")


@pytest.mark.parametrize("name", sorted(GRAMMARS))
def test_codegen_matches_golden(name, update_golden):
    generated = render_generated(name)
    path = golden_path(name)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(generated)
        pytest.skip(f"golden file rewritten: {path}")
    assert os.path.exists(path), (
        f"missing golden file {path}; generate it with "
        "`pytest tests/test_golden_codegen.py --update-golden`"
    )
    with open(path, "r", encoding="utf-8") as f:
        expected = f.read()
    assert generated == expected, (
        f"generated code for {name!r} differs from {path}; if the "
        "change is intentional, regenerate with --update-golden and "
        "commit the diff (note: this invalidates build caches — bump "
        "repro.buildcache.key.CACHE_FORMAT_VERSION)"
    )


def test_generation_is_deterministic():
    """Two in-process generations are byte-identical (a precondition
    for golden files and for content-addressed caching)."""
    for name in GRAMMARS:
        assert render_generated(name) == render_generated(name)
