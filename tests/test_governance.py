"""Resource governance and crash-recovery sweeping.

Covers the ``repro.governance`` admission layer (disk budgets, cache
eviction, free-space watermarks), the ``repro doctor`` sweeper over
every durable format, and the filesystem chaos matrix: a seeded
:class:`~repro.testing.faults.FilesystemFaultPlan` interrupts each
writer at arbitrary points and the invariant is checked that a fault
either completes atomically or leaves only a doctor-classifiable
non-terminal artifact — never a torn sealed file.
"""

import json
import os
import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.apt.storage import AdaptiveSpool, DiskSpool, scan_spool
from repro.buildcache import BuildCache
from repro.doctor import (
    ArtifactFormat,
    ArtifactState,
    run_doctor,
    sniff_format,
)
from repro.errors import DiskBudgetExceeded
from repro.governance import (
    FAKE_DISK_FREE_ENV,
    DiskBudget,
    DiskWatermark,
    evict_cache,
)
from repro.obs import MetricsRegistry
from repro.obs.provenance import ProvenanceRecorder
from repro.serve.journal import RequestJournal, scan_journal
from repro.testing import FilesystemFaultPlan, FsFaultMode

# ---------------------------------------------------------------------------
# DiskBudget
# ---------------------------------------------------------------------------


class TestDiskBudget:
    def test_charges_until_limit_then_raises_typed(self):
        budget = DiskBudget(100, label="t8")
        budget.charge(60)
        budget.charge(40)
        with pytest.raises(DiskBudgetExceeded) as exc:
            budget.charge(1)
        err = exc.value
        assert err.budget == 100 and err.charged == 100 and err.attempted == 1
        assert "t8" in str(err)
        assert budget.charged == 100  # the rejected charge never landed

    def test_release_returns_capacity(self):
        budget = DiskBudget(100)
        budget.charge(100)
        budget.release(30)
        budget.charge(30)
        assert budget.charged == 100
        assert budget.peak == 100

    def test_nonpositive_limit_is_unlimited(self):
        budget = DiskBudget(0)
        budget.charge(1 << 40)
        assert budget.charged == 1 << 40

    def test_metrics(self):
        metrics = MetricsRegistry()
        budget = DiskBudget(10, metrics=metrics)
        budget.charge(10)
        with pytest.raises(DiskBudgetExceeded):
            budget.charge(5)
        snap = metrics.snapshot()
        assert snap["governance.disk_budget_rejections"] == 1

    def test_adaptive_spool_spill_is_charged_and_released(self):
        budget = DiskBudget(1 << 20)
        spool = AdaptiveSpool(memory_budget=0, disk_budget=budget)
        for i in range(50):
            spool.append(("Sym", i, {"VAL": i}, False))
        assert spool.spilled
        assert budget.charged > 0
        spool.finalize()
        spool.close()
        assert budget.charged == 0

    def test_adaptive_spool_over_budget_fails_before_bytes_land(self):
        budget = DiskBudget(16)  # far below any spill
        spool = AdaptiveSpool(memory_budget=0, disk_budget=budget)
        with pytest.raises(DiskBudgetExceeded):
            for i in range(50):
                spool.append(("Sym", i, {"VAL": i}, False))
        spool.close()
        assert budget.charged == 0


# ---------------------------------------------------------------------------
# cache eviction
# ---------------------------------------------------------------------------


def _key(ch: str) -> str:
    return ch * 64


class TestEvictCache:
    def test_lru_eviction_order(self, tmp_path):
        cache = BuildCache(str(tmp_path / "cache"))
        for i, ch in enumerate("abc"):
            path = cache.store("grammar", _key(ch), {"i": i})
            os.utime(path, (1000 + i, 1000 + i))  # a oldest, c newest
        sizes = {e.key[0]: e.file_bytes for e in cache.entries()}
        total = sum(sizes.values())
        kept, evicted = evict_cache(cache, total - 1)
        assert [e.key[0] for e in evicted] == ["a"]
        assert kept == total - sizes["a"]
        assert sorted(e.key[0] for e in cache.entries()) == ["b", "c"]

    def test_load_hit_refreshes_the_clock(self, tmp_path):
        cache = BuildCache(str(tmp_path / "cache"))
        for i, ch in enumerate("ab"):
            path = cache.store("grammar", _key(ch), {"i": i})
            os.utime(path, (1000 + i, 1000 + i))
        assert cache.load("grammar", _key("a")) is not None  # touch a
        _, evicted = evict_cache(cache, 1)  # keep nothing sizeable
        # b (stale) goes before a (just used).
        assert [e.key[0] for e in evicted][0] == "b"

    def test_under_cap_is_a_no_op(self, tmp_path):
        cache = BuildCache(str(tmp_path / "cache"))
        cache.store("grammar", _key("a"), {"i": 0})
        kept, evicted = evict_cache(cache, 1 << 30)
        assert evicted == [] and kept > 0

    def test_cache_gc_cli(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "cache")
        cache = BuildCache(root)
        for i, ch in enumerate("ab"):
            path = cache.store("grammar", _key(ch), {"i": i})
            os.utime(path, (1000 + i, 1000 + i))
        assert main(
            ["cache", "gc", "--max-bytes", "1", "--cache-dir", root]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 2" in out
        assert cache.entries() == []


# ---------------------------------------------------------------------------
# watermarks
# ---------------------------------------------------------------------------


class TestDiskWatermark:
    def test_hysteresis(self, tmp_path, monkeypatch):
        metrics = MetricsRegistry()
        wm = DiskWatermark(
            path=str(tmp_path), low_bytes=100, high_bytes=200,
            metrics=metrics,
        )
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "500")
        assert wm.check() is False
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "50")
        assert wm.check() is True  # tripped below low
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "150")
        assert wm.check() is True  # inside the band: still degraded
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "250")
        assert wm.check() is False  # recovered above high
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "150")
        assert wm.check() is False  # inside the band: still healthy
        assert wm.trips == 1 and wm.recoveries == 1
        snap = metrics.snapshot()
        assert snap["governance.watermark_trips"] == 1
        assert snap["governance.watermark_recoveries"] == 1
        assert snap["governance.disk_free_bytes"] == 150

    def test_high_below_low_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskWatermark(path=str(tmp_path), low_bytes=200, high_bytes=100)

    def test_real_probe_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAKE_DISK_FREE_ENV, raising=False)
        wm = DiskWatermark(path=str(tmp_path), low_bytes=1, high_bytes=1)
        assert wm.free_bytes() > 0

    def test_fake_env_file_indirection(self, tmp_path, monkeypatch):
        # The chaos-disk CI driver flips the fake free space of a child
        # daemon by rewriting a file the probe re-reads each check.
        knob = tmp_path / "free.txt"
        knob.write_text("500\n")
        monkeypatch.setenv(FAKE_DISK_FREE_ENV, "@" + str(knob))
        wm = DiskWatermark(path=str(tmp_path), low_bytes=100, high_bytes=200)
        assert wm.free_bytes() == 500
        assert wm.check() is False
        knob.write_text("50")
        assert wm.check() is True
        knob.write_text("300")
        assert wm.check() is False
        assert (wm.trips, wm.recoveries) == (1, 1)
        # An unreadable or garbage knob falls back to the real probe.
        knob.write_text("not-a-number")
        assert wm.free_bytes() > 0
        knob.unlink()
        assert wm.free_bytes() > 0


# ---------------------------------------------------------------------------
# the doctor
# ---------------------------------------------------------------------------


def make_sealed_spool(path, n=5):
    spool = DiskSpool(str(path))
    for i in range(n):
        spool.append(("Sym", i, {"VAL": i}, False))
    spool.finalize()
    return spool


def corrupt_file(path, offset=-10):
    with open(path, "r+b") as f:
        f.seek(offset, os.SEEK_END if offset < 0 else os.SEEK_SET)
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))


class TestDoctor:
    def test_classifies_every_format(self, tmp_path):
        d = str(tmp_path)
        make_sealed_spool(tmp_path / "good.spool")
        shutil.copy(
            str(tmp_path / "good.spool"), str(tmp_path / "bad.spool")
        )
        corrupt_file(str(tmp_path / "bad.spool"), offset=20)
        cache = BuildCache(os.path.join(d, "cache"))
        cache.store("grammar", _key("a"), {"v": 1})
        with open(os.path.join(d, "debris.spool.tmp"), "wb") as f:
            f.write(b"APTSPL3\nhalf-written")
        with open(os.path.join(d, "notes.txt"), "w") as f:
            f.write("not ours\n")
        journal = RequestJournal(os.path.join(d, "jdir"))
        journal.admitted(1, "g", "in")
        journal.completed(1, "g", "out", 0.01)
        journal.seal()
        report = run_doctor([d])
        states = {
            os.path.basename(a.path): a.state for a in report.artifacts
        }
        assert states["good.spool"] == ArtifactState.SEALED
        assert states["bad.spool"] == ArtifactState.CORRUPT
        assert states["debris.spool.tmp"] == ArtifactState.UNSEALED_TMP
        assert states["notes.txt"] == ArtifactState.FOREIGN
        assert states["requests.ndjson"] == ArtifactState.SEALED
        assert not report.clean

    def test_unsealed_journal_is_an_expected_artifact(self, tmp_path):
        journal = RequestJournal(str(tmp_path))
        journal.admitted(1, "g", "in")
        journal._f.flush()
        journal._f.close()
        journal._f = None  # simulated kill: no seal
        report = run_doctor([str(tmp_path)])
        (art,) = report.artifacts
        assert art.state == ArtifactState.UNSEALED
        assert report.clean  # a crash artifact is not a problem

    def test_repair_salvages_and_deletes(self, tmp_path):
        d = str(tmp_path)
        make_sealed_spool(tmp_path / "bad.spool", n=50)
        corrupt_file(str(tmp_path / "bad.spool"), offset=-10)
        cache = BuildCache(os.path.join(d, "cache"))
        cache.store("grammar", _key("a"), {"v": 1})
        corrupt_file(cache.entries()[0].path, offset=-3)
        with open(os.path.join(d, "leak.tmp"), "wb") as f:
            f.write(b"garbage")
        report = run_doctor([d], repair=True)
        assert report.lossy
        resweep = run_doctor([d])
        assert resweep.clean
        assert not os.path.exists(os.path.join(d, "leak.tmp"))
        # The corrupt spool was salvaged in place to its valid prefix.
        assert scan_spool(str(tmp_path / "bad.spool")).ok
        # The corrupt cache entry is a rebuildable miss: deleted.
        assert cache.entries() == []

    def test_repair_tmp_debris_consumed_by_sibling_salvage(self, tmp_path):
        # In-place salvage of a corrupt provenance log stages through
        # the final path + ".tmp" — the exact name of any crash debris
        # sitting beside it.  The debris repair must still record its
        # action (the file is gone either way), not report a phantom
        # remaining problem.
        d = str(tmp_path)
        write_provenance(d)
        final = os.path.join(d, "provenance.ndjson")
        # Damage the seal, not the header: salvage must still be
        # possible so the in-place rewrite stages through the tmp path.
        corrupt_file(final, offset=-10)
        with open(final + ".tmp", "wb") as f:
            f.write(b"half-written")
        report = run_doctor([d], repair=True)
        assert report.lossy
        actions = {a.path: a.action for a in report.artifacts}
        assert actions[final] == "salvaged-with-loss"
        assert actions[final + ".tmp"] == "deleted"
        assert not report.problems
        assert not os.path.exists(final + ".tmp")
        assert run_doctor([d]).clean

    def test_manifest_truncated_at_first_damaged_pass(self, tmp_path):
        d = str(tmp_path)
        entries = []
        for k in range(3):
            spool = make_sealed_spool(tmp_path / f"pass{k}.spool", n=4)
            entries.append(
                {
                    "pass": k,
                    "direction": "r2l",
                    "spool": f"pass{k}.spool",
                    "n_records": 4,
                    "data_bytes": spool.data_bytes,
                    "stream_crc": spool._stream_crc,
                }
            )
        doc = {
            "version": 1, "grammar": "g", "strategy": "alt",
            "n_passes": 3, "directions": ["r2l", "l2r", "r2l"],
            "completed": entries,
        }
        with open(os.path.join(d, "checkpoint.json"), "w") as f:
            json.dump(doc, f)
        # Damage pass1's record data (not just its footer) so salvage
        # genuinely loses records and the manifest entry stops matching.
        corrupt_file(os.path.join(d, "pass1.spool"), offset=20)
        report = run_doctor([d], repair=True)
        assert report.lossy
        with open(os.path.join(d, "checkpoint.json")) as f:
            repaired = json.load(f)
        assert [e["pass"] for e in repaired["completed"]] == [0]
        # Spools past the truncation point are gone; pass0 survives.
        assert os.path.exists(os.path.join(d, "pass0.spool"))
        assert not os.path.exists(os.path.join(d, "pass1.spool"))
        assert not os.path.exists(os.path.join(d, "pass2.spool"))
        assert run_doctor([d]).clean

    def test_orphaned_pass_spool_detected(self, tmp_path):
        d = str(tmp_path)
        make_sealed_spool(tmp_path / "pass0.spool", n=2)
        make_sealed_spool(tmp_path / "pass1.spool", n=2)
        doc = {
            "version": 1, "grammar": "g", "strategy": "alt",
            "n_passes": 2, "directions": ["r2l", "l2r"],
            "completed": [
                {
                    "pass": 0, "direction": "r2l", "spool": "pass0.spool",
                    "n_records": 2, "data_bytes": 0, "stream_crc": 0,
                }
            ],
        }
        with open(os.path.join(d, "checkpoint.json"), "w") as f:
            json.dump(doc, f)
        report = run_doctor([d])
        states = {
            os.path.basename(a.path): a.state for a in report.artifacts
        }
        assert states["pass1.spool"] == ArtifactState.ORPHANED
        run_doctor([d], repair=True)
        assert not os.path.exists(os.path.join(d, "pass1.spool"))

    def test_doctor_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path)
        assert main(["doctor", d]) == 0  # empty directory: clean
        with open(os.path.join(d, "leak.tmp"), "wb") as f:
            f.write(b"x")
        assert main(["doctor", d]) == 1
        assert main(["doctor", d, "--quiet"]) == 1
        assert capsys.readouterr().out.count("leak.tmp") == 1  # quiet worked
        assert main(["doctor", d, "--repair"]) == 2  # repaired with loss
        assert main(["doctor", d]) == 0
        assert main(["doctor", str(tmp_path / "missing")]) == 1

    def test_fsck_quiet_flag(self, tmp_path, capsys):
        from repro.cli import main

        spool = make_sealed_spool(tmp_path / "ok.spool")
        assert main(["fsck", spool.path, "--quiet"]) == 0
        corrupt_file(spool.path, offset=-10)
        assert main(["fsck", spool.path, "--quiet"]) == 1
        out_path = str(tmp_path / "rescued.spool")
        assert main(
            ["fsck", spool.path, "--salvage", out_path, "--quiet"]
        ) == 2
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


# ---------------------------------------------------------------------------
# filesystem chaos: the fault matrix
# ---------------------------------------------------------------------------


def write_spool(d):
    make_sealed_spool(os.path.join(d, "out.spool"), n=30)


def write_cache_entry(d):
    BuildCache(os.path.join(d, "cache")).store(
        "grammar", _key("f"), {"blob": "x" * 512}
    )


def write_provenance(d):
    rec = ProvenanceRecorder(d, "g", "generated", "S", productions=[])
    rec.begin_run("alternating", ["r2l", "l2r"])
    for k in range(2):
        rec.begin_pass(k, "r2l")
    rec.seal()


def write_journal(d):
    journal = RequestJournal(os.path.join(d, "jdir"))
    for i in range(5):
        journal.admitted(i, "g", f"in{i}")
        journal.completed(i, "g", f"out{i}", 0.01)
    journal.seal()


def write_manifest(d):
    from types import SimpleNamespace

    from repro.evalgen.driver import CheckpointManager

    mgr = CheckpointManager(d)
    plan = SimpleNamespace(
        pass_k=0, direction=SimpleNamespace(value="r2l")
    )
    mgr._header = {
        "version": 1, "grammar": "g", "strategy": "alt",
        "n_passes": 1, "directions": ["r2l"],
    }
    spool = make_sealed_spool(os.path.join(d, "pass0.spool"), n=3)
    mgr.record_pass(plan, spool)


WRITERS = [
    write_spool,
    write_cache_entry,
    write_provenance,
    write_journal,
    write_manifest,
]


class TestFilesystemFaultMatrix:
    """Seeded chaos against every durable writer: after any injected
    fault, no torn sealed artifact exists, the doctor classifies every
    leftover, and a repair pass converges the tree to clean."""

    @pytest.mark.parametrize("writer", WRITERS, ids=lambda w: w.__name__)
    @pytest.mark.parametrize("seed", range(12))
    def test_fault_never_tears_a_sealed_artifact(
        self, tmp_path, writer, seed
    ):
        d = str(tmp_path)
        plan = FilesystemFaultPlan.random(seed * 31 + 7, max_bytes=1024)
        completed = False
        with plan.install():
            try:
                writer(d)
                completed = True
            except OSError:
                pass
        report = run_doctor([d])
        for art in report.artifacts:
            # Classifiable: every artifact lands in the taxonomy.
            assert art.state in (
                ArtifactState.SEALED,
                ArtifactState.UNSEALED,
                ArtifactState.UNSEALED_TMP,
                ArtifactState.CORRUPT,
                ArtifactState.ORPHANED,
                ArtifactState.FOREIGN,
            )
            # THE invariant: a fault never tears a *sealed* name.  A
            # file at its final (non-tmp) path in one of our binary
            # sealed formats must verify clean — torn content may only
            # ever live under a .tmp name.  (NDJSON journals append at
            # their final path by design and tolerate torn tails;
            # manifests are atomically replaced JSON.)
            if not art.path.endswith(".tmp") and art.format in (
                ArtifactFormat.SPOOL_V3,
                ArtifactFormat.SPOOL_V2,
                ArtifactFormat.CACHE_ENTRY,
                ArtifactFormat.PROVENANCE,
            ):
                assert art.state == ArtifactState.SEALED, (
                    f"seed {seed}: torn sealed artifact {art.render()} "
                    f"(plan {plan!r}, completed={completed})"
                )
        run_doctor([d], repair=True)
        after = run_doctor([d])
        assert after.clean, f"seed {seed}: not clean after repair"
        leaked = [
            p
            for p in _walk_files(d)
            if p.endswith(".tmp")
        ]
        assert leaked == [], f"seed {seed}: leaked tmp files {leaked}"

    def test_completed_writer_without_fault_is_sealed(self, tmp_path):
        for writer in WRITERS:
            sub = os.path.join(str(tmp_path), writer.__name__)
            os.makedirs(sub)
            writer(sub)
        report = run_doctor([str(tmp_path)])
        assert report.clean
        assert all(
            a.state == ArtifactState.SEALED for a in report.artifacts
        ), report.render()


def _walk_files(d):
    for root, _dirs, files in os.walk(d):
        for name in files:
            yield os.path.join(root, name)


# ---------------------------------------------------------------------------
# ENOSPC at every byte offset: the sealed-neighbor property
# ---------------------------------------------------------------------------


class TestEnospcProperty:
    @settings(max_examples=60, deadline=None)
    @given(at_byte=st.integers(min_value=0, max_value=2000))
    def test_enospc_never_corrupts_sealed_neighbors(self, tmp_path_factory, at_byte):
        """ENOSPC at *any* byte offset while sealing a v3 spool leaves
        the previously sealed spool in the same directory bit-perfect
        and only doctor-classifiable debris behind."""
        d = str(tmp_path_factory.mktemp("enospc"))
        sealed = make_sealed_spool(os.path.join(d, "sealed.spool"), n=10)
        before = scan_spool(sealed.path)
        assert before.ok
        plan = FilesystemFaultPlan(
            seed=at_byte,
            mode=FsFaultMode.ENOSPC_AT_BYTE,
            at_byte=at_byte,
            path_substring="victim",
        )
        with plan.install():
            try:
                make_sealed_spool(os.path.join(d, "victim.spool"), n=40)
            except OSError:
                pass
        after = scan_spool(sealed.path)
        assert after.ok and after.n_valid == before.n_valid
        report = run_doctor([d])
        for art in report.artifacts:
            if os.path.basename(art.path).startswith("victim"):
                # Either fully sealed (fault hit after the rename, or
                # budget was never crossed) or tmp debris — never a
                # torn file under the sealed name.
                assert art.state in (
                    ArtifactState.SEALED, ArtifactState.UNSEALED_TMP
                ), art.render()
        run_doctor([d], repair=True)
        assert run_doctor([d]).clean


# ---------------------------------------------------------------------------
# journal suspension / gap protocol
# ---------------------------------------------------------------------------


class TestJournalGapProtocol:
    def test_suspend_drop_resume_round_trip(self, tmp_path):
        journal = RequestJournal(str(tmp_path))
        journal.admitted(1, "g", "a")
        journal.completed(1, "g", "out", 0.01)
        journal.suspend()
        assert journal.suspended
        journal.admitted(2, "g", "b")  # dropped, counted
        journal.completed(2, "g", "out", 0.01)  # dropped, counted
        assert journal.lost_records == 2
        assert journal.resume()
        assert not journal.suspended
        journal.admitted(3, "g", "c")
        journal.completed(3, "g", "out", 0.01)
        journal.seal()
        report = scan_journal(journal.path)
        assert report.ok and report.sealed
        assert report.gaps == 1
        assert report.lost_records == 2

    def test_gap_journal_salvages_clean(self, tmp_path):
        from repro.serve.journal import replay_journal, salvage_journal

        journal = RequestJournal(str(tmp_path))
        journal.admitted(1, "g", "a")
        journal.suspend()
        journal.completed(1, "g", "out", 0.01)  # lost to the gap
        journal.resume()
        journal.admitted(2, "g", "b")
        journal.completed(2, "g", "out", 0.01)
        journal.seal()
        state = replay_journal(journal.path)
        assert 2 in state.completed
        assert 1 in state.in_flight  # its completion fell in the gap
        out = str(tmp_path / "salvaged.ndjson")
        salvage_journal(journal.path, out)
        assert scan_journal(out).ok
