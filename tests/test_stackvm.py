"""Tests for the stack machine, including end-to-end compile-and-run."""

import pytest

from repro.errors import EvaluationError
from repro.stackvm import StackMachine, execute
from repro.workloads import generate_pascal_program


class TestStackMachine:
    def test_arithmetic(self):
        r = execute(["LOADC 6", "LOADC 7", "MUL", "WRITE", "HALT"])
        assert r.output == [42]

    def test_store_and_load(self):
        r = execute(["LOADC 5", "STORE x", "LOAD x", "LOAD x", "ADD", "WRITE"])
        assert r.output == [10]
        assert r.memory["x"] == 5

    def test_uninitialized_reads_zero(self):
        r = execute(["LOAD ghost", "WRITE"])
        assert r.output == [0]

    @pytest.mark.parametrize("op,a,b,expect", [
        ("ADD", 2, 3, 5), ("SUB", 2, 3, -1), ("MUL", 4, 3, 12),
        ("DIV", 7, 2, 3), ("DIV", -7, 2, -3),
        ("CMPEQ", 2, 2, 1), ("CMPNE", 2, 2, 0),
        ("CMPLT", 1, 2, 1), ("CMPGT", 1, 2, 0),
        ("CMPLE", 2, 2, 1), ("CMPGE", 1, 2, 0),
        ("AND", 1, 0, 0), ("OR", 1, 0, 1),
    ])
    def test_binops(self, op, a, b, expect):
        r = execute([f"LOADC {a}", f"LOADC {b}", op, "WRITE"])
        assert r.output == [expect]

    def test_notop(self):
        assert execute(["LOADC 0", "NOTOP", "WRITE"]).output == [1]
        assert execute(["LOADC 3", "NOTOP", "WRITE"]).output == [0]

    def test_jumps_and_labels(self):
        code = [
            "LOADC 0", "STORE i",
            "L1:",
            "LOAD i", "LOADC 3", "CMPLT",
            "JMPF L2",
            "LOAD i", "WRITE",
            "LOAD i", "LOADC 1", "ADD", "STORE i",
            "JMP L1",
            "L2:",
            "HALT",
        ]
        assert execute(code).output == [0, 1, 2]

    def test_halt_stops_early(self):
        r = execute(["LOADC 1", "WRITE", "HALT", "LOADC 2", "WRITE"])
        assert r.output == [1]

    def test_fuel_exhaustion(self):
        with pytest.raises(EvaluationError) as exc:
            execute(["L1:", "JMP L1"], fuel=100)
        assert "fuel" in str(exc.value)

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            execute(["LOADC 1", "LOADC 0", "DIV"])

    def test_stack_underflow(self):
        with pytest.raises(EvaluationError):
            execute(["ADD"])

    def test_undefined_label(self):
        with pytest.raises(EvaluationError):
            execute(["JMP L9"])

    def test_duplicate_label_rejected(self):
        with pytest.raises(EvaluationError):
            StackMachine(["L1:", "L1:"])

    def test_unknown_instruction(self):
        with pytest.raises(EvaluationError):
            execute(["FROB"])


class TestCompileAndRun:
    """End to end: Pascal source -> (AG front end | hand compiler) ->
    stack code -> execution, with identical observable behavior."""

    @pytest.fixture(scope="class")
    def translator(self):
        from repro.core import Linguist
        from repro.grammars import library_for, load_source
        from repro.grammars.scanners import pascal_scanner_spec

        lg = Linguist(load_source("pascal"))
        return lg.make_translator(
            pascal_scanner_spec(), library=library_for("pascal")
        )

    def run_both(self, translator, source):
        from repro.baseline import HandPascalCompiler

        ag_code = list(translator.translate(source)["CODE"])
        hand_code = HandPascalCompiler().compile(source).code
        return execute(ag_code).output, execute(hand_code).output

    def test_sum_of_squares(self, translator):
        source = """
program p;
var i, total : integer; run : boolean;
begin
  i := 5; total := 0; run := true;
  while run do
  begin
    total := total + i * i;
    i := i - 1;
    run := i > 0
  end;
  writeln(total)
end.
"""
        ag_out, hand_out = self.run_both(translator, source)
        assert ag_out == hand_out == [55]  # 25+16+9+4+1

    def test_branching(self, translator):
        source = """
program p;
var a : integer;
begin
  a := 7;
  if a > 10 then writeln(1) else writeln(2);
  if (a > 3) and (a < 10) then writeln(3) else writeln(4)
end.
"""
        ag_out, hand_out = self.run_both(translator, source)
        assert ag_out == hand_out == [2, 3]

    def test_div_semantics(self, translator):
        source = """
program p;
var a : integer;
begin
  a := 17;
  writeln(a div 5)
end.
"""
        ag_out, hand_out = self.run_both(translator, source)
        assert ag_out == hand_out == [3]

    @pytest.mark.parametrize("seed", [2, 11, 47])
    def test_generated_workloads_execute_identically(self, translator, seed):
        source = generate_pascal_program(n_statements=25, seed=seed)
        ag_out, hand_out = self.run_both(translator, source)
        assert ag_out == hand_out


class TestLoopConstructs:
    """repeat/until and for loops, across both compilers and the VM."""

    @pytest.fixture(scope="class")
    def translator(self):
        from repro.core import Linguist
        from repro.grammars import library_for, load_source
        from repro.grammars.scanners import pascal_scanner_spec

        lg = Linguist(load_source("pascal"))
        return lg.make_translator(
            pascal_scanner_spec(), library=library_for("pascal")
        )

    def run_both(self, translator, source):
        from repro.baseline import HandPascalCompiler

        ag_code = list(translator.translate(source)["CODE"])
        hand_code = HandPascalCompiler().compile(source).code
        assert ag_code == hand_code
        return execute(ag_code).output

    def test_for_loop_sum(self, translator):
        out = self.run_both(translator, """
program p; var i, s : integer;
begin s := 0; for i := 1 to 10 do s := s + i; writeln(s) end.
""")
        assert out == [55]

    def test_for_loop_empty_range(self, translator):
        out = self.run_both(translator, """
program p; var i : integer;
begin for i := 5 to 1 do writeln(i); writeln(99) end.
""")
        assert out == [99]

    def test_repeat_executes_at_least_once(self, translator):
        out = self.run_both(translator, """
program p; var x : integer;
begin x := 100; repeat writeln(x); x := x - 1 until x < 99 end.
""")
        assert out == [100, 99]

    def test_nested_for_and_repeat(self, translator):
        out = self.run_both(translator, """
program p; var i, j, n : integer;
begin
  n := 0;
  for i := 1 to 3 do
    for j := 1 to i do
      n := n + 1;
  writeln(n)
end.
""")
        assert out == [6]

    def test_for_type_errors(self, translator):
        r = translator.translate("""
program p; var f : boolean;
begin for f := 1 to 3 do writeln(1); for g := 1 to true do writeln(2) end.
""")
        msgs = sorted(m[1] for m in r["MSGS"])
        assert "integer loop variable required" in msgs
        assert "undeclared variable" in msgs
        assert "integer bounds required" in msgs

    def test_repeat_condition_type_error(self, translator):
        r = translator.translate("""
program p; var x : integer;
begin repeat x := 1 until x + 1 end.
""")
        assert [m[1] for m in r["MSGS"]] == ["boolean condition required"]

    def test_generated_workloads_with_loops(self, translator):
        from repro.workloads import generate_pascal_program

        for seed in (3, 13, 29):
            source = generate_pascal_program(n_statements=30, seed=seed)
            out = self.run_both(translator, out_source := source)
            assert isinstance(out, list)
