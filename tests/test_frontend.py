"""Unit tests for the .ag input-language frontend (S15)."""

import pytest

from repro.ag.expr import AttrRef, Call, Const, If
from repro.ag.model import AttrKind, SymbolKind
from repro.errors import ParseError, ScanError, SemanticError
from repro.frontend import (
    input_language_grammar,
    load_grammar,
    make_scanner,
    parse_ag_text,
    render_listing,
)
from repro.frontend.analyze import strip_occurrence_suffix
from repro.lalr.tables import build_tables

MINIMAL = """
grammar tiny : s .
symbols
  nonterminal s ;
  terminal T ;
attributes
  s : synthesized V int ;
productions
s = T .
  s.V = 1 ;
end
"""


class TestLexer:
    def test_tokens_of_header(self):
        sc = make_scanner()
        kinds = [t.kind for t in sc.scan("grammar x : y .")]
        assert kinds == ["GRAMMAR", "IDENT", "COLON", "IDENT", "DOT", "$eof"]

    def test_dollar_identifiers(self):
        sc = make_scanner()
        toks = sc.scan("function$list0")
        assert toks[0].kind == "IDENT"
        assert toks[0].text == "function$list0"

    def test_comments_skipped(self):
        sc = make_scanner()
        kinds = [t.kind for t in sc.scan("x # pass 2 comment\ny")]
        assert kinds == ["IDENT", "IDENT", "$eof"]

    def test_arrow_vs_minus(self):
        sc = make_scanner()
        kinds = [t.kind for t in sc.scan("a -> b - c")]
        assert kinds == ["IDENT", "ARROW", "IDENT", "MINUS", "IDENT", "$eof"]

    def test_string_with_escaped_quote(self):
        sc = make_scanner()
        toks = sc.scan("'it''s'")
        assert toks[0].kind == "STRING"
        assert toks[0].text == "'it''s'"

    def test_keywords_case_sensitive(self):
        sc = make_scanner()
        assert sc.scan("if")[0].kind == "IF"
        assert sc.scan("IF")[0].kind == "IDENT"

    def test_relational_operators(self):
        sc = make_scanner()
        kinds = [t.kind for t in sc.scan("<> <= >= < > =")][:-1]
        assert kinds == ["NE", "LE", "GE", "LT", "GT", "EQ"]


class TestInputLanguageGrammar:
    def test_is_lalr1(self):
        tables = build_tables(input_language_grammar())
        assert not tables.conflicts

    def test_parse_minimal(self):
        f = parse_ag_text(MINIMAL)
        assert f.name == "tiny"
        assert f.start == "s"
        assert len(f.prods) == 1
        assert f.prods[0].funcs[0].targets == [("s", "V")]

    def test_production_with_limb(self):
        src = MINIMAL.replace("s = T .", "s = T -> SLimb .").replace(
            "terminal T ;", "terminal T ;\n  limb SLimb ;"
        )
        f = parse_ag_text(src)
        assert f.prods[0].limb == "SLimb"

    def test_empty_rhs_production(self):
        src = """
grammar g : s .
symbols
  nonterminal s, t ;
  terminal A ;
attributes
  s : synthesized V int ;
  t : synthesized W int ;
productions
s = t A .
  s.V = t.W ;
t = .
  t.W = 0 ;
end
"""
        f = parse_ag_text(src)
        assert f.prods[1].rhs == []

    def test_multi_target_function(self):
        src = """
grammar g : s .
symbols
  nonterminal s ;
  terminal T ;
attributes
  s : synthesized A int, synthesized B int ;
productions
s = T .
  s.A, s.B = if 1 = 1 then 1, 2 else 3, 4 endif ;
end
"""
        f = parse_ag_text(src)
        func = f.prods[0].funcs[0]
        assert len(func.targets) == 2
        assert isinstance(func.expr, If)
        assert func.expr.arity() == 2

    def test_bare_limb_target(self):
        src = """
grammar g : s .
symbols
  nonterminal s ;
  terminal T ;
  limb L ;
attributes
  s : synthesized V int ;
  L : local TMP int ;
productions
s = T -> L .
  TMP = 2 ,
  s.V = TMP * TMP ;
end
"""
        f = parse_ag_text(src)
        assert f.prods[0].funcs[0].targets == [("", "TMP")]

    def test_elsif_chain(self):
        src = MINIMAL.replace(
            "s.V = 1 ;",
            "s.V = if 1 = 2 then 1 elsif 1 = 3 then 2 else 3 endif ;",
        )
        f = parse_ag_text(src)
        expr = f.prods[0].funcs[0].expr
        assert isinstance(expr, If)
        assert isinstance(expr.else_branch, If)

    def test_expression_priorities(self):
        src = MINIMAL.replace("s.V = 1 ;", "s.V = 1 + 2 * 3 ;")
        f = parse_ag_text(src)
        expr = f.prods[0].funcs[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_call_and_string_args(self):
        src = MINIMAL.replace("s.V = 1 ;", "s.V = f('hello', g(), 2) ;")
        f = parse_ag_text(src)
        expr = f.prods[0].funcs[0].expr
        assert isinstance(expr, Call)
        assert expr.args[0] == Const("hello")
        assert expr.args[1] == Call("g", ())

    def test_branch_arity_mismatch_rejected(self):
        src = MINIMAL.replace(
            "s.V = 1 ;", "s.V = if 1 = 1 then 1, 2 else 3 endif ;"
        )
        with pytest.raises(ParseError):
            parse_ag_text(src)

    def test_syntax_error_position(self):
        with pytest.raises(ParseError) as exc:
            parse_ag_text("grammar x y .")
        assert "COLON" in str(exc.value)

    def test_source_lines_counted(self):
        f = parse_ag_text(MINIMAL)
        assert f.source_lines == MINIMAL.count("\n")


class TestAnalyze:
    def test_minimal_grammar(self):
        ag = load_grammar(MINIMAL)
        assert ag.name == "tiny"
        assert ag.symbol("s").kind is SymbolKind.NONTERMINAL
        assert ag.symbol("T").kind is SymbolKind.TERMINAL

    def test_occurrence_suffix_resolution(self):
        assert strip_occurrence_suffix("bits1", {"bits": 1}) == "bits"
        assert strip_occurrence_suffix("bits", {"bits": 1}) == "bits"
        # exact match wins over stripping
        assert strip_occurrence_suffix("x2", {"x2": 1, "x": 1}) == "x2"

    def test_undeclared_symbol_in_production(self):
        src = MINIMAL.replace("s = T .", "s = T U .")
        with pytest.raises(SemanticError) as exc:
            load_grammar(src)
        assert "U" in str(exc.value)

    def test_wrong_occurrence_numbering_rejected(self):
        src = """
grammar g : s .
symbols
  nonterminal s ;
  terminal T ;
attributes
  s : synthesized V int ;
productions
s0 = s2 T .
  s0.V = s2.V + 1 ;
s = T .
  s.V = 0 ;
end
"""
        with pytest.raises(SemanticError) as exc:
            load_grammar(src)
        assert "numbering" in str(exc.value)

    def test_attributes_for_unknown_symbol(self):
        src = MINIMAL.replace("s : synthesized V int ;",
                              "s : synthesized V int ;\n  zz : synthesized Q int ;")
        with pytest.raises(SemanticError) as exc:
            load_grammar(src)
        assert "zz" in str(exc.value)

    def test_attr_kind_mapping(self):
        src = """
grammar g : s .
symbols
  nonterminal s, u ;
  terminal T ;
  limb L ;
attributes
  s : synthesized V int ;
  u : inherited I int, synthesized O int ;
  T : intrinsic X int ;
  L : local W int ;
productions
s = u -> L .
  u.I = 1 , W = 2 , s.V = u.O + W ;
u = T .
  u.O = u.I + T.X ;
end
"""
        ag = load_grammar(src)
        assert ag.symbol("u").attributes["I"].kind is AttrKind.INHERITED
        assert ag.symbol("T").attributes["X"].kind is AttrKind.INTRINSIC
        assert ag.symbol("L").attributes["W"].kind is AttrKind.LOCAL

    def test_duplicate_symbol_rejected(self):
        src = MINIMAL.replace("nonterminal s ;", "nonterminal s, s ;")
        with pytest.raises(SemanticError):
            load_grammar(src)

    def test_implicit_copy_inserted_from_source(self):
        src = """
grammar g : r .
symbols
  nonterminal r, l ;
  terminal X ;
attributes
  r : synthesized N int ;
  l : inherited D int, synthesized N int ;
productions
r = l .
  l.D = 1 ;
l0 = l1 X .
  ;
l = X .
  l.N = l.D ;
end
"""
        ag = load_grammar(src)
        rec = ag.productions[1]
        implicit = [f for f in rec.functions if f.implicit]
        assert len(implicit) == 2  # l1.D = l0.D and l0.N = l1.N


class TestListing:
    def test_listing_contains_source_and_stats(self):
        from repro.errors import DiagnosticSink
        from repro.passes import assign_passes, Direction

        sink = DiagnosticSink()
        ag = load_grammar(MINIMAL, sink=sink)
        assignment = assign_passes(ag, Direction.R2L)
        text = render_listing(MINIMAL, ag, sink, assignment)
        assert "grammar tiny" in text
        assert "statistics" in text
        assert "alternating pass" in text

    def test_listing_marks_implicit_copies(self):
        from repro.errors import DiagnosticSink
        src = """
grammar g : r .
symbols
  nonterminal r, l ;
  terminal X ;
attributes
  r : synthesized N int ;
  l : synthesized N int ;
productions
r = l .
  ;
l = X .
  l.N = 1 ;
end
"""
        sink = DiagnosticSink()
        ag = load_grammar(src, sink=sink)
        text = render_listing(src, ag, sink)
        assert "# implicit copy-rule" in text


class TestShippedGrammars:
    @pytest.mark.parametrize("name,expect_passes", [
        ("binary", 2), ("calc", 2), ("pascal", 2), ("asm", 3), ("linguist", 4),
    ])
    def test_loads_and_partitions(self, name, expect_passes):
        from repro.grammars import load_source
        from repro.passes import assign_passes, Direction

        ag = load_grammar(load_source(name))
        assignment = assign_passes(ag, Direction.R2L)
        assert assignment.n_passes == expect_passes

    def test_copy_rule_percentages_in_paper_band(self):
        """EXP-C1 shape: 40-60 % of semantic functions are copy-rules in
        realistic grammars (pascal and linguist are the realistic ones)."""
        from repro.ag import compute_statistics
        from repro.grammars import load_source

        pascal = compute_statistics(load_grammar(load_source("pascal")))
        assert 35 <= pascal.copy_rule_percent <= 65

    def test_unknown_grammar_name(self):
        from repro.grammars import load_source

        with pytest.raises(KeyError):
            load_source("nope")


class TestListingPassAnnotations:
    def test_pass_numbers_annotated_like_the_paper(self):
        """The paper's listing marks each semantic function '# pass N'."""
        from repro.core import Linguist
        from repro.grammars import load_source

        lg = Linguist(load_source("binary"))
        assert "# pass 1" in lg.listing
        assert "# pass 2" in lg.listing
        # LEN is a pass-1 function; VAL computations are pass 2.
        for line in lg.listing.splitlines():
            if "bits[lhs].LEN" in line:
                assert "# pass 1" in line
            if "number[lhs].VAL" in line:
                assert "# pass 2" in line
