"""Unit tests for the attribute-grammar core model (S6)."""

import pytest

from repro.ag import (
    AttrKind,
    AttributeGrammar,
    GrammarBuilder,
    LHS_POSITION,
    LIMB_POSITION,
    SymbolKind,
)
from repro.errors import SemanticError


class TestSymbols:
    def test_symbol_kinds(self):
        ag = AttributeGrammar("t", "S")
        s = ag.add_symbol("S", SymbolKind.NONTERMINAL)
        t = ag.add_symbol("T", SymbolKind.TERMINAL)
        l = ag.add_symbol("L", SymbolKind.LIMB)
        assert [x.name for x in ag.nonterminals] == ["S"]
        assert [x.name for x in ag.terminals] == ["T"]
        assert [x.name for x in ag.limbs] == ["L"]

    def test_duplicate_symbol_rejected(self):
        ag = AttributeGrammar("t", "S")
        ag.add_symbol("S", SymbolKind.NONTERMINAL)
        with pytest.raises(SemanticError):
            ag.add_symbol("S", SymbolKind.TERMINAL)

    def test_terminal_cannot_have_synthesized(self):
        ag = AttributeGrammar("t", "S")
        t = ag.add_symbol("T", SymbolKind.TERMINAL)
        with pytest.raises(SemanticError):
            t.add_attribute("VAL", AttrKind.SYNTHESIZED)

    def test_terminal_intrinsic_allowed(self):
        ag = AttributeGrammar("t", "S")
        t = ag.add_symbol("T", SymbolKind.TERMINAL)
        attr = t.add_attribute("NAME", AttrKind.INTRINSIC, "NameIndex")
        assert attr.kind is AttrKind.INTRINSIC
        assert t.intrinsic == [attr]

    def test_limb_only_local_attributes(self):
        ag = AttributeGrammar("t", "S")
        l = ag.add_symbol("L", SymbolKind.LIMB)
        with pytest.raises(SemanticError):
            l.add_attribute("A", AttrKind.SYNTHESIZED)
        l.add_attribute("A", AttrKind.LOCAL)

    def test_nonterminal_cannot_have_local(self):
        ag = AttributeGrammar("t", "S")
        s = ag.add_symbol("S", SymbolKind.NONTERMINAL)
        with pytest.raises(SemanticError):
            s.add_attribute("A", AttrKind.LOCAL)

    def test_duplicate_attribute_rejected(self):
        ag = AttributeGrammar("t", "S")
        s = ag.add_symbol("S", SymbolKind.NONTERMINAL)
        s.add_attribute("A", AttrKind.SYNTHESIZED)
        with pytest.raises(SemanticError):
            s.add_attribute("A", AttrKind.INHERITED)


class TestOccurrenceNaming:
    """§I: 'S0 and S1 denote separate occurrences of the same symbol'."""

    def make(self):
        ag = AttributeGrammar("t", "S")
        ag.add_symbol("S", SymbolKind.NONTERMINAL)
        ag.add_symbol("V", SymbolKind.TERMINAL)
        ag.add_symbol("Lb", SymbolKind.LIMB)
        return ag

    def test_suffixes_when_repeated(self):
        ag = self.make()
        prod = ag.add_production("S", ["V", "S"], limb="Lb")
        names = [o.name for o in prod.occurrences]
        # LHS counts as occurrence 0 of S.
        assert names == ["S0", "V", "S1", "Lb"]

    def test_bare_when_unique(self):
        ag = self.make()
        prod = ag.add_production("S", ["V"])
        assert [o.name for o in prod.occurrences] == ["S", "V"]

    def test_positions(self):
        ag = self.make()
        prod = ag.add_production("S", ["V", "S"], limb="Lb")
        assert prod.occurrence_named("S0").position == LHS_POSITION
        assert prod.occurrence_named("S1").position == 2
        assert prod.occurrence_named("Lb").position == LIMB_POSITION

    def test_triple_occurrence(self):
        ag = self.make()
        prod = ag.add_production("S", ["S", "S"])
        assert [o.name for o in prod.occurrences] == ["S0", "S1", "S2"]

    def test_limb_cannot_appear_in_rhs(self):
        ag = self.make()
        with pytest.raises(SemanticError):
            ag.add_production("S", ["Lb"])

    def test_lhs_must_be_nonterminal(self):
        ag = self.make()
        with pytest.raises(SemanticError):
            ag.add_production("V", ["S"])

    def test_limb_unique_per_production(self):
        ag = self.make()
        ag.add_production("S", ["V"], limb="Lb")
        with pytest.raises(SemanticError):
            ag.add_production("S", ["V", "S"], limb="Lb")

    def test_attribute_occurrence_count(self):
        ag = self.make()
        ag.symbol("S").add_attribute("A", AttrKind.SYNTHESIZED)
        ag.symbol("S").add_attribute("B", AttrKind.INHERITED)
        ag.symbol("V").add_attribute("N", AttrKind.INTRINSIC)
        prod = ag.add_production("S", ["V", "S"], limb="Lb")
        occurrences = ag.attribute_occurrences(prod)
        # S0: A,B ; V: N ; S1: A,B  => 5
        assert len(occurrences) == 5


class TestUnderlyingCFG:
    def test_cfg_extraction(self):
        b = GrammarBuilder("t", start="S")
        b.nonterminal("S", synthesized={"N": "int"})
        b.terminal("A", intrinsic={"X": "int"})
        b.production("S", ["A"], functions=[("S.N", "A.X + 1")])
        ag = b.finish()
        cfg = ag.underlying_cfg()
        assert cfg.start == "S"
        assert "A" in cfg.terminals
        # augmented production + 1 real production
        assert len(cfg.productions) == 2
