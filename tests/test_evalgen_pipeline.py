"""Integration tests: file-paradigm evaluators vs the in-memory oracle.

Every combination of backend (interpretive / generated Python) and
optimization toggles (static subsumption, dead-attribute suppression)
must compute exactly the values the demand-driven oracle computes.
"""

import pytest

from repro.evalgen.driver import reconstruct_tree
from repro.passes.schedule import Direction

from tests.evalharness import Pipeline, tokens_of
from tests.sample_grammars import (
    knuth_binary,
    left_flow,
    right_flow,
    synthesized_only,
    with_limb,
)

BACKENDS = ["interp", "generated"]
TOGGLES = [(True, True), (True, False), (False, True), (False, False)]


def binary_tokens(text):
    mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
    return tokens_of([(mapping[c], c) for c in text])


class TestKnuthBinary:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("subsumption,deadness", TOGGLES)
    def test_value_101_01(self, backend, subsumption, deadness):
        pipe = Pipeline(
            knuth_binary(), subsumption=subsumption, deadness=deadness
        )
        result, _ = pipe.evaluate(binary_tokens("101.01"), backend=backend)
        assert result["VAL"] == pytest.approx(5.25)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_oracle(self, backend):
        pipe = Pipeline(knuth_binary())
        toks = binary_tokens("1101.101")
        result, _ = pipe.evaluate(toks, backend=backend)
        oracle_result, _ = pipe.oracle(toks)
        assert result["VAL"] == oracle_result["VAL"] == pytest.approx(13.625)

    @pytest.mark.parametrize("text,value", [
        ("0.0", 0.0),
        ("1.0", 1.0),
        ("0.1", 0.5),
        ("111.111", 7.875),
        ("10000.00001", 16.03125),
    ])
    def test_various_numbers(self, text, value):
        pipe = Pipeline(knuth_binary())
        result, _ = pipe.evaluate(binary_tokens(text), backend="generated")
        assert result["VAL"] == pytest.approx(value)


class TestDirectionalGrammars:
    def test_left_flow_l2r_prefix_strategy(self):
        pipe = Pipeline(left_flow(), first_direction=Direction.L2R)
        toks = tokens_of([("X", "3"), ("X", "4")])
        result, _ = pipe.evaluate(toks, backend="interp")
        assert result["OUT"] == 7

    def test_left_flow_r2l_two_passes(self):
        pipe = Pipeline(left_flow(), first_direction=Direction.R2L)
        assert pipe.assignment.n_passes == 2
        toks = tokens_of([("X", "3"), ("X", "4")])
        result, driver = pipe.evaluate(toks, backend="generated")
        assert result["OUT"] == 7
        assert len(driver.pass_times) == 2

    def test_right_flow(self):
        pipe = Pipeline(right_flow(), first_direction=Direction.R2L)
        toks = tokens_of([("X", "10"), ("X", "5")])
        result, _ = pipe.evaluate(toks, backend="generated")
        assert result["OUT"] == 15

    def test_synthesized_only(self):
        pipe = Pipeline(synthesized_only())
        # ( ( LEAF LEAF ) LEAF )
        toks = tokens_of(["LPAR", "LPAR", "LEAF", "LEAF", "RPAR", "LEAF", "RPAR"])
        result, _ = pipe.evaluate(toks, backend="interp")
        assert result["N"] == 3


class TestLimbGrammar:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_limb_common_subexpression(self, backend):
        pipe = Pipeline(with_limb())
        result, _ = pipe.evaluate(
            tokens_of([("N", "9"), ("N", "4")]), backend=backend
        )
        assert result["OUT"] == 5
        result2, _ = pipe.evaluate(
            tokens_of([("N", "4"), ("N", "9")]), backend=backend
        )
        assert result2["OUT"] == 5  # BIG - SMALL regardless of order


class TestFullTreeAgreement:
    """With dead-field suppression off, the final spool carries every
    attribute instance; the reconstructed tree must match the oracle."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("subsumption", [True, False])
    def test_knuth_full_tree(self, backend, subsumption):
        pipe = Pipeline(knuth_binary(), subsumption=subsumption, deadness=False)
        toks = binary_tokens("110.011")
        _, driver = pipe.evaluate(toks, backend=backend)
        file_tree = reconstruct_tree(pipe.ag, driver.final_spool)
        _, oracle_tree = pipe.oracle(toks)

        def compare(a, b, path="root"):
            assert a.node.symbol == b.node.symbol, path
            for attr, value in b.node.attrs.items():
                assert attr in a.node.attrs, f"{path}: missing {attr}"
                assert a.node.attrs[attr] == pytest.approx(value) \
                    if isinstance(value, float) else a.node.attrs[attr] == value, \
                    f"{path}.{attr}"
            assert len(a.children) == len(b.children), path
            for i, (ca, cb) in enumerate(zip(a.children, b.children)):
                compare(ca, cb, f"{path}[{i}]")

        compare(file_tree, oracle_tree)


class TestDeadnessEffect:
    def test_dead_suppression_reduces_io(self):
        toks = binary_tokens("1011.0101")
        lean = Pipeline(knuth_binary(), deadness=True)
        fat = Pipeline(knuth_binary(), deadness=False)
        _, d_lean = lean.evaluate(toks)
        _, d_fat = fat.evaluate(toks)
        assert d_lean.accountant.bytes_written < d_fat.accountant.bytes_written

    def test_temporary_attributes_identified(self):
        pipe = Pipeline(knuth_binary())
        temporaries = pipe.deadness.temporary_attributes()
        significant = pipe.deadness.significant_attributes()
        # LEN is defined in pass 1 and used in pass 2: significant.
        assert ("bits", "LEN") in significant
        # VAL of bit is used in the same pass it is defined... except the
        # root's VAL which outlives the final pass by definition.
        assert ("bit", "VAL") in temporaries
        assert ("number", "VAL") in significant


def block_tokens(*names, nest=0):
    """BEGIN print n1; print n2; ... END with `nest` extra nested blocks."""
    toks = ["BEGIN"]
    for i, n in enumerate(names):
        if i:
            toks.append("SEMI")
        toks.extend(["PRINT", ("NAME", n)])
    for _ in range(nest):
        toks.extend(["SEMI", "BEGIN", "PRINT", ("NAME", "x"), "END"])
    toks.append("END")
    return tokens_of(toks)


class TestContextHeavy:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("subsumption", [True, False])
    def test_lookup_results(self, backend, subsumption):
        from tests.sample_grammars import context_heavy

        pipe = Pipeline(context_heavy(), subsumption=subsumption)
        result, _ = pipe.evaluate(
            block_tokens("x", "y", nest=1), backend=backend
        )
        assert list(result["OUT"]) == [1, 2, 1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_oracle(self, backend):
        from tests.sample_grammars import context_heavy

        pipe = Pipeline(context_heavy())
        toks = block_tokens("y", "x", "y", nest=2)
        result, _ = pipe.evaluate(toks, backend=backend)
        oracle_result, _ = pipe.oracle(toks)
        assert list(result["OUT"]) == list(oracle_result["OUT"])


class TestSubsumptionEffect:
    def test_subsumed_sites_counted(self):
        from tests.sample_grammars import context_heavy

        pipe = Pipeline(context_heavy(), subsumption=True, refine=False)
        total_subsumed = sum(p.n_subsumed for p in pipe.plans)
        assert total_subsumed >= 4  # ENV and OUT chains both subsume
        off = Pipeline(context_heavy(), subsumption=False)
        assert sum(p.n_subsumed for p in off.plans) == 0

    def test_cost_model_rejects_often_redefined_attributes(self):
        """SCALE is recomputed at every level of the Knuth grammar, so the
        cost model must leave it (and everything downstream) unallocated."""
        pipe = Pipeline(knuth_binary(), subsumption=True)
        assert not pipe.allocation.is_static("bits", "SCALE")
        assert sum(p.n_subsumed for p in pipe.plans) == 0

    def test_subsumption_preserves_results_on_stressed_grammar(self):
        """Deep inherited-context copying — the subsumption sweet spot."""
        from repro.ag import GrammarBuilder

        b = GrammarBuilder("ctx", start="root")
        b.nonterminal("root", synthesized={"OUT": "int"})
        b.nonterminal(
            "node", inherited={"DEPTH": "int", "CTX": "int"},
            synthesized={"OUT": "int"},
        )
        b.terminal("LEAF", intrinsic={"W": "int"})
        b.production("root", ["node"], functions=[
            ("node.DEPTH", "0"),
            ("node.CTX", "100"),
        ])
        # CTX copies down unchanged (implicit), DEPTH changes at each level.
        b.production("node", ["LEAF", "node"], functions=[
            ("node1.DEPTH", "node0.DEPTH + 1"),
            ("node0.OUT", "node1.OUT + LEAF.W"),
        ])
        b.production("node", ["LEAF"], functions=[
            ("node.OUT", "node.DEPTH + node.CTX + LEAF.W"),
        ])
        ag = b.finish()
        toks = tokens_of([("LEAF", "1")] * 5)
        for subsumption in (True, False):
            pipe = Pipeline(ag, subsumption=subsumption)
            for backend in BACKENDS:
                result, _ = pipe.evaluate(toks, backend=backend)
                # depth at leaf = 4, CTX = 100, leaf W = 1, plus 4 other leaves
                assert result["OUT"] == 4 + 100 + 1 + 4

    def test_name_vs_per_attribute_grouping(self):
        pipe_name = Pipeline(knuth_binary(), grouping="name")
        pipe_attr = Pipeline(knuth_binary(), grouping="per-attribute")
        n_name = sum(p.n_subsumed for p in pipe_name.plans)
        n_attr = sum(p.n_subsumed for p in pipe_attr.plans)
        # Name grouping subsumes at least as many copies (bits.SCALE ->
        # bit.SCALE crosses symbols).
        assert n_name >= n_attr
        toks = binary_tokens("10.01")
        r1, _ = pipe_name.evaluate(toks, backend="generated")
        r2, _ = pipe_attr.evaluate(toks, backend="generated")
        assert r1["VAL"] == r2["VAL"]


class TestGeneratedCode:
    def test_generated_source_is_python(self):
        from repro.evalgen.codegen_py import GeneratedEvaluator

        pipe = Pipeline(knuth_binary())
        gen = GeneratedEvaluator(pipe.ag, pipe.plans)
        src = gen.source_of_pass(1)
        assert "class Pass1Evaluator" in src
        assert "rt.get_node" in src
        compile(src, "<test>", "exec")

    def test_subsumed_copies_appear_as_comments(self):
        from repro.evalgen.codegen_py import GeneratedEvaluator
        from tests.sample_grammars import context_heavy

        pipe = Pipeline(context_heavy(), subsumption=True, refine=False)
        gen = GeneratedEvaluator(pipe.ag, pipe.plans)
        full = gen.source_of_pass(1)
        assert "subsumed" in full

    def test_trace_events_follow_paradigm(self):
        """EXP-F2 shape: get limb, get child, visit, put child, …"""
        pipe = Pipeline(with_limb())
        spool, _ = pipe.build_apt(
            tokens_of([("N", "9"), ("N", "4")]), build_tree=False
        )
        from repro.evalgen.interp import InterpretiveEvaluator
        from repro.evalgen.driver import AlternatingPassDriver

        trace = []
        driver = AlternatingPassDriver(
            pipe.ag,
            pipe.plans,
            InterpretiveEvaluator(pipe.ag).run_pass,
            library=pipe.library,
            trace=trace,
        )
        driver.run(spool, strategy="bottom-up")
        kinds = [(e.kind, e.detail) for e in trace]
        assert ("get", "PairLimb") in kinds
        assert ("visit", "PairLimb") in kinds
        # every get is balanced by a put
        gets = sum(1 for k, _ in kinds if k == "get")
        puts = sum(1 for k, _ in kinds if k == "put")
        assert gets == puts


class TestMemoryShape:
    def test_peak_resident_far_below_total(self):
        """EXP-M1 shape: the resident node stack is much smaller than the
        whole APT for a deep input."""
        pipe = Pipeline(knuth_binary())
        toks = binary_tokens("1" * 60 + "." + "1" * 60)
        spool, root = pipe.build_apt(toks, build_tree=True)
        from repro.evalgen.oracle import OracleEvaluator

        oracle = OracleEvaluator(pipe.ag, pipe.library)
        oracle.evaluate(root)
        total = oracle.total_tree_bytes
        _, driver = pipe.evaluate(toks)
        peak = driver.gauge.peak_bytes
        assert peak > 0
        assert peak < total
