"""Differential fuzz harness: every evaluator path must agree, byte for byte.

Eight ways to compute a translation exist in this codebase:

* the **interpretive** pass evaluator (walks the plans at runtime),
* the **generated** pass modules (exec-compiled Python),
* the **oracle** (demand-driven tree evaluation straight off the
  semantic functions — no passes, no spools),
* the **cache-rehydrated** translator (pass modules compiled from
  cached source text, scanner from a cached DFA — the warm path of
  ``repro.buildcache``),
* the **unfused** interpretive evaluator (pass fusion disabled — the
  original alternating-pass partition, one pass per fixpoint level),
* the **shm-attached** translator (every artifact hydrated zero-copy
  from a shared-memory plane, :mod:`repro.buildcache.shm` — the path
  batch/serve worker processes take),
* the **shm-attached unfused** translator (the zero-copy path over the
  fusion-off build),
* the **incremental** translator (``memo_dir=``): after a warming run,
  a re-translation splices sealed spool records for every clean
  subtree and re-evaluates only the dirty spine
  (:mod:`repro.passes.incremental`).

They are eight implementations of one semantics, so on every input the
root attributes must be *byte-identical* (canonicalized through
:func:`tests.evalharness.canonical_attrs`).  The workloads are seeded
generators from :mod:`repro.workloads.generators` — deterministic, so a
disagreement is a reproducible bug report, not a flake.
"""

import pytest

from repro.workloads.generators import (
    generate_binary_numeral,
    generate_calc_program,
    generate_pascal_program,
)
from tests.evalharness import BackendSuite, run_all_backends

# ---------------------------------------------------------------------------
# seeded workloads: (grammar, workload-id, text) — ≥25 total
# ---------------------------------------------------------------------------

WORKLOADS = []

for size in (4, 8, 16, 32):
    for seed in (1, 2, 3, 4):
        WORKLOADS.append(
            ("calc", f"calc-n{size}-s{seed}",
             generate_calc_program(size, seed=seed))
        )  # 16 calc workloads

for bits in (8, 24, 48):
    for seed in (5, 6):
        WORKLOADS.append(
            ("binary", f"binary-b{bits}-s{seed}",
             generate_binary_numeral(bits, seed=seed))
        )  # 6 binary workloads

for size, seed in ((6, 1), (12, 2), (18, 3), (24, 4)):
    WORKLOADS.append(
        ("pascal", f"pascal-n{size}-s{seed}",
         generate_pascal_program(size, seed=seed))
    )  # 4 pascal workloads


def test_workload_pool_is_large_enough():
    assert len(WORKLOADS) >= 25
    ids = [wid for _, wid, _ in WORKLOADS]
    assert len(set(ids)) == len(ids)


# ---------------------------------------------------------------------------
# suites are per-grammar (construction is the expensive step)
# ---------------------------------------------------------------------------

_SUITES = {}


@pytest.fixture(scope="module")
def suite_cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("diff-cache")


def suite_for(grammar: str, cache_root) -> BackendSuite:
    if grammar not in _SUITES:
        _SUITES[grammar] = BackendSuite(grammar, str(cache_root / grammar))
    return _SUITES[grammar]


@pytest.mark.parametrize(
    "grammar,workload_id,text",
    WORKLOADS,
    ids=[wid for _, wid, _ in WORKLOADS],
)
def test_all_backends_agree(grammar, workload_id, text, suite_cache_root):
    suite = suite_for(grammar, suite_cache_root)
    results = suite.run(text)
    interp = results["interp"]
    assert interp, f"{workload_id}: empty root attributes"
    assert results["generated"] == interp, (
        f"{workload_id}: generated backend disagrees with interpretive"
    )
    assert results["cached"] == interp, (
        f"{workload_id}: cache-rehydrated backend disagrees with interpretive"
    )
    assert results["unfused"] == interp, (
        f"{workload_id}: unfused evaluation disagrees with the fused one"
    )
    assert results["shm"] == interp, (
        f"{workload_id}: shm-attached backend disagrees with interpretive"
    )
    assert results["shm_unfused"] == interp, (
        f"{workload_id}: shm-attached unfused backend disagrees with "
        "interpretive"
    )
    assert results["incremental"] == interp, (
        f"{workload_id}: memo-spliced re-translation disagrees with "
        "from-scratch evaluation"
    )
    assert results["oracle"] == interp, (
        f"{workload_id}: oracle disagrees with the pass evaluators"
    )


def test_run_all_backends_helper(tmp_path):
    """The one-shot helper builds its own suite and agrees with itself."""
    results = run_all_backends(
        "calc", generate_calc_program(6, seed=99), str(tmp_path / "cache")
    )
    assert set(results) == {"interp", "generated", "cached", "unfused",
                            "shm", "shm_unfused", "incremental", "oracle"}
    assert (
        results["interp"]
        == results["generated"]
        == results["cached"]
        == results["unfused"]
        == results["shm"]
        == results["shm_unfused"]
        == results["incremental"]
        == results["oracle"]
    )


# ---------------------------------------------------------------------------
# fusion differential: identical bytes, strictly fewer passes
# ---------------------------------------------------------------------------

_FUSION_CASES = [
    ("calc", True, generate_calc_program(12, seed=7)),
    ("pascal", True, generate_pascal_program(10, seed=7)),
    ("binary", False, generate_binary_numeral(16, seed=7)),
]


@pytest.mark.parametrize(
    "grammar,fuses,text", _FUSION_CASES, ids=[g for g, _, _ in _FUSION_CASES]
)
def test_fusion_preserves_bytes_and_cuts_passes(
    grammar, fuses, text, suite_cache_root
):
    """The fused evaluation must be byte-identical to the unfused one
    while running strictly fewer *trace-visible* passes (when fusion
    applies; binary's dependencies admit no fusion and must not pay
    any)."""
    from repro.obs import Tracer
    from tests.evalharness import canonical_attrs

    suite = suite_for(grammar, suite_cache_root)
    fused_tracer, unfused_tracer = Tracer(), Tracer()
    fused = suite.interp.translate(text, tracer=fused_tracer)
    unfused = suite.unfused.translate(text, tracer=unfused_tracer)
    assert canonical_attrs(fused.root_attrs) == canonical_attrs(
        unfused.root_attrs
    )
    fused_passes = len(fused_tracer.spans(cat="pass"))
    unfused_passes = len(unfused_tracer.spans(cat="pass"))
    assert fused_passes == suite.fused_n_passes
    assert unfused_passes == suite.unfused_n_passes
    if fuses:
        assert fused_passes < unfused_passes, (
            f"{grammar}: fusion did not reduce the trace-visible pass count"
        )
    else:
        assert fused_passes == unfused_passes


def test_cached_suite_really_rehydrated(suite_cache_root):
    """The 'cached' path is not a silent cold rebuild."""
    suite = suite_for("calc", suite_cache_root)
    assert suite.cached.linguist.from_cache


def test_shm_suite_really_plane_attached(suite_cache_root):
    """The 'shm' axes are genuine zero-copy hydrations, not rebuilds:
    the husk behind each translator is a PlaneBuild with no cache."""
    suite = suite_for("calc", suite_cache_root)
    for translator in (suite.shm, suite.shm_unfused):
        assert getattr(translator.linguist, "from_plane", False)
        assert not translator.linguist.from_cache
        assert translator.linguist.cache is None
