"""Property-based tests (hypothesis) on core data structures and invariants."""

import os
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.ag.exprtext import parse_expression
from repro.apt.codec import RecordCodec, deserialize_names, serialize_names
from repro.apt.linear import TreeNode, iter_bottom_up, iter_prefix
from repro.apt.node import APTNode
from repro.apt.storage import (
    FORMAT_V1,
    FORMAT_V2,
    FORMAT_V3,
    AdaptiveSpool,
    DiskSpool,
    MemorySpool,
)
from repro.errors import SpoolCorruptionError
from repro.passes.schedule import Direction
from repro.regex import build_nfa, determinize, minimize, parse_regex
from repro.regex.ast import char_code
from repro.regex.dfa import DEAD
from repro.util.lists import ConsList, PartialFunction, Sequence, SetList
from repro.util.nametable import NameTable

# ---------------------------------------------------------------------------
# Cons lists / sets / partial functions
# ---------------------------------------------------------------------------

values = st.one_of(st.integers(-50, 50), st.text(string.ascii_lowercase, max_size=4))


class TestConsListProperties:
    @given(st.lists(values))
    def test_round_trip(self, items):
        assert ConsList.from_iterable(items).to_pylist() == items

    @given(st.lists(values))
    def test_length(self, items):
        assert len(ConsList.from_iterable(items)) == len(items)

    @given(st.lists(values))
    def test_reverse_involution(self, items):
        lst = ConsList.from_iterable(items)
        assert lst.reverse().reverse() == lst

    @given(st.lists(values), st.lists(values))
    def test_append_is_concatenation(self, a, b):
        la, lb = ConsList.from_iterable(a), ConsList.from_iterable(b)
        assert la.append(lb).to_pylist() == a + b

    @given(st.lists(values), st.lists(values))
    def test_append_preserves_right_sharing(self, a, b):
        la, lb = ConsList.from_iterable(a), ConsList.from_iterable(b)
        out = la.append(lb)
        # Walking past a's elements lands exactly on the b spine.
        cell = out
        for _ in a:
            cell = cell.tail
        assert cell is lb

    @given(st.lists(values), values)
    def test_cons_then_head_tail(self, items, x):
        lst = ConsList.from_iterable(items).cons(x)
        assert lst.head == x
        assert lst.tail.to_pylist() == items

    @given(st.lists(values))
    def test_equal_lists_equal_hashes(self, items):
        a = ConsList.from_iterable(items)
        b = ConsList.from_iterable(list(items))
        assert a == b and hash(a) == hash(b)


class TestSetListProperties:
    @given(st.lists(st.integers(0, 30)))
    def test_add_idempotent(self, items):
        s = SetList.empty()
        for x in items:
            s = s.add(x)
        assert len(s) == len(set(items))
        assert set(s) == set(items)

    @given(st.lists(st.integers(0, 20)), st.lists(st.integers(0, 20)))
    def test_union_commutative_as_sets(self, a, b):
        sa = SetList.from_iterable(set(a))
        sb = SetList.from_iterable(set(b))
        assert sa.union(sb) == sb.union(sa)
        assert set(sa.union(sb)) == set(a) | set(b)

    @given(st.lists(st.integers(0, 20)), st.lists(st.integers(0, 20)))
    def test_difference_and_intersection_partition(self, a, b):
        sa = SetList.from_iterable(set(a))
        sb = SetList.from_iterable(set(b))
        inter = set(sa.intersection(sb))
        diff = set(sa.difference(sb))
        assert inter | diff == set(a)
        assert inter & diff == set()


class TestPartialFunctionProperties:
    @given(st.lists(st.tuples(st.integers(0, 10), st.integers())))
    def test_last_binding_wins(self, bindings):
        pf = PartialFunction.empty()
        model = {}
        for k, v in bindings:
            pf = pf.bind(k, v)
            model[k] = v
        for k, v in model.items():
            assert pf.lookup(k) == v
        assert len(pf) == len(model)

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers())))
    def test_domain_matches_model(self, bindings):
        pf = PartialFunction.empty()
        for k, v in bindings:
            pf = pf.bind(k, v)
        assert set(pf.domain()) == {k for k, _ in bindings}


class TestNameTableProperties:
    @given(st.lists(st.text(string.ascii_letters, min_size=1, max_size=8)))
    def test_intern_is_stable_bijection(self, names):
        nt = NameTable()
        indexes = [nt.intern(n) for n in names]
        for n, i in zip(names, indexes):
            assert nt.intern(n) == i
            assert nt.spelling(i) == n
        assert len(nt) == len(set(names))


# ---------------------------------------------------------------------------
# Spools: write-then-read is the identity, forwards and backwards
# ---------------------------------------------------------------------------

records = st.lists(
    st.tuples(st.text(string.ascii_uppercase, min_size=1, max_size=3),
              st.one_of(st.none(), st.integers(0, 5)),
              st.dictionaries(st.text(string.ascii_uppercase, min_size=1, max_size=2),
                              st.integers(-9, 9), max_size=3),
              st.booleans()),
    max_size=20,
)


class TestSpoolProperties:
    @given(records)
    @settings(max_examples=40)
    def test_memory_spool_round_trip(self, recs):
        spool = MemorySpool()
        for r in recs:
            spool.append(r)
        spool.finalize()
        assert list(spool.read_forward()) == recs
        assert list(spool.read_backward()) == recs[::-1]

    @given(records)
    @settings(max_examples=20)
    def test_disk_spool_round_trip(self, recs):
        spool = DiskSpool()
        try:
            for r in recs:
                spool.append(r)
            spool.finalize()
            assert list(spool.read_forward()) == recs
            assert list(spool.read_backward()) == recs[::-1]
        finally:
            spool.close()

    @pytest.mark.parametrize("version", [FORMAT_V1, FORMAT_V2, FORMAT_V3])
    @given(records)
    @settings(max_examples=15)
    def test_disk_spool_round_trip_format_matrix(self, version, recs):
        """Every on-disk format round-trips in both directions, and a
        reopened spool agrees with the writer-side instance."""
        spool = DiskSpool(format_version=version)
        try:
            for r in recs:
                spool.append(r)
            spool.finalize()
            assert list(spool.read_forward()) == recs
            assert list(spool.read_backward()) == recs[::-1]
            reopened = DiskSpool.open(spool.path)
            assert reopened.format_version == version
            assert reopened.n_records == len(recs)
            assert list(reopened.read_forward()) == recs
            assert list(reopened.read_backward()) == recs[::-1]
        finally:
            spool.close()

    @given(records, st.integers(0, 256))
    @settings(max_examples=20)
    def test_adaptive_spool_round_trip_across_budgets(self, recs, budget):
        """An AdaptiveSpool behaves identically whether it stays
        memory-resident or spills mid-stream."""
        spool = AdaptiveSpool(memory_budget=budget)
        try:
            for r in recs:
                spool.append(r)
            spool.finalize()
            assert spool.n_records == len(recs)
            assert list(spool.read_forward()) == recs
            assert list(spool.read_backward()) == recs[::-1]
        finally:
            spool.close()


# ---------------------------------------------------------------------------
# Record codec v3: value- and *type*-faithful round trips
# ---------------------------------------------------------------------------

codec_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),  # includes > 64-bit values (pickle fallback)
        st.floats(allow_nan=False),
        st.text(max_size=90),  # crosses the MAX_INTERN_LEN=64 boundary
        st.binary(max_size=16),  # pickle fallback
        st.sets(st.integers(-5, 5), max_size=3),  # pickle fallback
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=12,
)


def _assert_type_faithful(a, b, path="value"):
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_type_faithful(x, y, f"{path}[{i}]")
    elif isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for k in a:
            _assert_type_faithful(a[k], b[k], f"{path}[{k!r}]")
    else:
        assert a == b, path


class TestRecordCodecProperties:
    @given(codec_values)
    @settings(max_examples=150)
    def test_value_round_trip_is_type_faithful(self, value):
        codec = RecordCodec()
        decoded = codec.decode(codec.encode(value))
        _assert_type_faithful(decoded, value)

    @given(
        st.text(min_size=1, max_size=10),
        st.one_of(st.none(), st.integers(0, 1000)),
        st.dictionaries(st.text(min_size=1, max_size=8), codec_values,
                        max_size=4),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_node_record_round_trip(self, symbol, production, attrs, is_limb):
        codec = RecordCodec()
        record = (symbol, production, attrs, is_limb)
        decoded = codec.decode(codec.encode(record))
        _assert_type_faithful(decoded, record)

    @given(st.lists(st.text(min_size=1, max_size=30), unique=True))
    def test_name_table_section_round_trip(self, names):
        codec = RecordCodec()
        for name in names:
            codec.names.intern(name)
        rebuilt = deserialize_names(serialize_names(codec.names))
        assert list(rebuilt) == list(codec.names)
        for name in names:
            assert rebuilt.intern(name) == codec.names.intern(name)

    @given(records, st.integers(0, 2**31 - 1), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_v3_bit_flip_detected_or_harmless(self, recs, pos_seed, bit):
        """Flip one bit anywhere in a sealed v3 file: a fresh reader
        either detects the damage in BOTH directions or the data is
        byte-for-byte unaffected (e.g. a reserved-flag bit)."""
        spool = DiskSpool()
        try:
            for r in recs:
                spool.append(r)
            spool.finalize()
            size = os.path.getsize(spool.path)
            offset = pos_seed % size
            with open(spool.path, "r+b") as f:
                f.seek(offset)
                byte = f.read(1)[0]
                f.seek(offset)
                f.write(bytes([byte ^ (1 << bit)]))
            outcomes = {}
            for name in ("fwd", "bwd"):
                try:
                    fresh = DiskSpool.open(spool.path)
                    got = list(
                        fresh.read_forward() if name == "fwd"
                        else fresh.read_backward()
                    )
                    outcomes[name] = got
                except SpoolCorruptionError:
                    outcomes[name] = None
            if outcomes["fwd"] is None or outcomes["bwd"] is None:
                assert outcomes["fwd"] is None and outcomes["bwd"] is None
            else:
                assert outcomes["fwd"] == recs
                assert outcomes["bwd"] == recs[::-1]
        finally:
            spool.close()


# ---------------------------------------------------------------------------
# Linearization: the §II reversal identity on arbitrary trees
# ---------------------------------------------------------------------------

@st.composite
def apt_trees(draw, depth=0):
    name = draw(st.text(string.ascii_uppercase, min_size=1, max_size=2))
    if depth >= 3 or draw(st.booleans()):
        return TreeNode(APTNode(name))
    n_children = draw(st.integers(1, 3))
    children = [draw(apt_trees(depth=depth + 1)) for _ in range(n_children)]
    limb = None
    if draw(st.booleans()):
        limb = APTNode(name + "$limb", production=0, is_limb=True)
    return TreeNode(APTNode(name, production=0), children, limb)


class TestLinearizationProperties:
    @given(apt_trees())
    @settings(max_examples=60)
    def test_reversal_identity_l2r(self, tree):
        out = [id(n) for n in iter_bottom_up(tree, Direction.L2R)]
        back = [id(n) for n in iter_prefix(tree, Direction.R2L)]
        assert out[::-1] == back

    @given(apt_trees())
    @settings(max_examples=60)
    def test_reversal_identity_r2l(self, tree):
        out = [id(n) for n in iter_bottom_up(tree, Direction.R2L)]
        back = [id(n) for n in iter_prefix(tree, Direction.L2R)]
        assert out[::-1] == back

    @given(apt_trees())
    @settings(max_examples=30)
    def test_both_orders_are_permutations(self, tree):
        prefix = sorted(id(n) for n in iter_prefix(tree))
        postfix = sorted(id(n) for n in iter_bottom_up(tree))
        assert prefix == postfix


# ---------------------------------------------------------------------------
# Scanner generator: the DFA agrees with a reference matcher
# ---------------------------------------------------------------------------

class TestRegexProperties:
    @given(st.text(alphabet="ab", max_size=8))
    def test_dfa_matches_reference_for_fixed_pattern(self, text):
        import re

        pattern = "a(a|b)*b"
        nfa = build_nfa([("t", parse_regex(pattern))])
        dfa = minimize(determinize(nfa))
        state = dfa.start
        alive = True
        for ch in text:
            state = dfa.step(state, char_code(ch))
            if state == DEAD:
                alive = False
                break
        ours = alive and dfa.accept_tag(state) is not None
        theirs = re.fullmatch("a[ab]*b", text) is not None
        assert ours == theirs

    @given(st.text(alphabet="01.", max_size=10))
    def test_minimization_preserves_language(self, text):
        pattern = r"(0|1)+\.(0|1)+"
        nfa = build_nfa([("t", parse_regex(pattern))])
        big = determinize(nfa)
        small = minimize(big)

        def accepts(dfa):
            state = dfa.start
            for ch in text:
                state = dfa.step(state, char_code(ch))
                if state == DEAD:
                    return False
            return dfa.accept_tag(state) is not None

        assert accepts(big) == accepts(small)


# ---------------------------------------------------------------------------
# Expression parser: printing then reparsing is the identity
# ---------------------------------------------------------------------------

@st.composite
def expressions(draw, depth=0, allow_if=True):
    """Random expression text honoring the §IV restriction: ``if`` never
    occurs inside an infix operand or a call argument."""
    if depth >= 3:
        return draw(st.sampled_from(["1", "42", "a.X", "b.Y", "true"]))
    kind = draw(st.integers(0, 5 if allow_if else 4))
    inner = lambda: draw(expressions(depth=depth + 1, allow_if=False))
    if kind == 0:
        return draw(st.sampled_from(["0", "7", "a.X", "c.Z", "false"]))
    if kind == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({inner()} {op} {inner()})"
    if kind == 2:
        op = draw(st.sampled_from(["=", "<>", "<", ">"]))
        return f"({inner()} {op} {inner()})"
    if kind == 3:
        return f"f({inner()})"
    if kind == 4:
        return f"not {inner()}"
    # if-expressions: branches may themselves contain if.
    return (f"if {inner()} then "
            f"{draw(expressions(depth=depth + 1, allow_if=True))} else "
            f"{draw(expressions(depth=depth + 1, allow_if=True))} endif")


class TestExpressionProperties:
    @given(expressions())
    @settings(max_examples=80)
    def test_print_parse_round_trip(self, text):
        e1 = parse_expression(text)
        e2 = parse_expression(str(e1))
        assert e1 == e2

    @given(expressions())
    @settings(max_examples=80)
    def test_frontend_and_mini_parser_agree(self, text):
        """The LALR-generated frontend and the hand mini-parser must
        build identical ASTs for the same expression text."""
        from repro.frontend.syntax import parse_ag_text

        src = (
            "grammar g : s .\n"
            "symbols\n  nonterminal s ;\n  terminal T ;\n"
            "attributes\n  s : synthesized V int ;\n"
            "productions\n"
            f"s = T .\n  s.V = {text} ;\n"
            "end\n"
        )
        via_frontend = parse_ag_text(src).prods[0].funcs[0].expr
        via_mini = parse_expression(text)
        assert via_frontend == via_mini


# ---------------------------------------------------------------------------
# End-to-end: the file paradigm equals the oracle on random inputs
# ---------------------------------------------------------------------------

class TestEvaluationProperties:
    @given(st.text(alphabet="01", min_size=1, max_size=14),
           st.text(alphabet="01", min_size=1, max_size=14))
    @settings(max_examples=25, deadline=None)
    def test_binary_value_matches_semantics(self, int_part, frac_part):
        from tests.evalharness import Pipeline, tokens_of
        from tests.sample_grammars import knuth_binary

        pipe = _binary_pipe()
        mapping = {"0": "ZERO", "1": "ONE", ".": "DOT"}
        text = int_part + "." + frac_part
        toks = tokens_of([(mapping[c], c) for c in text])
        result, _ = pipe.evaluate(toks, backend="generated")
        expected = int(int_part, 2) + int(frac_part, 2) / 2 ** len(frac_part)
        assert result["VAL"] == pytest.approx(expected)


_PIPE_CACHE = {}


def _binary_pipe():
    if "binary" not in _PIPE_CACHE:
        from tests.evalharness import Pipeline
        from tests.sample_grammars import knuth_binary

        _PIPE_CACHE["binary"] = Pipeline(knuth_binary())
    return _PIPE_CACHE["binary"]


# ---------------------------------------------------------------------------
# Shared-memory artifact plane: sealed-segment codec invariants
# ---------------------------------------------------------------------------

_frame_names = st.text(
    string.ascii_lowercase + string.digits + "._-", min_size=1, max_size=24
)

_json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-10**6, 10**6),
        st.text(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

_pickle_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-10**9, 10**9),
        st.text(max_size=16),
        st.binary(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def _plane_payloads():
    from repro.buildcache.shm import (
        CODEC_JSON,
        CODEC_PICKLE,
        CODEC_RAW,
        CODEC_TEXT,
    )

    return st.one_of(
        st.tuples(st.just(CODEC_RAW), st.binary(max_size=256)),
        st.tuples(st.just(CODEC_TEXT), st.text(max_size=128)),
        st.tuples(st.just(CODEC_JSON), _json_values),
        st.tuples(st.just(CODEC_PICKLE), _pickle_values),
    )


_plane_frames = st.dictionaries(
    _frame_names, st.deferred(_plane_payloads), min_size=0, max_size=6
)


class TestArtifactPlaneProperties:
    @given(_plane_frames)
    @settings(max_examples=40, deadline=None)
    def test_encode_attach_decode_round_trip(self, frames):
        """Every frame written through ``create_plane`` comes back equal
        through a fresh ``attach_plane`` — all four codecs, any mix."""
        from repro.buildcache.shm import CODEC_RAW, attach_plane, create_plane

        plane = create_plane(frames)
        try:
            attached = attach_plane(plane.name)
            try:
                assert sorted(attached.names()) == sorted(frames)
                for frame_name, (codec, obj) in frames.items():
                    assert frame_name in attached
                    value = attached.get(frame_name)
                    if codec == CODEC_RAW:
                        assert value == bytes(obj)
                    else:
                        assert value == obj
            finally:
                attached.close()
        finally:
            plane.unlink()

    @given(_plane_frames, st.integers(0, 2**31 - 1), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_bit_flip_anywhere_is_typed_corruption(self, frames, pos_seed,
                                                   bit):
        """Flip one bit anywhere in the sealed image: attach must raise
        ``PlaneCorruptionError`` — never hand back a wrong artifact.
        Every byte (header, frame bodies, footer, and the CRC fields
        themselves) is covered by some checksum, so unlike the spool
        there is no harmless-flip escape hatch."""
        from repro.buildcache.shm import attach_plane, create_plane
        from repro.errors import PlaneCorruptionError

        plane = create_plane(frames)
        try:
            offset = pos_seed % plane.used_bytes
            plane._shm.buf[offset] ^= 1 << bit
            with pytest.raises(PlaneCorruptionError) as excinfo:
                attach_plane(plane.name)
            assert excinfo.value.segment == plane.name
            assert excinfo.value.reason in {
                "header", "footer", "checksum", "truncated", "framing",
                "version", "payload",
            }
            # Undo the flip: the segment must validate again, proving the
            # detection was the flipped bit and nothing else.
            plane._shm.buf[offset] ^= 1 << bit
            attach_plane(plane.name).close()
        finally:
            plane.unlink()

    def test_attach_after_unlink_fails_cleanly(self):
        """Attaching to an unlinked segment raises the plain (typed,
        non-corruption) ``PlaneError`` — a lifecycle error, not damage."""
        from repro.buildcache.shm import CODEC_TEXT, attach_plane, create_plane
        from repro.errors import PlaneCorruptionError, PlaneError

        plane = create_plane({"x": (CODEC_TEXT, "hello")})
        name = plane.name
        plane.unlink()
        with pytest.raises(PlaneError) as excinfo:
            attach_plane(name)
        assert not isinstance(excinfo.value, PlaneCorruptionError)
        assert excinfo.value.segment == name

    def test_unlink_is_idempotent(self):
        from repro.buildcache.shm import CODEC_RAW, create_plane

        plane = create_plane({"blob": (CODEC_RAW, b"\x00\x01")})
        plane.unlink()
        plane.unlink()  # second unlink must be a no-op, not an error

    def test_unknown_codec_rejected_at_create(self):
        from repro.buildcache.shm import create_plane
        from repro.errors import PlaneError

        with pytest.raises(PlaneError):
            create_plane({"bad": (99, b"payload")})
