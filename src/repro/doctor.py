"""``repro doctor``: the unified crash-recovery sweeper.

Six durable formats can leave artifacts on a host — sealed spools
(v1/v2/v3), build-cache entries, PROV1 provenance logs, SRVJ1 request
journals, checkpoint manifests, and MEMO1 incremental-memo manifests
(with their generation-numbered splice spools) — and a crash, an
ENOSPC, or a killed daemon can leave any of them mid-flight.  ``repro fsck`` judges
*one* file; the doctor walks a whole tree, classifies **every** path
by sniffing magic (reusing fsck's readers), and with ``--repair``
salvages what it can and garbage-collects the rest, so a host always
converges back to "every artifact sealed or gone".

Classification (``ArtifactState``):

========================  ===================================================
state                     meaning
========================  ===================================================
``sealed``                verified clean (CRCs, footer, seal all good)
``unsealed``              a journal without its seal line — the expected
                          artifact of a killed daemon; valid prefix intact
``unsealed-tmp``          ``*.tmp`` staging debris: a writer died before its
                          atomic rename; never referenced by a sealed name
``corrupt``               recognized format failing verification (bit rot,
                          torn write inside the stream)
``orphaned``              a checkpoint pass spool its manifest does not
                          list (progress past the last durable manifest
                          write, or debris of a dead run)
``legacy``                format v1 spool: readable but carries no
                          integrity data to verify
``foreign``               not one of ours; never touched
========================  ===================================================

Repair policy (``--repair``): salvage keeps data (corrupt spools,
provenance logs, and journals are rewritten to their checksum-valid
prefix in place, atomically); deletion is reserved for artifacts whose
loss is safe by design (corrupt cache entries rebuild on miss, tmp
debris was never observable, orphaned pass spools are re-derived on
resume); checkpoint manifests are *truncated* at the first damaged
pass so ``--resume`` restarts from the last good pass instead of
refusing.  The serve daemon runs a doctor pass over its journal and
cache directories at startup, so a crashed daemon always boots clean.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apt.storage import (
    FORMAT_V1,
    FORMAT_V2,
    FORMAT_V3,
    MAGIC,
    MAGIC_V3,
    salvage_spool,
    scan_spool,
)
from repro.buildcache.store import ENTRY_SUFFIX, MAGIC as CACHE_MAGIC
from repro.obs.provenance import (
    looks_like_provenance_log,
    salvage_provenance,
    scan_provenance,
)
from repro.passes.incremental import (
    looks_like_memo_manifest,
    salvage_memo,
    scan_memo,
)
from repro.serve.journal import (
    looks_like_request_journal,
    salvage_journal,
    scan_journal,
)

__all__ = [
    "ArtifactFormat",
    "ArtifactState",
    "ArtifactReport",
    "DoctorReport",
    "run_doctor",
]

#: Checkpoint manifest file name (mirrors CheckpointManager.MANIFEST
#: without importing the evalgen driver at doctor-import time).
MANIFEST_NAME = "checkpoint.json"


class ArtifactFormat:
    SPOOL_V3 = "spool-v3"
    SPOOL_V2 = "spool-v2"
    SPOOL_V1 = "spool-v1"
    CACHE_ENTRY = "cache-entry"
    PROVENANCE = "provenance-log"
    JOURNAL = "request-journal"
    MANIFEST = "checkpoint-manifest"
    MEMO = "memo-manifest"
    UNKNOWN = "unknown"


#: Generation-numbered splice-source spools living beside a MEMO1
#: manifest (``pass2.g7.spool``).  Checkpoint logic must never treat
#: them as checkpoint pass spools: their lifecycle belongs to the memo
#: manifest, not to ``checkpoint.json``.
_MEMO_SPOOL_RE = re.compile(r"^pass\d+\.g\d+\.spool$")


class ArtifactState:
    SEALED = "sealed"
    UNSEALED = "unsealed"
    UNSEALED_TMP = "unsealed-tmp"
    CORRUPT = "corrupt"
    ORPHANED = "orphaned"
    LEGACY = "legacy"
    FOREIGN = "foreign"


@dataclass
class ArtifactReport:
    """One classified path (and, after ``--repair``, what was done)."""

    path: str
    format: str
    state: str
    detail: str = ""
    #: ``""`` (nothing), ``salvaged``, ``salvaged-with-loss``,
    #: ``deleted``, ``truncated-manifest``.
    action: str = ""

    def render(self) -> str:
        line = f"{self.state:13} {self.format:19} {self.path}"
        if self.detail:
            line += f"  ({self.detail})"
        if self.action:
            line += f"  -> {self.action}"
        return line


@dataclass
class DoctorReport:
    """The sweep's outcome over one or more directories."""

    artifacts: List[ArtifactReport] = field(default_factory=list)
    repaired: bool = False

    def by_state(self, state: str) -> List[ArtifactReport]:
        return [a for a in self.artifacts if a.state == state]

    @property
    def clean(self) -> bool:
        """True when nothing needs (or needed) attention."""
        return not self.problems

    @property
    def problems(self) -> List[ArtifactReport]:
        return [
            a
            for a in self.artifacts
            if a.state
            in (
                ArtifactState.UNSEALED_TMP,
                ArtifactState.CORRUPT,
                ArtifactState.ORPHANED,
            )
            and not a.action
        ]

    @property
    def lossy(self) -> bool:
        """True when a repair discarded data (salvage dropped records,
        a manifest was truncated, artifacts were deleted)."""
        return any(
            a.action in ("salvaged-with-loss", "deleted", "truncated-manifest")
            for a in self.artifacts
        )

    def render(self) -> str:
        if not self.artifacts:
            return "doctor: nothing recognized"
        lines = [a.render() for a in self.artifacts]
        counts: Dict[str, int] = {}
        for a in self.artifacts:
            counts[a.state] = counts.get(a.state, 0) + 1
        summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines.append(f"doctor: {len(self.artifacts)} artifact(s): {summary}")
        if self.problems:
            lines.append(
                f"doctor: {len(self.problems)} problem(s) "
                + ("remain" if self.repaired else "found (run with --repair)")
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# sniffing
# ---------------------------------------------------------------------------


def _head_bytes(path: str, n: int = 4096) -> bytes:
    try:
        with open(path, "rb") as f:
            return f.read(n)
    except OSError:
        return b""


def sniff_format(path: str) -> str:
    """Identify which of the five formats ``path`` holds (by content,
    not name — a renamed artifact still classifies)."""
    head = _head_bytes(path)
    if head.startswith(MAGIC_V3):
        return ArtifactFormat.SPOOL_V3
    if head.startswith(MAGIC):
        return ArtifactFormat.SPOOL_V2
    if head.startswith(CACHE_MAGIC):
        return ArtifactFormat.CACHE_ENTRY
    if looks_like_provenance_log(path):
        return ArtifactFormat.PROVENANCE
    if looks_like_request_journal(path):
        return ArtifactFormat.JOURNAL
    if looks_like_memo_manifest(path):
        return ArtifactFormat.MEMO
    if os.path.basename(path) == MANIFEST_NAME:
        return ArtifactFormat.MANIFEST
    name = path[: -len(".tmp")] if path.endswith(".tmp") else path
    if name.endswith(".spool") and head:
        # v1 spools have no magic: a bare length-framed pickle stream.
        return ArtifactFormat.SPOOL_V1
    return ArtifactFormat.UNKNOWN


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def _load_manifest_doc(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or "completed" not in doc:
        return None
    return doc


def _classify_spool(path: str, fmt: str) -> ArtifactReport:
    report = scan_spool(path)
    if report.version == FORMAT_V1:
        return ArtifactReport(
            path, ArtifactFormat.SPOOL_V1, ArtifactState.LEGACY,
            detail=f"{report.n_valid} record(s), no integrity data",
        )
    if report.ok:
        return ArtifactReport(
            path, fmt, ArtifactState.SEALED,
            detail=f"{report.n_valid} record(s)",
        )
    return ArtifactReport(
        path, fmt, ArtifactState.CORRUPT,
        detail=(
            f"valid prefix {report.n_valid} record(s); "
            f"{report.error.reason if report.error else 'damaged'}"
        ),
    )


def _classify_cache_entry(path: str) -> ArtifactReport:
    from repro.buildcache.store import BuildCache
    from repro.errors import CacheCorruptionError

    name = os.path.basename(path)
    key = name[: -len(ENTRY_SUFFIX)] if name.endswith(ENTRY_SUFFIX) else name
    cache = BuildCache.__new__(BuildCache)
    try:
        cache._read_sealed(path, key)
    except FileNotFoundError:
        return ArtifactReport(
            path, ArtifactFormat.CACHE_ENTRY, ArtifactState.CORRUPT,
            detail="vanished mid-scan",
        )
    except CacheCorruptionError as exc:
        return ArtifactReport(
            path, ArtifactFormat.CACHE_ENTRY, ArtifactState.CORRUPT,
            detail=exc.reason,
        )
    return ArtifactReport(
        path, ArtifactFormat.CACHE_ENTRY, ArtifactState.SEALED
    )


def _classify_provenance(path: str) -> ArtifactReport:
    report = scan_provenance(path)
    if report.ok:
        return ArtifactReport(
            path, ArtifactFormat.PROVENANCE, ArtifactState.SEALED,
            detail=f"{report.n_events} event(s)",
        )
    return ArtifactReport(
        path, ArtifactFormat.PROVENANCE, ArtifactState.CORRUPT,
        detail=f"valid prefix {report.n_valid} record(s)",
    )


def _classify_journal(path: str) -> ArtifactReport:
    report = scan_journal(path)
    detail = f"{report.n_valid} record(s)"
    if report.gaps:
        detail += (
            f", {report.gaps} gap(s)/{report.lost_records} dropped "
            "(disk pressure)"
        )
    if report.ok and report.sealed:
        return ArtifactReport(
            path, ArtifactFormat.JOURNAL, ArtifactState.SEALED, detail=detail
        )
    if report.ok:
        if report.torn_tail:
            detail += " + torn tail"
        return ArtifactReport(
            path, ArtifactFormat.JOURNAL, ArtifactState.UNSEALED,
            detail=detail,
        )
    return ArtifactReport(
        path, ArtifactFormat.JOURNAL, ArtifactState.CORRUPT,
        detail=(
            f"valid prefix {report.n_valid} record(s); "
            f"{report.error.reason if report.error else 'damaged'}"
        ),
    )


def _classify_memo(path: str) -> ArtifactReport:
    report = scan_memo(path)
    if report.ok:
        return ArtifactReport(
            path, ArtifactFormat.MEMO, ArtifactState.SEALED,
            detail=(
                f"{report.n_valid} memo "
                f"entr{'y' if report.n_valid == 1 else 'ies'}"
            ),
        )
    return ArtifactReport(
        path, ArtifactFormat.MEMO, ArtifactState.CORRUPT,
        detail=(
            f"valid prefix {report.n_valid} entr"
            f"{'y' if report.n_valid == 1 else 'ies'}; "
            f"{report.error.reason if report.error else 'damaged'} "
            "(loads as a cold miss)"
        ),
    )


def _verify_manifest_entry(
    directory: str, entry: Dict[str, Any]
) -> Tuple[bool, str]:
    spool_name = entry.get("spool", "")
    spool_path = os.path.join(directory, spool_name)
    if not spool_name or not os.path.exists(spool_path):
        return False, f"pass {entry.get('pass')}: spool missing"
    report = scan_spool(spool_path)
    if not report.ok:
        return False, f"pass {entry.get('pass')}: spool damaged"
    if report.n_valid != entry.get("n_records"):
        return False, (
            f"pass {entry.get('pass')}: manifest says "
            f"{entry.get('n_records')} record(s), spool holds "
            f"{report.n_valid}"
        )
    return True, ""


def run_doctor(
    directories: List[str],
    repair: bool = False,
    metrics=None,
) -> DoctorReport:
    """Sweep ``directories`` recursively; classify every file; with
    ``repair=True`` salvage / truncate / GC as the module docstring
    describes.  Never raises on damaged artifacts — damage is the
    *input*, the report is the output."""
    doctor = DoctorReport(repaired=repair)
    manifests: List[Tuple[str, Dict[str, Any]]] = []
    memo_manifests: List[str] = []
    referenced: Dict[str, ArtifactReport] = {}
    for directory in directories:
        for root, _dirs, files in os.walk(directory):
            for name in sorted(files):
                path = os.path.join(root, name)
                art = _classify_path(path)
                doctor.artifacts.append(art)
                if art.format == ArtifactFormat.MANIFEST:
                    doc = _load_manifest_doc(path)
                    if doc is not None:
                        manifests.append((path, doc))
                if (
                    art.format == ArtifactFormat.MEMO
                    and art.state == ArtifactState.SEALED
                ):
                    memo_manifests.append(path)
                referenced[path] = art
    _mark_checkpoint_orphans(manifests, referenced)
    _mark_memo_orphans(memo_manifests, referenced)
    if repair:
        for art in doctor.artifacts:
            _repair_artifact(art, metrics=metrics)
        for path, doc in manifests:
            _repair_manifest(path, doc, referenced, metrics=metrics)
    if metrics is not None:
        metrics.counter("governance.doctor_runs").inc()
        for art in doctor.artifacts:
            metrics.counter(f"governance.doctor.{art.state}").inc()
    return doctor


def _classify_path(path: str) -> ArtifactReport:
    if path.endswith(".tmp") or ".tmp" in os.path.basename(path)[-12:]:
        # Staging debris (including the unique ``<name>.<rand>.tmp``
        # the cache writer uses): a crash between open and rename.
        fmt = sniff_format(path)
        return ArtifactReport(
            path,
            fmt if fmt != ArtifactFormat.UNKNOWN else ArtifactFormat.UNKNOWN,
            ArtifactState.UNSEALED_TMP,
            detail="staging file never renamed into place",
        )
    fmt = sniff_format(path)
    if fmt in (ArtifactFormat.SPOOL_V3, ArtifactFormat.SPOOL_V2):
        return _classify_spool(path, fmt)
    if fmt == ArtifactFormat.SPOOL_V1:
        return _classify_spool(path, fmt)
    if fmt == ArtifactFormat.CACHE_ENTRY:
        return _classify_cache_entry(path)
    if fmt == ArtifactFormat.PROVENANCE:
        return _classify_provenance(path)
    if fmt == ArtifactFormat.JOURNAL:
        return _classify_journal(path)
    if fmt == ArtifactFormat.MEMO:
        return _classify_memo(path)
    if fmt == ArtifactFormat.MANIFEST:
        doc = _load_manifest_doc(path)
        if doc is None:
            return ArtifactReport(
                path, ArtifactFormat.MANIFEST, ArtifactState.CORRUPT,
                detail="manifest does not parse",
            )
        return ArtifactReport(
            path, ArtifactFormat.MANIFEST, ArtifactState.SEALED,
            detail=f"{len(doc.get('completed', []))} pass(es) recorded",
        )
    return ArtifactReport(path, ArtifactFormat.UNKNOWN, ArtifactState.FOREIGN)


def _mark_checkpoint_orphans(
    manifests: List[Tuple[str, Dict[str, Any]]],
    referenced: Dict[str, ArtifactReport],
) -> None:
    """Pass spools living beside a manifest that does not list them are
    orphans (progress past the last durable manifest write)."""
    for manifest_path, doc in manifests:
        directory = os.path.dirname(manifest_path)
        listed = {
            entry.get("spool")
            for entry in doc.get("completed", [])
            if isinstance(entry, dict)
        }
        for path, art in referenced.items():
            if os.path.dirname(path) != directory:
                continue
            name = os.path.basename(path)
            if (
                art.format in (ArtifactFormat.SPOOL_V3,
                               ArtifactFormat.SPOOL_V2)
                and art.state == ArtifactState.SEALED
                and name.startswith("pass")
                and name.endswith(".spool")
                and not _MEMO_SPOOL_RE.match(name)
                and name not in listed
            ):
                art.state = ArtifactState.ORPHANED
                art.detail = "sealed but not listed in checkpoint manifest"


def _mark_memo_orphans(
    memo_manifests: List[str],
    referenced: Dict[str, ArtifactReport],
) -> None:
    """Generation-numbered splice spools beside a *clean* memo manifest
    that does not reference them are stale debris — the writer crashed
    between sealing a new manifest and unlinking the old generation.
    (Beside a corrupt manifest we keep every spool: salvage first.)"""
    for manifest_path in memo_manifests:
        directory = os.path.dirname(manifest_path)
        listed = set(scan_memo(manifest_path).spools)
        for path, art in referenced.items():
            if os.path.dirname(path) != directory:
                continue
            name = os.path.basename(path)
            if (
                _MEMO_SPOOL_RE.match(name)
                and art.state == ArtifactState.SEALED
                and name not in listed
            ):
                art.state = ArtifactState.ORPHANED
                art.detail = (
                    "stale memo generation not referenced by the sealed "
                    "memo manifest"
                )


def _repair_artifact(art: ArtifactReport, metrics=None) -> None:
    if art.state == ArtifactState.UNSEALED_TMP:
        # Provenance tmp logs can hold a salvageable event prefix; keep
        # the data when the sealed log never made it.
        if art.format == ArtifactFormat.PROVENANCE:
            final = art.path[: -len(".tmp")]
            if not os.path.exists(final):
                try:
                    report = salvage_provenance(
                        art.path, final, metrics=metrics
                    )
                    os.unlink(art.path)
                    art.action = (
                        "salvaged" if report.ok else "salvaged-with-loss"
                    )
                    return
                except Exception:
                    pass
        try:
            os.unlink(art.path)
            art.action = "deleted"
        except FileNotFoundError:
            # A sibling repair already consumed this path: in-place
            # salvage of the final artifact stages through the very
            # same ``.tmp`` name and renames it away.  Gone is gone.
            art.action = "deleted"
        except OSError:
            pass
        return
    if art.state == ArtifactState.ORPHANED:
        try:
            os.unlink(art.path)
            art.action = "deleted"
        except FileNotFoundError:
            art.action = "deleted"
        except OSError:
            pass
        return
    if art.state != ArtifactState.CORRUPT:
        return
    if art.format in (ArtifactFormat.SPOOL_V3, ArtifactFormat.SPOOL_V2):
        try:
            salvage_spool(art.path, art.path, metrics=metrics)
            art.action = "salvaged-with-loss"
        except Exception:
            _unlink_as_repair(art)
        return
    if art.format == ArtifactFormat.CACHE_ENTRY:
        # By design: a damaged cache entry is a rebuildable miss.
        _unlink_as_repair(art)
        return
    if art.format == ArtifactFormat.PROVENANCE:
        try:
            salvage_provenance(art.path, art.path, metrics=metrics)
            art.action = "salvaged-with-loss"
        except Exception:
            _unlink_as_repair(art)
        return
    if art.format == ArtifactFormat.JOURNAL:
        try:
            salvage_journal(art.path, art.path, metrics=metrics)
            art.action = "salvaged-with-loss"
        except Exception:
            _unlink_as_repair(art)
        return
    if art.format == ArtifactFormat.MEMO:
        # Either way the translation stays correct: a salvaged memo
        # keeps its verified prefix warm, a deleted one is a full cold
        # miss — never a wrong answer.
        try:
            salvage_memo(art.path, art.path, metrics=metrics)
            art.action = "salvaged-with-loss"
        except Exception:
            _unlink_as_repair(art)
        return
    if art.format == ArtifactFormat.MANIFEST:
        _unlink_as_repair(art)
        return
    _unlink_as_repair(art)


def _unlink_as_repair(art: ArtifactReport) -> None:
    try:
        os.unlink(art.path)
        art.action = "deleted"
    except OSError:
        pass


def _repair_manifest(
    manifest_path: str,
    doc: Dict[str, Any],
    referenced: Dict[str, ArtifactReport],
    metrics=None,
) -> None:
    """Truncate the completed-pass list at the first damaged entry and
    rewrite the manifest atomically, so ``--resume`` restarts from the
    last verified pass instead of refusing the whole directory."""
    from repro.util.atomic_write import atomic_write

    directory = os.path.dirname(manifest_path)
    completed = doc.get("completed", [])
    kept: List[Dict[str, Any]] = []
    for entry in completed:
        ok, _why = _verify_manifest_entry(directory, entry)
        if not ok:
            break
        kept.append(entry)
    if len(kept) == len(completed):
        return
    doc = dict(doc)
    doc["completed"] = kept
    with atomic_write(manifest_path, text=True, encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
    art = referenced.get(manifest_path)
    if art is not None:
        art.action = "truncated-manifest"
        art.detail = (
            f"kept {len(kept)}/{len(completed)} pass(es); resume restarts "
            "from the last verified pass"
        )
    # Spools past the truncation point are now orphans; sweep them.
    listed = {entry.get("spool") for entry in kept}
    for path, other in referenced.items():
        if os.path.dirname(path) != directory:
            continue
        name = os.path.basename(path)
        if (
            name.startswith("pass")
            and name.endswith(".spool")
            and not _MEMO_SPOOL_RE.match(name)
            and name not in listed
            and other.state
            in (ArtifactState.SEALED, ArtifactState.CORRUPT,
                ArtifactState.ORPHANED)
            and os.path.exists(path)
        ):
            # Even a just-salvaged spool goes: the manifest no longer
            # vouches for this pass, and resume re-derives it.
            _unlink_as_repair(other)
    if metrics is not None:
        metrics.counter("governance.doctor_manifest_truncations").inc()
