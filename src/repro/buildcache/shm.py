"""Shared-memory artifact plane: zero-copy fan-out of built translators.

LINGUIST-86's economics (§V) pay the overlay pipeline once per grammar
and stream translations forever — but a multiprocessing pool that
rehydrates the build cache *per worker* pays the unpickle + exec-compile
cost N times over.  The pass artifacts are immutable functions of the
grammar alone (the macro-tree-transducer reading of attributed
translations makes this precise), which makes them ideal read-only
residents of one POSIX shared-memory segment:

* the parent (batch driver or serve daemon) builds or cache-loads the
  translator once and :func:`export_translator_plane` serializes the
  big artifacts — analyzed model, pass plans, pass assignment, LALR
  tables, generated pass source, scanner DFA — into a single
  ``multiprocessing.shared_memory`` segment;
* each worker :func:`attach_translator`-s to the segment by name and
  hydrates a :class:`~repro.core.Linguist`-shaped husk
  (:class:`PlaneBuild`) with **zero disk reads and zero build-cache
  traffic**; only the cheap ``exec``-compile of the generated pass text
  runs per process;
* the segment layout reuses the sealed-entry discipline of the on-disk
  build cache (:mod:`repro.buildcache.store`): a magic + CRC'd header,
  length-prefixed CRC-framed payload frames, and an ``L86SEAL`` footer
  carrying a whole-stream CRC.  Every byte of the segment is covered by
  some checksum, so a damaged plane raises a typed
  :class:`~repro.errors.PlaneCorruptionError` — never a wrong artifact
  — and the worker falls back to the build cache;
* every created segment is registered for **guaranteed unlink**: an
  ``atexit`` hook (plus an optional chained SIGTERM handler, see
  :func:`install_signal_cleanup`) sweeps the registry so no segment
  outlives the exporter, whatever the exit path.

Segment layout (version 1)::

    +--------------------------------------------------------------+
    | header   "L86SHMP\\n" u16 version u16 flags u32 n_frames      |
    |          u64 total_bytes u32 header_crc32                     |
    +--------------------------------------------------------------+
    | frame*   u8 codec u16 name_len u64 payload_len                |
    |          name payload u32 frame_crc32                         |
    +--------------------------------------------------------------+
    | footer   "L86SEAL\\n" u64 frame_bytes u32 stream_crc32        |
    |          u32 footer_crc32                                     |
    +--------------------------------------------------------------+

All integers little-endian.  ``total_bytes`` is the sealed length (the
OS may round the segment up to a page); ``stream_crc32`` covers the
whole frame region, ``frame_crc32`` the single frame including its
length prefix and name.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import pickle
import signal
import struct
import threading
import zlib
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import PlaneCorruptionError, PlaneError

MAGIC = b"L86SHMP\n"
FOOTER_MAGIC = b"L86SEAL\n"
PLANE_FORMAT = 1

#: Segment-name prefix: ``/dev/shm`` sweeps in tests and the unlink
#: registry both key off it.
PLANE_PREFIX = "l86plane"

#: Frame payload codecs.
CODEC_RAW = 1  # bytes, verbatim
CODEC_TEXT = 2  # str, UTF-8
CODEC_PICKLE = 3  # arbitrary picklable object
CODEC_JSON = 4  # JSON-serializable object (canonical, sorted keys)

_CODECS = (CODEC_RAW, CODEC_TEXT, CODEC_PICKLE, CODEC_JSON)

_HEADER_BODY = struct.Struct("<8sHHIQ")  # magic, version, flags, n, total
_FRAME_HEAD = struct.Struct("<BHQ")  # codec, name_len, payload_len
_FOOTER_BODY = struct.Struct("<8sQI")  # magic, frame_bytes, stream_crc
_CRC = struct.Struct("<I")

HEADER_SIZE = _HEADER_BODY.size + _CRC.size  # 28
FOOTER_SIZE = _FOOTER_BODY.size + _CRC.size  # 24


def _shared_memory():
    """Import hook: one place to fail with a typed error on platforms
    without POSIX shared memory (and one seam for tests)."""
    try:
        from multiprocessing import shared_memory
    except ImportError as exc:  # pragma: no cover - platform-specific
        raise PlaneError(
            f"shared memory is unavailable on this platform: {exc}"
        ) from exc
    return shared_memory


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------


def _encode_payload(codec: int, obj: Any) -> bytes:
    if codec == CODEC_RAW:
        if not isinstance(obj, (bytes, bytearray, memoryview)):
            raise PlaneError(
                f"RAW plane frame needs bytes, got {type(obj).__name__}"
            )
        return bytes(obj)
    if codec == CODEC_TEXT:
        if not isinstance(obj, str):
            raise PlaneError(
                f"TEXT plane frame needs str, got {type(obj).__name__}"
            )
        return obj.encode("utf-8")
    if codec == CODEC_PICKLE:
        try:
            return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise PlaneError(f"plane frame is not picklable: {exc}") from exc
    if codec == CODEC_JSON:
        try:
            return json.dumps(obj, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise PlaneError(
                f"plane frame is not JSON-serializable: {exc}"
            ) from exc
    raise PlaneError(f"unknown plane frame codec {codec}")


def _decode_payload(codec: int, data: bytes, name: str, segment: str) -> Any:
    try:
        if codec == CODEC_RAW:
            return data
        if codec == CODEC_TEXT:
            return data.decode("utf-8")
        if codec == CODEC_PICKLE:
            return pickle.loads(data)
        if codec == CODEC_JSON:
            return json.loads(data.decode("utf-8"))
    except PlaneError:
        raise
    except Exception as exc:
        raise PlaneCorruptionError(
            f"plane frame {name!r} in segment {segment} failed to decode: "
            f"{exc}",
            segment=segment,
            reason="payload",
        ) from exc
    raise PlaneCorruptionError(
        f"plane frame {name!r} in segment {segment} has unknown codec "
        f"{codec}",
        segment=segment,
        reason="framing",
    )


# ---------------------------------------------------------------------------
# unlink registry: guaranteed cleanup on exit / SIGTERM
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, "ArtifactPlane"] = {}
_registry_lock = threading.Lock()
_atexit_installed = False
_signal_installed = False
_name_counter = itertools.count()


def _unlink_registered() -> None:
    with _registry_lock:
        planes = list(_REGISTRY.values())
    for plane in planes:
        plane.unlink()


def _register(plane: "ArtifactPlane") -> None:
    global _atexit_installed
    with _registry_lock:
        _REGISTRY[plane.name] = plane
        if not _atexit_installed:
            atexit.register(_unlink_registered)
            _atexit_installed = True


def install_signal_cleanup() -> bool:
    """Chain plane unlinking in front of the default SIGTERM action.

    Only installs from the main thread and only when SIGTERM is still
    at its default disposition — a host that manages its own signals
    (e.g. the serve daemon's asyncio handlers, which unlink planes in
    ``drain()``) is left alone.  Returns True when the handler is (or
    already was) installed.
    """
    global _signal_installed
    if _signal_installed:
        return True
    if threading.current_thread() is not threading.main_thread():
        return False
    try:
        current = signal.getsignal(signal.SIGTERM)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        return False
    if current is not signal.SIG_DFL:
        return False

    def _on_sigterm(signum, frame):  # pragma: no cover - exercised via CLI
        _unlink_registered()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)

    signal.signal(signal.SIGTERM, _on_sigterm)
    _signal_installed = True
    return True


def plane_segments() -> list:
    """Names of live plane segments on this host (``/dev/shm`` sweep);
    empty where the segment directory is not exposed as a filesystem."""
    try:
        return sorted(
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(PLANE_PREFIX)
        )
    except OSError:
        return []


def _segment_name() -> str:
    return f"{PLANE_PREFIX}_{os.getpid()}_{next(_name_counter)}"


# ---------------------------------------------------------------------------
# creation
# ---------------------------------------------------------------------------


class ArtifactPlane:
    """Creator-side handle on one sealed segment.

    The creator owns the segment's lifetime: :meth:`unlink` (idempotent;
    also runs from the atexit registry and ``with`` exit) removes the
    name from the system so attached readers keep working until they
    close but no new attach can occur.
    """

    def __init__(self, shm, used_bytes: int, n_frames: int):
        self._shm = shm
        self.name = shm.name.lstrip("/")
        #: Sealed length; ``shm.size`` may be page-rounded above it.
        self.used_bytes = used_bytes
        self.n_frames = n_frames
        self._unlinked = False

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        with _registry_lock:
            _REGISTRY.pop(self.name, None)
        self.close()
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def __enter__(self) -> "ArtifactPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def create_plane(
    frames: Mapping[str, Tuple[int, Any]],
    name: Optional[str] = None,
    metrics=None,
) -> ArtifactPlane:
    """Serialize ``frames`` (``{name: (codec, object)}``) into a fresh
    sealed shared-memory segment and register it for unlink-on-exit."""
    shared_memory = _shared_memory()
    blobs = []
    for frame_name, (codec, obj) in frames.items():
        if codec not in _CODECS:
            raise PlaneError(
                f"unknown plane frame codec {codec} for {frame_name!r}"
            )
        name_bytes = frame_name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise PlaneError(f"plane frame name too long: {frame_name!r}")
        payload = _encode_payload(codec, obj)
        body = (
            _FRAME_HEAD.pack(codec, len(name_bytes), len(payload))
            + name_bytes
            + payload
        )
        blobs.append(body + _CRC.pack(zlib.crc32(body)))
    frame_region = b"".join(blobs)
    total = HEADER_SIZE + len(frame_region) + FOOTER_SIZE
    header_body = _HEADER_BODY.pack(MAGIC, PLANE_FORMAT, 0, len(blobs), total)
    footer_body = _FOOTER_BODY.pack(
        FOOTER_MAGIC, len(frame_region), zlib.crc32(frame_region)
    )
    image = (
        header_body
        + _CRC.pack(zlib.crc32(header_body))
        + frame_region
        + footer_body
        + _CRC.pack(zlib.crc32(footer_body))
    )
    shm = None
    last_error: Optional[BaseException] = None
    for attempt in range(16):
        candidate = name if name is not None else _segment_name()
        try:
            shm = shared_memory.SharedMemory(
                name=candidate, create=True, size=total
            )
            break
        except FileExistsError as exc:
            last_error = exc
            if name is not None:
                raise PlaneError(
                    f"shared-memory segment {name!r} already exists",
                    segment=name,
                ) from exc
        except OSError as exc:
            raise PlaneError(
                f"could not create a {total}-byte shared-memory segment: "
                f"{exc}",
                segment=candidate,
            ) from exc
    if shm is None:  # pragma: no cover - 16 name collisions
        raise PlaneError(
            "could not find a free shared-memory segment name"
        ) from last_error
    shm.buf[:total] = image
    plane = ArtifactPlane(shm, used_bytes=total, n_frames=len(blobs))
    _register(plane)
    if metrics is not None:
        metrics.counter("batch.shm.export").inc()
        metrics.counter("batch.shm.export_bytes").inc(total)
        metrics.gauge("batch.shm.frames").set(len(blobs))
    return plane


# ---------------------------------------------------------------------------
# attachment
# ---------------------------------------------------------------------------


class AttachedPlane:
    """Reader-side handle: eagerly validated index, lazily decoded frames.

    Attachment verifies the header, footer, whole-stream CRC, and every
    frame's own CRC *before* returning, so :meth:`get` can never hand
    back bytes that differ from what the exporter sealed.
    """

    def __init__(self, shm, index: Dict[str, Tuple[int, int, int]]):
        self._shm = shm
        self.name = shm.name.lstrip("/")
        self._index = index

    def names(self) -> list:
        return sorted(self._index)

    def __contains__(self, frame_name: str) -> bool:
        return frame_name in self._index

    def get(self, frame_name: str) -> Any:
        entry = self._index.get(frame_name)
        if entry is None:
            raise PlaneError(
                f"plane segment {self.name} has no frame {frame_name!r} "
                f"(frames: {', '.join(self.names()) or 'none'})",
                segment=self.name,
            )
        codec, offset, length = entry
        data = bytes(self._shm.buf[offset : offset + length])
        return _decode_payload(codec, data, frame_name, self.name)

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "AttachedPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _validate_image(buf, segment: str) -> Dict[str, Tuple[int, int, int]]:
    """Verify every checksum in the segment; return the frame index
    ``{name: (codec, payload_offset, payload_length)}``."""

    def corrupt(reason: str, detail: str) -> PlaneCorruptionError:
        return PlaneCorruptionError(
            f"plane segment {segment} is corrupt ({reason}): {detail}",
            segment=segment,
            reason=reason,
        )

    if len(buf) < HEADER_SIZE + FOOTER_SIZE:
        raise corrupt("truncated", f"segment holds only {len(buf)} bytes")
    header_body = bytes(buf[: _HEADER_BODY.size])
    (header_crc,) = _CRC.unpack_from(buf, _HEADER_BODY.size)
    if zlib.crc32(header_body) != header_crc:
        raise corrupt("header", "header checksum mismatch")
    magic, version, _flags, n_frames, total = _HEADER_BODY.unpack(header_body)
    if magic != MAGIC:
        raise corrupt("header", f"bad magic {magic!r}")
    if version != PLANE_FORMAT:
        raise corrupt(
            "version", f"format {version}, expected {PLANE_FORMAT}"
        )
    if total < HEADER_SIZE + FOOTER_SIZE or total > len(buf):
        raise corrupt(
            "truncated",
            f"sealed length {total} outside the {len(buf)}-byte segment",
        )
    footer_at = total - FOOTER_SIZE
    footer_body = bytes(buf[footer_at : footer_at + _FOOTER_BODY.size])
    (footer_crc,) = _CRC.unpack_from(buf, footer_at + _FOOTER_BODY.size)
    if zlib.crc32(footer_body) != footer_crc:
        raise corrupt("footer", "footer checksum mismatch")
    fmagic, frame_bytes, stream_crc = _FOOTER_BODY.unpack(footer_body)
    if fmagic != FOOTER_MAGIC:
        raise corrupt("footer", f"bad footer magic {fmagic!r}")
    frame_region = bytes(buf[HEADER_SIZE:footer_at])
    if frame_bytes != len(frame_region):
        raise corrupt(
            "framing",
            f"footer claims {frame_bytes} frame bytes, "
            f"layout holds {len(frame_region)}",
        )
    if zlib.crc32(frame_region) != stream_crc:
        raise corrupt("checksum", "frame-stream checksum mismatch")

    index: Dict[str, Tuple[int, int, int]] = {}
    offset = HEADER_SIZE
    for i in range(n_frames):
        if offset + _FRAME_HEAD.size > footer_at:
            raise corrupt("framing", f"frame {i} header overruns the seal")
        codec, name_len, payload_len = _FRAME_HEAD.unpack_from(buf, offset)
        name_at = offset + _FRAME_HEAD.size
        payload_at = name_at + name_len
        crc_at = payload_at + payload_len
        if crc_at + _CRC.size > footer_at:
            raise corrupt("framing", f"frame {i} payload overruns the seal")
        body = bytes(buf[offset:crc_at])
        (frame_crc,) = _CRC.unpack_from(buf, crc_at)
        if zlib.crc32(body) != frame_crc:
            raise corrupt("checksum", f"frame {i} checksum mismatch")
        try:
            frame_name = bytes(buf[name_at:payload_at]).decode("utf-8")
        except UnicodeDecodeError:
            raise corrupt("framing", f"frame {i} name is not UTF-8") from None
        if frame_name in index:
            raise corrupt("framing", f"duplicate frame name {frame_name!r}")
        index[frame_name] = (codec, payload_at, payload_len)
        offset = crc_at + _CRC.size
    if offset != footer_at:
        raise corrupt(
            "framing",
            f"{footer_at - offset} unclaimed bytes between the last frame "
            "and the seal",
        )
    return index


_tracker_lock = threading.Lock()


class _suppressed_tracker_registration:
    """Keep the resource tracker out of segment *attachment*.

    CPython's tracker registers a POSIX segment again on every attach
    (bpo-38119) and unlinks it when the attaching process exits — under
    ``fork`` all workers share the parent's tracker process, so one
    worker's exit would yank the plane out from under the exporter and
    every sibling.  Python 3.13's ``track=False`` is the sanctioned fix;
    until then, registration is suppressed for the duration of the
    attach.  The *creator's* registration is untouched and remains the
    crash safety net.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._tracker = resource_tracker
        _tracker_lock.acquire()
        self._original = resource_tracker.register

        def _register(rt_name, rtype):
            if rtype == "shared_memory":
                return None
            return self._original(rt_name, rtype)

        resource_tracker.register = _register
        return self

    def __exit__(self, *exc):
        self._tracker.register = self._original
        _tracker_lock.release()


def attach_plane(name: str) -> AttachedPlane:
    """Attach (read-only use) to an existing plane segment by name.

    Raises :class:`~repro.errors.PlaneError` when no such segment
    exists (already unlinked / exporter gone) and
    :class:`~repro.errors.PlaneCorruptionError` when any integrity
    check fails.
    """
    shared_memory = _shared_memory()
    try:
        with _suppressed_tracker_registration():
            shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError as exc:
        raise PlaneError(
            f"no shared-memory artifact plane named {name!r} "
            "(unlinked, or the exporting process is gone)",
            segment=name,
        ) from exc
    except OSError as exc:
        raise PlaneError(
            f"could not attach to shared-memory segment {name!r}: {exc}",
            segment=name,
        ) from exc
    try:
        index = _validate_image(shm.buf, name)
    except Exception:
        shm.close()
        raise
    return AttachedPlane(shm, index)


# ---------------------------------------------------------------------------
# translator export / attach
# ---------------------------------------------------------------------------

#: Frame names of the translator plane schema (version 1).
META_FRAME = "meta"


def export_translator_plane(
    translator, metrics=None, tracer=None, name: Optional[str] = None
) -> ArtifactPlane:
    """Seal a built translator's read-only artifacts into one segment.

    The parent calls this once after :func:`repro.batch.build_batch_translator`;
    workers hydrate with :func:`attach_translator`.  The exported frames
    are exactly the objects the build cache would have made each worker
    unpickle from disk — model, plans, assignment, LALR tables, scanner
    DFA, and the generated pass source text.
    """
    linguist = translator.linguist
    artifacts = list(linguist.generated.artifacts)
    frames: Dict[str, Tuple[int, Any]] = {
        META_FRAME: (
            CODEC_JSON,
            {
                "format": PLANE_FORMAT,
                "grammar": linguist.ag.name,
                "backend": translator.backend,
                "n_passes": len(linguist.plans),
            },
        ),
        "ag": (CODEC_PICKLE, linguist.ag),
        "plans": (CODEC_PICKLE, linguist.plans),
        "assignment": (CODEC_PICKLE, linguist.assignment),
        "tables": (CODEC_PICKLE, linguist.parse_tables()),
        "code.meta": (
            CODEC_JSON,
            [
                [a.pass_k, a.husk_bytes, a.sem_bytes, a.n_subsumed]
                for a in artifacts
            ],
        ),
    }
    for artifact in artifacts:
        frames[f"code.{artifact.pass_k}"] = (CODEC_TEXT, artifact.text)
    scanner = getattr(translator, "scanner", None)
    if scanner is not None and scanner.dfa is not None:
        frames["dfa"] = (CODEC_PICKLE, scanner.dfa)
    plane = create_plane(frames, name=name, metrics=metrics)
    if tracer is not None:
        tracer.instant(
            "batch.shm.export",
            cat="batch",
            segment=plane.name,
            bytes=plane.used_bytes,
            frames=plane.n_frames,
        )
    return plane


class PlaneBuild:
    """A :class:`~repro.core.Linguist`-shaped husk hydrated from a plane.

    Carries exactly the attributes :class:`~repro.core.Translator`
    reads — ``ag``, ``plans``, ``assignment``, ``generated``,
    ``parse_tables()``, plus the telemetry/cache slots — and the
    ``scanner_dfa`` fast path that lets
    :meth:`~repro.core.Translator._make_scanner` skip NFA construction
    without touching a build cache.
    """

    #: Not a cache rehydration: no disk was read.
    from_cache = False
    #: Marks hydration from a shared-memory plane.
    from_plane = True

    def __init__(
        self,
        ag,
        plans,
        assignment,
        generated,
        tables,
        scanner_dfa=None,
        metrics=None,
        tracer=None,
    ):
        self.ag = ag
        self.plans = plans
        self.assignment = assignment
        self.generated = generated
        self.scanner_dfa = scanner_dfa
        self.cache = None
        self.metrics = metrics
        self.tracer = tracer
        self._tables = tables

    def parse_tables(self):
        return self._tables


def attach_translator(spec, metrics=None, tracer=None):
    """Hydrate a runnable translator from the plane a
    :class:`~repro.batch.WorkerSpec` names in ``shm_plane``.

    No build cache is opened and no disk is read: every artifact comes
    out of the shared segment, and the generated pass text is
    ``exec``-compiled directly from the shared bytes.  Raises
    :class:`~repro.errors.PlaneError` /
    :class:`~repro.errors.PlaneCorruptionError` — callers fall back to
    :func:`repro.batch.build_batch_translator`.
    """
    from repro.apt.build import default_intrinsics
    from repro.core.linguist import Translator
    from repro.evalgen.codegen_py import GeneratedEvaluator
    from repro.grammars import scanner_and_library

    segment = getattr(spec, "shm_plane", None)
    if not segment:
        raise PlaneError(
            f"worker spec for grammar {spec.grammar_name!r} names no "
            "shared-memory plane"
        )
    with attach_plane(segment) as plane:
        ag = plane.get("ag")
        plans = plane.get("plans")
        assignment = plane.get("assignment")
        tables = plane.get("tables")
        code_meta = plane.get("code.meta")
        pass_texts = [
            (
                pass_k,
                plane.get(f"code.{pass_k}"),
                husk_bytes,
                sem_bytes,
                n_subsumed,
            )
            for pass_k, husk_bytes, sem_bytes, n_subsumed in code_meta
        ]
        scanner_dfa = plane.get("dfa") if "dfa" in plane else None
    generated = GeneratedEvaluator.from_pass_texts(ag, plans, pass_texts)
    build = PlaneBuild(
        ag,
        plans,
        assignment,
        generated,
        tables,
        scanner_dfa=scanner_dfa,
        metrics=metrics,
        tracer=tracer,
    )
    scanner_spec, library = scanner_and_library(spec.grammar_name)
    translator = Translator(
        build, scanner_spec, library, spec.backend, default_intrinsics
    )
    translator.spawn_spec = spec
    if metrics is not None:
        metrics.counter("batch.shm.attach").inc()
    if tracer is not None:
        tracer.instant("batch.shm.attach", cat="batch", segment=segment)
    return translator
