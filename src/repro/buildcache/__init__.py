"""Persistent grammar-artifact cache (content-addressed, on disk).

LINGUIST-86's value proposition (§V) is that the expensive work —
LALR table construction, scanner DFA generation, pass planning, static
subsumption, and production-procedure code generation — happens **once
per grammar**, while translating inputs stays cheap and streaming.
This package makes "once per grammar" literal across *process
lifetimes*: build products are sealed into a content-addressed on-disk
store keyed by a canonical hash of (AG model + scanner spec + pass
strategy + cache format version), and a warm
:class:`~repro.core.Linguist` / :class:`~repro.core.Translator`
construction skips straight to ``exec``-compiling cached generated
text.

* :mod:`repro.buildcache.key` — canonical serializations and SHA-256
  content addresses (:func:`grammar_key`, :func:`scanner_key`, plus the
  parse-free :func:`source_key` alias level).
* :mod:`repro.buildcache.store` — :class:`BuildCache`, the sealed
  (header + CRC32 + atomic-rename) entry store with
  corruption-is-a-miss semantics and ``cache.*`` telemetry.
* :mod:`repro.buildcache.shm` — the shared-memory **artifact plane**:
  the same sealed-frame discipline applied to one POSIX shared-memory
  segment, so batch/serve worker processes attach to a built
  translator zero-copy instead of rehydrating the cache per worker.

See ``docs/performance.md`` for the cache layout, key derivation, and
invalidation rules.
"""

from repro.buildcache.key import (
    CACHE_FORMAT_VERSION,
    canonical_grammar_text,
    canonical_scanner_text,
    canonical_strategy_text,
    grammar_key,
    scanner_key,
    source_key,
)
from repro.buildcache.store import (
    CACHE_DIR_ENV,
    BuildCache,
    CacheEntryInfo,
    default_cache_root,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_DIR_ENV",
    "BuildCache",
    "CacheEntryInfo",
    "canonical_grammar_text",
    "canonical_scanner_text",
    "canonical_strategy_text",
    "default_cache_root",
    "grammar_key",
    "scanner_key",
    "source_key",
]
