"""The on-disk artifact store: sealed, checksummed, atomically written.

One cache *entry* is one file under ``<root>/<kind>/<key>.l86c`` whose
layout reuses the sealed-header + CRC discipline of the durable spool
format v2 (``apt/storage.py``)::

    header   "L86BCHE\\n" magic + u16 format version + u16 flags
             + 64-byte ASCII key                                (76 B)
    payload  one pickled blob
    footer   "L86SEAL\\n" magic + u64 payload_bytes
             + u32 payload_crc32 + u32 footer_crc32             (24 B)

The header echoes the content-address the entry was stored under, so a
renamed or mis-hashed file can never satisfy a lookup; the footer seals
the payload length and CRC32, and carries a CRC32 of itself.  Writes
stream into a writer-unique ``<path>.*.tmp``, flush + fsync, then
atomically rename — an entry is either completely present or absent,
never half-sealed, even when concurrent processes store the same key.

Every integrity failure raises a typed
:class:`~repro.errors.CacheCorruptionError` *internally*;
:meth:`BuildCache.load` translates it into a transparent miss — the
damaged file is unlinked, ``cache.corrupt`` is counted, and the caller
rebuilds — so a corrupt cache can degrade performance but never
correctness or availability.

Telemetry: with a :class:`~repro.obs.MetricsRegistry` attached (at
construction or per call), the store counts ``cache.hit``,
``cache.miss``, ``cache.write``, ``cache.corrupt`` (plus the same
per-kind, e.g. ``cache.grammar.hit``) and emits ``cache.*`` trace
instants; see ``docs/performance.md``.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import CacheCorruptionError
from repro.util.atomic_write import atomic_write

MAGIC = b"L86BCHE\n"
FOOTER_MAGIC = b"L86SEAL\n"
_HEADER = struct.Struct("<8sHH64s")
_FOOTER = struct.Struct("<8sQII")
_U32 = struct.Struct("<I")

#: On-disk entry format version (independent of the *key* format
#: version in ``key.py``; both must match for a hit).
ENTRY_FORMAT = 1

#: File extension of sealed cache entries.
ENTRY_SUFFIX = ".l86c"

#: Environment variable naming the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-linguist``,
    else ``~/.cache/repro-linguist``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-linguist")


@dataclass
class CacheEntryInfo:
    """Metadata of one sealed entry (``BuildCache.entries``)."""

    kind: str
    key: str
    path: str
    file_bytes: int
    #: Last-used clock (``st_mtime``): stores and load-hits both touch
    #: it, so governance eviction can drop least-recently-used first.
    mtime: float = 0.0


class BuildCache:
    """Content-addressed store of per-grammar build artifacts.

    ``metrics``/``tracer`` attached here are the defaults; ``load`` and
    ``store`` accept per-call overrides so a :class:`repro.core.Linguist`
    can charge its own registry.
    """

    def __init__(self, root: Optional[str] = None, metrics=None, tracer=None):
        self.root = root if root is not None else default_cache_root()
        self.metrics = metrics
        self.tracer = tracer

    # -- bookkeeping -------------------------------------------------------

    def path_for(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, key + ENTRY_SUFFIX)

    def _count(self, event: str, kind: str, metrics) -> None:
        metrics = metrics if metrics is not None else self.metrics
        if metrics is not None:
            metrics.counter(f"cache.{event}").inc()
            metrics.counter(f"cache.{kind}.{event}").inc()

    def _instant(self, event: str, kind: str, key: str, tracer, **fields) -> None:
        tracer = tracer if tracer is not None else self.tracer
        if tracer is not None:
            tracer.instant(
                f"cache.{event}", cat="cache", kind=kind, key=key, **fields
            )

    # -- reading -----------------------------------------------------------

    def load(
        self,
        kind: str,
        key: str,
        metrics=None,
        tracer=None,
    ) -> Optional[Dict[str, Any]]:
        """The payload stored under ``(kind, key)``, or None on a miss.

        A corrupt entry is unlinked and reported as a miss (with a
        ``cache.corrupt`` count and a ``cache.corruption`` trace
        instant) — the caller rebuilds and re-stores; corruption can
        never surface as a crash or a wrong payload.
        """
        path = self.path_for(kind, key)
        try:
            payload = self._read_sealed(path, key)
        except FileNotFoundError:
            self._count("miss", kind, metrics)
            self._instant("miss", kind, key, tracer)
            return None
        except CacheCorruptionError as exc:
            self._count("corrupt", kind, metrics)
            self._count("miss", kind, metrics)
            self._instant(
                "corruption", kind, key, tracer,
                path=path, reason=exc.reason,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._count("hit", kind, metrics)
        self._instant("hit", kind, key, tracer, nbytes=os.path.getsize(path))
        try:
            # Touch the entry so mtime is a last-used clock; governance
            # eviction (``repro cache gc``) drops least-recently-used
            # entries first.
            os.utime(path)
        except OSError:
            pass
        return payload

    def _read_sealed(self, path: str, want_key: str) -> Dict[str, Any]:
        with open(path, "rb") as f:
            size = f.seek(0, os.SEEK_END)
            f.seek(0)
            if size < _HEADER.size + _FOOTER.size:
                raise CacheCorruptionError(
                    f"cache entry too short ({size} bytes): {path}",
                    path=path, reason="truncated",
                )
            magic, version, _flags, key_bytes = _HEADER.unpack(
                f.read(_HEADER.size)
            )
            if magic != MAGIC:
                raise CacheCorruptionError(
                    f"bad cache magic in {path}", path=path, reason="header"
                )
            if version != ENTRY_FORMAT:
                raise CacheCorruptionError(
                    f"unsupported cache entry format v{version} in {path}",
                    path=path, reason="version",
                )
            stored_key = key_bytes.rstrip(b"\x00").decode("ascii", "replace")
            if stored_key != want_key:
                raise CacheCorruptionError(
                    f"cache entry key mismatch in {path} "
                    f"(sealed {stored_key[:12]}…, looked up {want_key[:12]}…)",
                    path=path, reason="key",
                )
            f.seek(size - _FOOTER.size)
            raw_footer = f.read(_FOOTER.size)
            fmagic, payload_bytes, payload_crc, footer_crc = _FOOTER.unpack(
                raw_footer
            )
            if fmagic != FOOTER_MAGIC:
                raise CacheCorruptionError(
                    f"missing footer seal in {path} "
                    "(truncated file or crash before finalize)",
                    path=path, reason="footer",
                )
            if zlib.crc32(raw_footer[: _FOOTER.size - 4]) != footer_crc:
                raise CacheCorruptionError(
                    f"footer checksum mismatch in {path}",
                    path=path, reason="footer",
                )
            if _HEADER.size + payload_bytes + _FOOTER.size != size:
                raise CacheCorruptionError(
                    f"footer inconsistent with file size in {path} "
                    f"({size} bytes on disk, "
                    f"{_HEADER.size + payload_bytes + _FOOTER.size} sealed)",
                    path=path, reason="footer",
                )
            f.seek(_HEADER.size)
            blob = f.read(payload_bytes)
            if len(blob) != payload_bytes:
                raise CacheCorruptionError(
                    f"payload truncated in {path}", path=path, reason="truncated"
                )
            if zlib.crc32(blob) != payload_crc:
                raise CacheCorruptionError(
                    f"payload checksum mismatch in {path} "
                    "(bit rot or torn write)",
                    path=path, reason="checksum",
                )
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # unpicklable despite a valid checksum
            raise CacheCorruptionError(
                f"cache payload does not unpickle in {path}: {exc}",
                path=path, reason="payload",
            ) from exc
        if not isinstance(payload, dict):
            raise CacheCorruptionError(
                f"cache payload is not a mapping in {path}",
                path=path, reason="payload",
            )
        return payload

    # -- writing -----------------------------------------------------------

    def store(
        self,
        kind: str,
        key: str,
        payload: Dict[str, Any],
        metrics=None,
        tracer=None,
    ) -> str:
        """Seal ``payload`` under ``(kind, key)`` atomically; returns the path."""
        path = self.path_for(kind, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        key_bytes = key.encode("ascii")
        if len(key_bytes) > 64:
            raise ValueError(f"cache key too long ({len(key_bytes)} > 64)")
        footer_body = _FOOTER.pack(
            FOOTER_MAGIC, len(blob), zlib.crc32(blob), 0
        )[: _FOOTER.size - 4]
        # The tmp name must be unique per writer (``unique=True``):
        # concurrent processes (e.g. restarted serve/batch workers
        # racing to rebuild the same grammar after a cache clear) may
        # store the same key at once, and a shared ``<path>.tmp`` would
        # let one writer rename the other's half-written file into
        # place.  Same-key stores are byte-identical by content
        # addressing, so last-rename-wins is safe.
        with atomic_write(path, unique=True) as f:
            f.write(_HEADER.pack(MAGIC, ENTRY_FORMAT, 0, key_bytes.ljust(64, b"\x00")))
            f.write(blob)
            f.write(footer_body)
            f.write(_U32.pack(zlib.crc32(footer_body)))
        self._count("write", kind, metrics)
        self._instant(
            "write", kind, key, tracer,
            nbytes=_HEADER.size + len(blob) + _FOOTER.size,
        )
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> List[CacheEntryInfo]:
        """Metadata of every sealed entry currently on disk."""
        out: List[CacheEntryInfo] = []
        if not os.path.isdir(self.root):
            return out
        for kind in sorted(os.listdir(self.root)):
            kind_dir = os.path.join(self.root, kind)
            if not os.path.isdir(kind_dir):
                continue
            for name in sorted(os.listdir(kind_dir)):
                if not name.endswith(ENTRY_SUFFIX):
                    continue
                path = os.path.join(kind_dir, name)
                try:
                    st = os.stat(path)
                except FileNotFoundError:
                    continue  # racing eviction/clear in another process
                out.append(
                    CacheEntryInfo(
                        kind=kind,
                        key=name[: -len(ENTRY_SUFFIX)],
                        path=path,
                        file_bytes=st.st_size,
                        mtime=st.st_mtime,
                    )
                )
        return out

    def clear(self) -> int:
        """Remove every entry; returns the number of files unlinked."""
        n = 0
        for entry in self.entries():
            try:
                os.unlink(entry.path)
                n += 1
            except OSError:
                pass
        return n
