"""Canonical content-addressed keys for the grammar-artifact cache.

LINGUIST-86's per-grammar build products — LALR tables, scanner DFA,
pass plans, subsumption decisions, generated pass-module text — are a
pure function of

* the **attribute-grammar model** (symbols, attributes, productions,
  semantic functions),
* the **scanner specification** of the described language,
* the **pass strategy** (first-pass direction, subsumption config,
  dead-attribute suppression, circularity checking), and
* the **cache format version** (so a format change can never replay a
  stale payload into newer code).

This module derives a canonical text for each ingredient and hashes it
with SHA-256.  Canonical means *serialization-order independent where
order is semantically irrelevant* and *order-sensitive where it is
not*:

* symbols and their attribute dictionaries are sorted by name (two
  programs declaring the same grammar in different symbol order
  collide);
* semantic functions within a production are sorted by their rendered
  text (attribute grammars are declarative — function order carries no
  meaning);
* productions keep their declared order (production indices feed the
  LALR construction, so reordering productions is a *different*
  grammar and must change the key);
* scanner rules keep their declared order (earlier rules win ties).

Two key levels exist:

* :func:`grammar_key` / :func:`scanner_key` — the content address of
  the canonical *model*; what the payload files are named after.
* :func:`source_key` — a cheap alias over the raw ``.ag`` source text
  + strategy, letting a warm start skip even parsing.  Alias entries
  only ever *point at* a model key (see ``store.py``), so differently
  formatted but equal grammars still share one payload.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import List, Optional, Union

from repro.ag.model import AttributeGrammar
from repro.evalgen.subsumption import SubsumptionConfig
from repro.passes.schedule import Direction

#: Bump whenever the payload layout, the generated-code shape, or the
#: canonicalization itself changes incompatibly.
#: 2: payloads carry fusion metadata; the strategy text gained the
#: pass-fusion flag (plans built under fusion are shaped differently).
#: 3: SUBSUME plan actions carry their subsumption group (needed by
#: provenance recording); older pickled plans lack it.
CACHE_FORMAT_VERSION = 3


# ---------------------------------------------------------------------------
# canonical texts
# ---------------------------------------------------------------------------


def canonical_grammar_text(ag: AttributeGrammar) -> str:
    """A canonical, serialization-order-independent rendering of the model."""
    lines: List[str] = [
        f"grammar {ag.name}",
        f"start {ag.start}",
    ]
    for sym in sorted(ag.symbols.values(), key=lambda s: s.name):
        attrs = ",".join(
            f"{a.name}:{a.kind.value}:{a.type_name}"
            for a in sorted(sym.attributes.values(), key=lambda a: a.name)
        )
        lines.append(f"symbol {sym.name} {sym.kind.value} [{attrs}]")
    for prod in ag.productions:
        lines.append(
            f"prod {prod.index} {prod.lhs} = {' '.join(prod.rhs)}"
            f" limb={prod.limb}"
        )
        # Semantic-function order within a production is semantically
        # irrelevant (the grammar is declarative): sort by rendered text.
        rendered = sorted(
            f"  fn {','.join(str(t) for t in fn.targets)} = {fn.expr}"
            + (" [implicit]" if fn.implicit else "")
            for fn in prod.functions
        )
        lines.extend(rendered)
    return "\n".join(lines)


def canonical_strategy_text(
    first_direction: Union[Direction, str] = Direction.R2L,
    subsumption: Optional[SubsumptionConfig] = None,
    dead_attribute_suppression: bool = True,
    check_circularity: bool = True,
    fuse_passes: bool = True,
) -> str:
    """Canonical rendering of the pass strategy (the build *recipe*)."""
    direction = (
        first_direction.value
        if isinstance(first_direction, Direction)
        else str(first_direction)
    )
    cfg = subsumption or SubsumptionConfig()
    cfg_text = ",".join(
        f"{name}={value!r}" for name, value in sorted(asdict(cfg).items())
    )
    return (
        f"direction={direction}"
        f" subsumption=({cfg_text})"
        f" deadness={bool(dead_attribute_suppression)}"
        f" circularity={bool(check_circularity)}"
        f" fusion={bool(fuse_passes)}"
    )


def canonical_scanner_text(spec) -> str:
    """Canonical rendering of a :class:`~repro.regex.generator.ScannerSpec`.

    Rule order is preserved (earlier rules win ties); the regex ASTs
    render through their deterministic ``repr``.  Keyword and kind sets
    are sorted.
    """
    lines: List[str] = []
    for kind, regex in spec.rules:
        lines.append(
            f"rule {kind} {regex!r}"
            f" skip={kind in spec.skip}"
            f" intern={kind in spec.intern_kinds}"
        )
    for lexeme in sorted(spec.keywords):
        lines.append(f"keyword {lexeme} -> {spec.keywords[lexeme]}")
    lines.append(f"keyword_kinds {sorted(spec.keyword_kinds)}")
    lines.append(f"intern_kinds {sorted(spec.intern_kinds)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def grammar_key(
    ag: AttributeGrammar,
    first_direction: Union[Direction, str] = Direction.R2L,
    subsumption: Optional[SubsumptionConfig] = None,
    dead_attribute_suppression: bool = True,
    check_circularity: bool = True,
    fuse_passes: bool = True,
) -> str:
    """Content address of the per-grammar build artifacts."""
    return _digest(
        "grammar-artifacts",
        f"format={CACHE_FORMAT_VERSION}",
        canonical_grammar_text(ag),
        canonical_strategy_text(
            first_direction,
            subsumption,
            dead_attribute_suppression,
            check_circularity,
            fuse_passes,
        ),
    )


def scanner_key(spec) -> str:
    """Content address of a generated scanner DFA."""
    return _digest(
        "scanner-dfa",
        f"format={CACHE_FORMAT_VERSION}",
        canonical_scanner_text(spec),
    )


def source_key(
    source: str,
    first_direction: Union[Direction, str] = Direction.R2L,
    subsumption: Optional[SubsumptionConfig] = None,
    dead_attribute_suppression: bool = True,
    check_circularity: bool = True,
    fuse_passes: bool = True,
) -> str:
    """Alias key over the raw ``.ag`` source text + strategy.

    Cheap to compute (no parsing); alias entries point at a
    :func:`grammar_key`, so equal grammars spelled differently still
    share one payload file.
    """
    return _digest(
        "source-alias",
        f"format={CACHE_FORMAT_VERSION}",
        source,
        canonical_strategy_text(
            first_direction,
            subsumption,
            dead_attribute_suppression,
            check_circularity,
            fuse_passes,
        ),
    )
