"""Deterministic fault injection for the storage-and-recovery subsystem.

See :mod:`repro.testing.faults` — the robustness suite composes a
seeded :class:`~repro.testing.faults.FaultPlan` with any spool to
exercise torn writes, bit rot, truncation, short reads, and close-time
I/O errors without touching real failing hardware.
"""

from repro.testing.faults import (
    DIE_MARKER_ENV,
    FaultInjected,
    FaultMode,
    FaultPlan,
    FaultyFile,
    FaultySpool,
    FilesystemFaultPlan,
    FsFaultMode,
    HANG_MARKER_ENV,
    HANG_SECONDS_ENV,
    bit_flip,
    maybe_hang,
    tear_tail,
    truncate_file,
)

__all__ = [
    "DIE_MARKER_ENV",
    "FaultInjected",
    "FaultMode",
    "FaultPlan",
    "FaultyFile",
    "FaultySpool",
    "FilesystemFaultPlan",
    "FsFaultMode",
    "HANG_MARKER_ENV",
    "HANG_SECONDS_ENV",
    "bit_flip",
    "maybe_hang",
    "tear_tail",
    "truncate_file",
]
