"""Deterministic fault injection for spools and their backing files.

LINGUIST-86 lives and dies by sequential secondary storage (§II, §IV):
two intermediate files per pass, written postfix and read backwards.
Real storage fails, so robustness must be *testable* — this module
provides repeatable failure scenarios without touching real disks:

* :class:`FaultPlan` — a seeded description of *one* failure: the mode
  (torn write, bit flip, truncation, short read, fail-after-N-records,
  ``EIO`` on close) plus mode parameters, all derived deterministically
  from the seed so a failing run reproduces byte-for-byte.
* :class:`FaultySpool` — wraps any :class:`~repro.apt.storage.Spool`
  and fires the plan's *write-side* faults during ``append``/
  ``finalize``/``close`` and its *read-side* faults during iteration.
* :class:`FaultyFile` — a binary-file proxy applying torn writes and
  short reads at the file-object layer (for code that opens files
  directly).
* :func:`bit_flip` / :func:`truncate_file` / :func:`tear_tail` — the
  post-hoc on-disk corruptions, usable against any finalized
  :class:`~repro.apt.storage.DiskSpool` path.

Beyond single-spool faults, :class:`FilesystemFaultPlan` injects
*filesystem-level* chaos — ENOSPC once a byte budget is spent, EIO on
the Nth write, EMFILE on open, failing ``fsync`` or ``rename`` — into
**every** durable writer at once by patching the three hook functions
in :mod:`repro.util.atomic_write` (the single choke point all sealed
formats write through).  ``plan.install()`` is a context manager;
inside it any spool finalize, cache store, provenance seal, journal
append, or checkpoint manifest write can fail at the seeded point, and
the robustness suite asserts the aftermath is always classifiable by
``repro doctor``.

Every injected failure raises :class:`FaultInjected` (an ``OSError``,
``errno.EIO`` unless the mode dictates ENOSPC/EMFILE), so tests can
tell injected faults apart from real bugs, and production code paths
see the same exception type a dying disk would produce.
"""

from __future__ import annotations

import errno
import os
import random
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from repro.apt.storage import Spool
from repro.util import atomic_write as _aw


class FaultMode:
    """Failure-mode tags (string constants, stable across pickling)."""

    NONE = "none"
    #: ``append`` raises after N successful records (clean EIO).
    FAIL_AFTER = "fail_after"
    #: The Nth record's bytes are cut mid-blob before the error (torn write).
    TORN_WRITE = "torn_write"
    #: One bit of the finalized file is flipped (bit rot).
    BIT_FLIP = "bit_flip"
    #: The finalized file loses its tail (crash mid-flush / lost sectors).
    TRUNCATE = "truncate"
    #: A read returns fewer bytes than asked (network FS short read).
    SHORT_READ = "short_read"
    #: ``close``/``finalize`` raises EIO (write-back cache failure).
    EIO_ON_CLOSE = "eio_on_close"

    ALL = (FAIL_AFTER, TORN_WRITE, BIT_FLIP, TRUNCATE, SHORT_READ, EIO_ON_CLOSE)


class FaultInjected(OSError):
    """The deliberate failure a fault plan fires (an ``OSError`` whose
    errno defaults to ``EIO``; filesystem plans pass ``ENOSPC`` or
    ``EMFILE`` as the mode dictates)."""

    def __init__(self, message: str, err: int = errno.EIO):
        super().__init__(err, message)


class FaultPlan:
    """One deterministic failure scenario, derived from a seed.

    ``FaultPlan(seed, mode=...)`` pins the mode; ``FaultPlan.random(seed,
    n_records=...)`` draws mode and parameters from the seeded RNG — the
    property-based robustness tests iterate seeds and assert that every
    resulting corruption is either *detected* (a typed
    :class:`~repro.errors.SpoolCorruptionError` naming the record) or
    *salvageable* to a checksum-valid prefix.
    """

    def __init__(
        self,
        seed: int = 0,
        mode: str = FaultMode.NONE,
        after_records: int = 0,
        torn_keep_bytes: Optional[int] = None,
        flip_offset: Optional[int] = None,
        flip_bit: Optional[int] = None,
        truncate_drop: Optional[int] = None,
        short_read_at: int = 0,
    ):
        if mode not in (FaultMode.NONE,) + FaultMode.ALL:
            raise ValueError(f"unknown fault mode {mode!r}")
        self.seed = seed
        self.mode = mode
        self.rng = random.Random(seed)
        #: Records that succeed before a write-side fault fires.
        self.after_records = after_records
        #: Bytes of the torn record actually reaching the file.
        self.torn_keep_bytes = torn_keep_bytes
        self.flip_offset = flip_offset
        self.flip_bit = flip_bit
        self.truncate_drop = truncate_drop
        #: Index of the read call that comes back short.
        self.short_read_at = short_read_at

    @classmethod
    def random(cls, seed: int, n_records: int = 8) -> "FaultPlan":
        """Draw a whole scenario (mode + parameters) from ``seed``."""
        rng = random.Random(seed)
        mode = rng.choice(FaultMode.ALL)
        return cls(
            seed=seed,
            mode=mode,
            after_records=rng.randrange(max(1, n_records)),
            torn_keep_bytes=rng.randrange(1, 24),
            flip_bit=rng.randrange(8),
            truncate_drop=rng.randrange(1, 40),
            short_read_at=rng.randrange(max(1, n_records)),
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, mode={self.mode!r}, "
            f"after={self.after_records})"
        )

    # -- post-hoc corruption of a finalized file ---------------------------

    def corrupt_file(self, path: str) -> bool:
        """Apply this plan's *at-rest* damage to a finalized spool file.

        Returns True when the file was modified (``BIT_FLIP``,
        ``TRUNCATE``), False for purely in-flight modes.
        """
        if self.mode == FaultMode.BIT_FLIP:
            size = os.path.getsize(path)
            offset = (
                self.flip_offset
                if self.flip_offset is not None
                else self.rng.randrange(size)
            )
            bit = self.flip_bit if self.flip_bit is not None else 0
            bit_flip(path, offset % size, bit % 8)
            return True
        if self.mode == FaultMode.TRUNCATE:
            drop = self.truncate_drop or 1
            truncate_file(path, drop)
            return True
        return False


# -- worker-process fault hooks ---------------------------------------------

#: When set, a serve/batch worker hangs on any input containing this
#: marker string (see :func:`maybe_hang`).
HANG_MARKER_ENV = "REPRO_FAULT_HANG_MARKER"

#: How long the injected hang sleeps (default: effectively forever).
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_SECONDS"

#: When set, a worker whose input contains this marker string calls
#: ``os._exit(3)`` mid-request — a deterministic stand-in for an
#: OOM-kill that needs no real memory pressure.
DIE_MARKER_ENV = "REPRO_FAULT_DIE_MARKER"


def maybe_hang(text: str) -> None:
    """Deterministic worker-side fault hook for the supervision tests.

    Called by the worker loop (:func:`repro.serve.workers.worker_main`)
    on every input; a no-op unless the ``REPRO_FAULT_*`` environment
    variables are set, so the production path costs two dict lookups.
    ``HANG`` simulates a request that outlives every deadline (the
    supervisor must kill the worker); ``DIE`` simulates sudden worker
    death mid-request (the supervisor must restart and re-dispatch).
    """
    import time

    die_marker = os.environ.get(DIE_MARKER_ENV)
    if die_marker and die_marker in text:
        os._exit(3)
    hang_marker = os.environ.get(HANG_MARKER_ENV)
    if hang_marker and hang_marker in text:
        time.sleep(float(os.environ.get(HANG_SECONDS_ENV, "3600")))


# -- direct on-disk corruption helpers --------------------------------------


def bit_flip(path: str, offset: int, bit: int = 0) -> None:
    """Flip one bit of ``path`` in place (deterministic bit rot)."""
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        if not byte:
            raise ValueError(f"offset {offset} past end of {path}")
        f.seek(offset)
        f.write(bytes([byte[0] ^ (1 << bit)]))


def truncate_file(path: str, drop_bytes: int) -> None:
    """Cut ``drop_bytes`` off the end of ``path`` (lost tail sectors)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(max(0, size - drop_bytes))


def tear_tail(path: str, keep_partial: int) -> None:
    """Simulate a torn final write: drop the sealed footer region and
    leave only ``keep_partial`` bytes of whatever preceded it."""
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(max(0, size - max(1, keep_partial)))


# -- file-object proxy -------------------------------------------------------


class FaultyFile:
    """Binary-file proxy that injects the plan's I/O-layer faults.

    Wraps an open binary file object; ``write`` tears the configured
    record's bytes, ``read`` comes back short once, ``close`` can raise
    ``EIO``.  Everything else delegates.
    """

    def __init__(self, inner, plan: FaultPlan):
        self._inner = inner
        self.plan = plan
        self._writes = 0
        self._reads = 0

    def write(self, data: bytes) -> int:
        plan = self.plan
        if (
            plan.mode == FaultMode.TORN_WRITE
            and self._writes == plan.after_records
        ):
            keep = min(len(data), plan.torn_keep_bytes or 1)
            self._inner.write(data[:keep])
            self._inner.flush()
            self._writes += 1
            raise FaultInjected(
                f"torn write: {keep}/{len(data)} bytes reached the device"
            )
        if (
            plan.mode == FaultMode.FAIL_AFTER
            and self._writes >= plan.after_records
        ):
            raise FaultInjected(
                f"write failed after {self._writes} successful writes"
            )
        self._writes += 1
        return self._inner.write(data)

    def read(self, n: int = -1) -> bytes:
        data = self._inner.read(n)
        if (
            self.plan.mode == FaultMode.SHORT_READ
            and self._reads == self.plan.short_read_at
            and len(data) > 1
        ):
            self._reads += 1
            short = data[: len(data) // 2]
            # Rewind past the bytes we pretend never arrived.
            self._inner.seek(-(len(data) - len(short)), os.SEEK_CUR)
            return short
        self._reads += 1
        return data

    def close(self) -> None:
        if self.plan.mode == FaultMode.EIO_ON_CLOSE:
            self._inner.close()
            raise FaultInjected("EIO on close (write-back cache lost)")
        self._inner.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- spool wrapper -----------------------------------------------------------


class FaultySpool(Spool):
    """Wrap any :class:`Spool`, injecting the plan's faults around it.

    Composes: the inner spool does the real storage work (so a wrapped
    :class:`~repro.apt.storage.DiskSpool` still writes real sealed v2
    files) while the wrapper decides *when* the storage "hardware"
    misbehaves:

    * ``FAIL_AFTER`` — ``append`` raises after N records, leaving the
      inner spool unfinalized (crash-mid-pass).
    * ``TORN_WRITE`` — the N+1st record's bytes are cut mid-blob at the
      file layer, then the error surfaces (requires a DiskSpool inner).
    * ``EIO_ON_CLOSE`` — ``finalize`` raises before sealing.
    * ``SHORT_READ`` — one record of a read pass yields a truncated
      blob to the consumer.
    * ``BIT_FLIP`` / ``TRUNCATE`` — applied to the finalized file by
      :meth:`corrupt_finalized` (no-op for memory spools).
    """

    def __init__(self, inner: Spool, plan: FaultPlan):
        super().__init__(inner.accountant, inner.channel, inner.tracer,
                         inner.metrics)
        self.inner = inner
        self.plan = plan

    # -- write side --------------------------------------------------------

    def append(self, record: Any) -> None:
        plan = self.plan
        if (
            plan.mode == FaultMode.FAIL_AFTER
            and self.inner.n_records >= plan.after_records
        ):
            raise FaultInjected(
                f"write failed after {self.inner.n_records} records"
            )
        if (
            plan.mode == FaultMode.TORN_WRITE
            and self.inner.n_records == plan.after_records
        ):
            self._tear(record)
            raise FaultInjected(
                f"torn write at record {self.inner.n_records}"
            )
        self.inner.append(record)
        self.n_records = self.inner.n_records
        self.data_bytes = self.inner.data_bytes

    def _tear(self, record: Any) -> None:
        """Write a partial raw image of ``record`` straight to the device."""
        import pickle

        writer = getattr(self.inner, "_writer", None)
        if writer is None:
            return  # memory spool: the torn bytes simply never exist
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        keep = min(len(blob), self.plan.torn_keep_bytes or 1)
        # A torn frame: plausible length word, then the write dies.
        import struct

        writer.write(struct.pack("<I", len(blob)))
        writer.write(blob[:keep])
        writer.flush()

    def finalize(self) -> None:
        if self.plan.mode == FaultMode.EIO_ON_CLOSE:
            raise FaultInjected("EIO on finalize (footer never sealed)")
        self.inner.finalize()
        self._finalized = True

    def corrupt_finalized(self) -> bool:
        """Apply at-rest damage (bit flip / truncation) to the inner file."""
        path = getattr(self.inner, "path", None)
        if path is None or not os.path.exists(path):
            return False
        return self.plan.corrupt_file(path)

    # -- read side ---------------------------------------------------------

    def read_forward(self) -> Iterator[Any]:
        return self._faulty_reads(self.inner.read_forward())

    def read_backward(self) -> Iterator[Any]:
        return self._faulty_reads(self.inner.read_backward())

    def _faulty_reads(self, it: Iterator[Any]) -> Iterator[Any]:
        for i, record in enumerate(it):
            if (
                self.plan.mode == FaultMode.SHORT_READ
                and i == self.plan.short_read_at
            ):
                raise FaultInjected(f"short read at record {i}")
            yield record

    # -- delegation --------------------------------------------------------

    def close(self) -> None:
        self.inner.close()

    @property
    def path(self) -> Optional[str]:
        return getattr(self.inner, "path", None)


# -- filesystem-level chaos ---------------------------------------------------


class FsFaultMode:
    """Failure modes of :class:`FilesystemFaultPlan`."""

    #: Writes succeed until a cumulative byte budget is spent, then the
    #: crossing write lands its partial prefix and raises ``ENOSPC`` —
    #: the disk-full model: bytes up to the budget *are* on the device.
    ENOSPC_AT_BYTE = "enospc_at_byte"
    #: The Nth write call raises ``EIO`` (nothing of it reaches disk).
    EIO_ON_WRITE = "eio_on_write"
    #: The Nth ``open`` of a durable writer raises ``EMFILE``.
    EMFILE_ON_OPEN = "emfile_on_open"
    #: The Nth ``fsync`` raises ``EIO`` (write-back cache lost).
    FSYNC_FAIL = "fsync_fail"
    #: The Nth atomic rename raises ``EIO`` (metadata journal failure);
    #: the sealed tmp file survives, the final name never appears.
    RENAME_FAIL = "rename_fail"

    ALL = (
        ENOSPC_AT_BYTE,
        EIO_ON_WRITE,
        EMFILE_ON_OPEN,
        FSYNC_FAIL,
        RENAME_FAIL,
    )


class _FaultyWriteFile:
    """File proxy enforcing a :class:`FilesystemFaultPlan` byte budget /
    write-call fault; everything else delegates to the real file."""

    def __init__(self, inner, plan: "FilesystemFaultPlan"):
        self._inner = inner
        self._plan = plan

    def write(self, data):
        plan = self._plan
        if plan.mode == FsFaultMode.ENOSPC_AT_BYTE and plan.at_byte is not None:
            budget = plan.at_byte - plan.bytes_written
            if len(data) > budget:
                kept = data[: max(0, budget)]
                if kept:
                    self._inner.write(kept)
                    self._inner.flush()
                plan.bytes_written += len(kept)
                plan.fired = True
                raise FaultInjected(
                    f"ENOSPC after {plan.bytes_written} bytes "
                    f"({len(kept)}/{len(data)} of this write landed)",
                    errno.ENOSPC,
                )
            plan.bytes_written += len(data)
            return self._inner.write(data)
        if plan.mode == FsFaultMode.EIO_ON_WRITE:
            if plan.write_calls == plan.at_call:
                plan.write_calls += 1
                plan.fired = True
                raise FaultInjected(
                    f"EIO on write call {plan.at_call}", errno.EIO
                )
            plan.write_calls += 1
        n = self._inner.write(data)
        plan.bytes_written += len(data)
        return n

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __enter__(self) -> "_FaultyWriteFile":
        return self

    def __exit__(self, *exc) -> None:
        self._inner.close()


class FilesystemFaultPlan:
    """One seeded filesystem-failure scenario wrapping *every* durable
    writer in the process.

    ``install()`` patches the three hook functions in
    :mod:`repro.util.atomic_write` — ``open_file``, ``fsync_file``,
    ``atomic_replace`` — which all sealed on-disk formats (spools,
    cache entries, provenance logs, request journals, checkpoint
    manifests) write through, then restores them on exit::

        plan = FilesystemFaultPlan(seed=7, mode=FsFaultMode.ENOSPC_AT_BYTE,
                                   at_byte=4096)
        with plan.install():
            ...  # any durable write past 4 KiB raises ENOSPC

    ``path_substring`` restricts the chaos to paths containing it (e.g.
    only the journal, only one spool); ``release()`` lifts an ENOSPC
    budget mid-test — the "operator freed disk space" transition the
    serve watermark tests drive.
    """

    def __init__(
        self,
        seed: int = 0,
        mode: str = FsFaultMode.ENOSPC_AT_BYTE,
        at_byte: Optional[int] = None,
        at_call: int = 0,
        path_substring: Optional[str] = None,
    ):
        if mode not in FsFaultMode.ALL:
            raise ValueError(f"unknown filesystem fault mode {mode!r}")
        self.seed = seed
        self.mode = mode
        self.at_byte = at_byte
        self.at_call = at_call
        self.path_substring = path_substring
        # live counters (reset by install())
        self.bytes_written = 0
        self.write_calls = 0
        self.opens = 0
        self.fsyncs = 0
        self.renames = 0
        #: True once the planned fault actually fired.
        self.fired = False

    @classmethod
    def random(cls, seed: int, max_bytes: int = 1 << 14) -> "FilesystemFaultPlan":
        """Draw mode + parameters deterministically from ``seed``."""
        rng = random.Random(seed)
        mode = rng.choice(FsFaultMode.ALL)
        return cls(
            seed=seed,
            mode=mode,
            at_byte=rng.randrange(max_bytes),
            at_call=rng.randrange(4),
        )

    def __repr__(self) -> str:
        return (
            f"FilesystemFaultPlan(seed={self.seed}, mode={self.mode!r}, "
            f"at_byte={self.at_byte}, at_call={self.at_call})"
        )

    def release(self) -> None:
        """Lift an ENOSPC budget: the disk has space again."""
        self.at_byte = None

    def _matches(self, path: Any) -> bool:
        if self.path_substring is None:
            return True
        return isinstance(path, str) and self.path_substring in path

    @contextmanager
    def install(self):
        """Patch the ``repro.util.atomic_write`` hooks for the duration."""
        self.bytes_written = 0
        self.write_calls = 0
        self.opens = 0
        self.fsyncs = 0
        self.renames = 0
        self.fired = False
        orig_open = _aw.open_file
        orig_fsync = _aw.fsync_file
        orig_replace = _aw.atomic_replace
        plan = self

        def open_file(path, mode="wb", **kwargs):
            if plan._matches(path) and "r" not in mode:
                if (
                    plan.mode == FsFaultMode.EMFILE_ON_OPEN
                    and plan.opens == plan.at_call
                ):
                    plan.opens += 1
                    plan.fired = True
                    raise FaultInjected(
                        f"EMFILE opening {path} (fd table exhausted)",
                        errno.EMFILE,
                    )
                plan.opens += 1
                if plan.mode in (
                    FsFaultMode.ENOSPC_AT_BYTE,
                    FsFaultMode.EIO_ON_WRITE,
                ):
                    return _FaultyWriteFile(
                        orig_open(path, mode, **kwargs), plan
                    )
            return orig_open(path, mode, **kwargs)

        def fsync_file(fileobj):
            if plan.mode == FsFaultMode.FSYNC_FAIL and plan._matches(
                getattr(fileobj, "name", None)
            ):
                if plan.fsyncs == plan.at_call:
                    plan.fsyncs += 1
                    plan.fired = True
                    raise FaultInjected(
                        f"fsync failed (call {plan.at_call})", errno.EIO
                    )
                plan.fsyncs += 1
            orig_fsync(fileobj)

        def atomic_replace(tmp_path, final_path):
            if plan.mode == FsFaultMode.RENAME_FAIL and plan._matches(
                final_path
            ):
                if plan.renames == plan.at_call:
                    plan.renames += 1
                    plan.fired = True
                    raise FaultInjected(
                        f"rename {tmp_path!r} -> {final_path!r} failed",
                        errno.EIO,
                    )
                plan.renames += 1
            orig_replace(tmp_path, final_path)

        _aw.open_file = open_file
        _aw.fsync_file = fsync_file
        _aw.atomic_replace = atomic_replace
        try:
            yield self
        finally:
            _aw.open_file = orig_open
            _aw.fsync_file = orig_fsync
            _aw.atomic_replace = orig_replace
