"""A hand-written, one-pass recursive-descent compiler for the Pascal
subset of ``pascal.ag``.

This is the §V comparison point: what a compiler writer would build by
hand for the same language — single pass, no intermediate files, no
attribute machinery.  It reuses the project's generated scanner (the
original's hand compilers shared the host system's scanner tooling) and
emits the same stack-machine code and diagnostics as the attribute-
grammar front end, which the equivalence tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.grammars.pascal_lib import BOOL_T, ERR_T, INT_T
from repro.grammars.scanners import pascal_scanner_spec
from repro.regex.scanner import Scanner, Token

Msg = Tuple[int, str, Optional[str]]


@dataclass
class CompileResult:
    code: List[str] = field(default_factory=list)
    msgs: List[Msg] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.msgs


class HandPascalCompiler:
    """One-pass compiler: parse, check, and emit in a single traversal."""

    def __init__(self):
        self._scanner: Scanner = pascal_scanner_spec().generate()

    def compile(self, text: str) -> CompileResult:
        return _Session(self._scanner.scan(text)).run()


class _Session:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.env: Dict[str, str] = {}
        self.result = CompileResult()
        self.next_label = 1

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def take(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "$eof":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.take()
        if tok.kind != kind:
            raise ParseError(
                f"{tok.location}: expected {kind}, found {tok.kind} ({tok.text!r})"
            )
        return tok

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    # -- driver ----------------------------------------------------------

    def run(self) -> CompileResult:
        self.expect("PROGRAM")
        self.expect("ID")
        self.expect("SEMI")
        if self.at("VAR"):
            self.take()
            self.decl_list()
        self.expect("BEGIN")
        self.stmt_list()
        self.expect("END")
        self.expect("PERIOD")
        self.emit("HALT")
        return self.result

    def emit(self, instr: str) -> None:
        self.result.code.append(instr)

    def error(self, line: int, message: str, name: Optional[str] = None) -> None:
        self.result.msgs.append((line, message, name))

    def fresh_labels(self, n: int) -> List[int]:
        labels = list(range(self.next_label, self.next_label + n))
        self.next_label += n
        return labels

    # -- declarations ------------------------------------------------------

    def decl_list(self) -> None:
        while self.at("ID"):
            names: List[Tuple[str, int]] = []
            tok = self.expect("ID")
            names.append((tok.text, tok.location.line))
            while self.at("COMMA"):
                self.take()
                tok = self.expect("ID")
                names.append((tok.text, tok.location.line))
            colon = self.expect("COLON")
            tname = self.take()
            if tname.kind == "INTEGER":
                declared = INT_T
            elif tname.kind == "BOOLEAN":
                declared = BOOL_T
            else:
                raise ParseError(f"{tname.location}: expected a type name")
            self.expect("SEMI")
            for name, _line in names:
                if name in self.env:
                    self.error(colon.location.line, "variable declared twice", name)
                self.env[name] = declared

    # -- statements --------------------------------------------------------

    def stmt_list(self) -> None:
        self.stmt()
        while self.at("SEMI"):
            self.take()
            self.stmt()

    def stmt(self) -> None:
        tok = self.peek()
        if tok.kind == "ID":
            self.assignment()
        elif tok.kind == "IF":
            self.if_stmt()
        elif tok.kind == "WHILE":
            self.while_stmt()
        elif tok.kind == "REPEAT":
            self.repeat_stmt()
        elif tok.kind == "FOR":
            self.for_stmt()
        elif tok.kind == "WRITELN":
            self.writeln_stmt()
        elif tok.kind == "BEGIN":
            self.take()
            self.stmt_list()
            self.expect("END")
        else:
            raise ParseError(f"{tok.location}: expected a statement, found {tok.kind}")

    def assignment(self) -> None:
        target = self.expect("ID")
        assign = self.expect("ASSIGN")
        t = self.expr()
        declared = self.env.get(target.text)
        if declared is None:
            self.error(target.location.line, "undeclared variable", target.text)
        elif declared != t and t != ERR_T:
            self.error(
                assign.location.line, "type mismatch in assignment", target.text
            )
        self.emit(f"STORE {target.text}")

    def if_stmt(self) -> None:
        tok = self.expect("IF")
        t = self.expr()
        if t not in (BOOL_T, ERR_T):
            self.error(tok.location.line, "boolean condition required")
        then_l, end_l = self.fresh_labels(2)
        self.expect("THEN")
        self.emit(f"JMPF L{then_l}")
        self.stmt()
        self.emit(f"JMP L{end_l}")
        self.emit(f"L{then_l}:")
        self.expect("ELSE")
        self.stmt()
        self.emit(f"L{end_l}:")

    def while_stmt(self) -> None:
        tok = self.expect("WHILE")
        top_l, exit_l = self.fresh_labels(2)
        # In a one-pass compiler the top label precedes the condition code.
        self.emit(f"L{top_l}:")
        t = self.expr()
        if t not in (BOOL_T, ERR_T):
            self.error(tok.location.line, "boolean condition required")
        self.expect("DO")
        self.emit(f"JMPF L{exit_l}")
        self.stmt()
        self.emit(f"JMP L{top_l}")
        self.emit(f"L{exit_l}:")

    def repeat_stmt(self) -> None:
        self.expect("REPEAT")
        (top_l,) = self.fresh_labels(1)
        self.emit(f"L{top_l}:")
        self.stmt_list()
        until = self.expect("UNTIL")
        t = self.expr()
        if t not in (BOOL_T, ERR_T):
            self.error(until.location.line, "boolean condition required")
        self.emit(f"JMPF L{top_l}")

    def for_stmt(self) -> None:
        tok = self.expect("FOR")
        var = self.expect("ID")
        self.expect("ASSIGN")
        declared = self.env.get(var.text)
        if declared is None:
            self.error(var.location.line, "undeclared variable", var.text)
        elif declared != INT_T:
            self.error(tok.location.line, "integer loop variable required",
                       var.text)
        top_l, exit_l = self.fresh_labels(2)
        t1 = self.expr()
        self.emit(f"STORE {var.text}")
        self.expect("TO")
        self.emit(f"L{top_l}:")
        self.emit(f"LOAD {var.text}")
        t2 = self.expr()
        if self._bad(t1, INT_T) or self._bad(t2, INT_T):
            self.error(tok.location.line, "integer bounds required")
        self.emit("CMPLE")
        self.emit(f"JMPF L{exit_l}")
        self.expect("DO")
        self.stmt()
        self.emit(f"LOAD {var.text}")
        self.emit("LOADC 1")
        self.emit("ADD")
        self.emit(f"STORE {var.text}")
        self.emit(f"JMP L{top_l}")
        self.emit(f"L{exit_l}:")

    def writeln_stmt(self) -> None:
        self.expect("WRITELN")
        self.expect("LPAR")
        self.expr()
        self.expect("RPAR")
        self.emit("WRITE")

    # -- expressions ---------------------------------------------------------

    _CMP = {"EQ": "CMPEQ", "NE": "CMPNE", "LT": "CMPLT", "GT": "CMPGT",
            "LE": "CMPLE", "GE": "CMPGE"}

    def expr(self) -> str:
        t = self.sexpr()
        if self.peek().kind in self._CMP:
            op = self.take()
            t2 = self.sexpr()
            if t != t2 and ERR_T not in (t, t2):
                self.error(op.location.line, "comparison of different types")
                result = ERR_T
            elif t == t2 and t != ERR_T:
                result = BOOL_T
            else:
                result = ERR_T
            self.emit(self._CMP[op.kind])
            return result
        return t

    def sexpr(self) -> str:
        t = self.mterm()
        while self.peek().kind in ("PLUS", "MINUS", "OR"):
            op = self.take()
            t2 = self.mterm()
            if op.kind == "OR":
                if self._bad(t, BOOL_T) or self._bad(t2, BOOL_T):
                    self.error(op.location.line, "boolean operands required")
                t = BOOL_T if (t == BOOL_T and t2 == BOOL_T) else ERR_T
                self.emit("OR")
            else:
                if self._bad(t, INT_T) or self._bad(t2, INT_T):
                    self.error(op.location.line, "integer operands required")
                t = INT_T if (t == INT_T and t2 == INT_T) else ERR_T
                self.emit("ADD" if op.kind == "PLUS" else "SUB")
        return t

    def mterm(self) -> str:
        t = self.factor()
        while self.peek().kind in ("STAR", "DIV", "AND"):
            op = self.take()
            t2 = self.factor()
            if op.kind == "AND":
                if self._bad(t, BOOL_T) or self._bad(t2, BOOL_T):
                    self.error(op.location.line, "boolean operands required")
                t = BOOL_T if (t == BOOL_T and t2 == BOOL_T) else ERR_T
                self.emit("AND")
            else:
                if self._bad(t, INT_T) or self._bad(t2, INT_T):
                    self.error(op.location.line, "integer operands required")
                t = INT_T if (t == INT_T and t2 == INT_T) else ERR_T
                self.emit("MUL" if op.kind == "STAR" else "DIV")
        return t

    @staticmethod
    def _bad(t: str, expected: str) -> bool:
        return t not in (expected, ERR_T)

    def factor(self) -> str:
        tok = self.take()
        if tok.kind == "NUM":
            self.emit(f"LOADC {tok.text}")
            return INT_T
        if tok.kind == "ID":
            declared = self.env.get(tok.text)
            self.emit(f"LOAD {tok.text}")
            if declared is None:
                self.error(tok.location.line, "undeclared variable", tok.text)
                return ERR_T
            return declared
        if tok.kind == "TRUE":
            self.emit("LOADC 1")
            return BOOL_T
        if tok.kind == "FALSE":
            self.emit("LOADC 0")
            return BOOL_T
        if tok.kind == "LPAR":
            t = self.expr()
            self.expect("RPAR")
            return t
        if tok.kind == "NOT":
            t = self.factor()
            if self._bad(t, BOOL_T):
                self.error(tok.location.line, "boolean operand required")
            self.emit("NOTOP")
            return BOOL_T if t == BOOL_T else ERR_T
        raise ParseError(f"{tok.location}: expected a factor, found {tok.kind}")
