"""The hand-written comparator compiler.

§V compares LINGUIST-86's throughput with "the host system's translator
products" (hand-written compilers at 400–900 lines/min vs the generated
system's 350–500).  :class:`repro.baseline.rdparser.HandPascalCompiler`
is our stand-in: a one-pass recursive-descent compiler for the same
Pascal subset ``pascal.ag`` describes, producing the same stack code
and the same diagnostics.
"""

from repro.baseline.rdparser import HandPascalCompiler, CompileResult

__all__ = ["HandPascalCompiler", "CompileResult"]
