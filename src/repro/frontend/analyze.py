"""Semantic analysis of a parsed ``.ag`` file.

Builds the dictionary of symbols, attributes, productions and semantic
functions (the work of LINGUIST-86's overlays 2 and 3), resolving the
paper's occurrence-name convention — trailing digits distinguish
occurrences of one symbol (``function$list0``/``function$list1``) — and
then runs the shared validator, which inserts the implicit copy-rules.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ag.model import AttrKind, AttributeGrammar, SymbolKind
from repro.ag.validate import RawFunction, validate_grammar
from repro.errors import DiagnosticSink, SemanticError
from repro.frontend.astnodes import AGFile
from repro.frontend.syntax import parse_ag_text

_KIND_MAP = {
    "nonterminal": SymbolKind.NONTERMINAL,
    "terminal": SymbolKind.TERMINAL,
    "limb": SymbolKind.LIMB,
}

_ATTR_KIND_MAP = {
    "inherited": AttrKind.INHERITED,
    "synthesized": AttrKind.SYNTHESIZED,
    "intrinsic": AttrKind.INTRINSIC,
    "local": AttrKind.LOCAL,
}

_SUFFIX = re.compile(r"\d+$")


def strip_occurrence_suffix(name: str, declared: Dict[str, object]) -> str:
    """Resolve an occurrence spelling to its declared symbol.

    Exact matches win (so symbols may legitimately end in a digit);
    otherwise trailing digits are stripped, per the paper's
    ``S0``/``S1`` convention.
    """
    if name in declared:
        return name
    base = _SUFFIX.sub("", name)
    return base if base in declared else name


def analyze(ag_file: AGFile, sink: Optional[DiagnosticSink] = None) -> AttributeGrammar:
    """Build and validate the attribute grammar; raise on errors."""
    own_sink = sink if sink is not None else DiagnosticSink()
    ag = AttributeGrammar(ag_file.name, ag_file.start)
    ag.source_lines = ag_file.source_lines

    for decl in ag_file.symdecls:
        kind = _KIND_MAP[decl.kind]
        for name in decl.names:
            try:
                ag.add_symbol(name, kind)
            except SemanticError as exc:
                own_sink.error(str(exc), decl.location)

    for decl in ag_file.attrdecls:
        sym = ag.symbols.get(decl.symbol)
        if sym is None:
            own_sink.error(
                f"attributes declared for unknown symbol {decl.symbol!r}",
                decl.location,
            )
            continue
        for kind_kw, attr_name, type_name in decl.specs:
            try:
                sym.add_attribute(attr_name, _ATTR_KIND_MAP[kind_kw], type_name)
            except SemanticError as exc:
                own_sink.error(str(exc), decl.location)

    if own_sink.has_errors:
        own_sink.raise_if_errors(SemanticError)

    raw_functions: Dict[int, List[RawFunction]] = {}
    for pd in ag_file.prods:
        lhs = strip_occurrence_suffix(pd.lhs, ag.symbols)
        rhs = [strip_occurrence_suffix(s, ag.symbols) for s in pd.rhs]
        missing = [
            s for s, base in zip([pd.lhs] + pd.rhs, [lhs] + rhs)
            if base not in ag.symbols
        ]
        if missing:
            own_sink.error(
                "production uses undeclared symbol(s): " + ", ".join(missing),
                pd.location,
            )
            continue
        try:
            prod = ag.add_production(lhs, rhs, pd.limb, pd.location)
        except SemanticError as exc:
            own_sink.error(str(exc), pd.location)
            continue
        # The spellings in the header must agree with the canonical
        # occurrence names (LHS counts as occurrence 0).
        written = [pd.lhs] + list(pd.rhs)
        canonical = [occ.name for occ in prod.occurrences if occ.position >= 0]
        canonical = [prod.occurrence_at(0).name] + [
            prod.occurrence_at(i).name for i in prod.rhs_positions()
        ]
        for given, expect in zip(written, canonical):
            if given != expect and strip_occurrence_suffix(given, ag.symbols) != given:
                # A suffixed spelling must match the canonical numbering.
                if given != expect:
                    own_sink.error(
                        f"occurrence {given!r} does not follow the numbering "
                        f"convention; expected {expect!r} "
                        f"(occurrences are numbered left to right, LHS first)",
                        pd.location,
                    )
        raw_functions[prod.index] = [
            RawFunction(list(fd.targets), fd.expr, fd.location) for fd in pd.funcs
        ]

    if own_sink.has_errors:
        own_sink.raise_if_errors(SemanticError)

    validate_grammar(ag, raw_functions, own_sink)
    if sink is None:
        own_sink.raise_if_errors(SemanticError)
    return ag


def load_grammar(text: str, filename: str = "<input>",
                 sink: Optional[DiagnosticSink] = None) -> AttributeGrammar:
    """Parse and analyze ``.ag`` source text in one step."""
    return analyze(parse_ag_text(text, filename), sink)
