"""Syntax of the ``.ag`` input language.

The grammar below is itself fed to the project's LALR table builder —
the frontend parses attribute-grammar source with machinery the system
generates for its users, the way LINGUIST-86 did.  AST construction is
a classic syntax-directed translation: a value stack driven by the
parser's shift/reduce events.

Layout of an input file::

    grammar <name> : <start-symbol> .
    symbols
      nonterminal a, b ;  terminal C ;  limb L ;
    attributes
      a : inherited ENV envT, synthesized OUT outT ;
      C : intrinsic TEXT string ;
      L : local TMP int ;
    productions
    a0 = a1 C -> L .
      TMP = C.TEXT ,
      a1.ENV = a0.ENV ,               # explicit copy (or omit: implicit)
      a0.OUT = f(a1.OUT, TMP) ;
    end
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.errors import ParseError
from repro.frontend.astnodes import AGFile, AttrDecl, FuncDecl, ProdDecl, SymDecl
from repro.frontend.lexer import make_scanner
from repro.lalr.grammar import Grammar
from repro.lalr.parser import LALRParser, ParseListener
from repro.lalr.tables import ParseTables, build_tables
from repro.regex.scanner import Token

# ---------------------------------------------------------------------------
# The context-free grammar of the input language.
# ---------------------------------------------------------------------------

_PRODUCTIONS = [
    ("File", "file",
     ["GRAMMAR", "IDENT", "COLON", "IDENT", "DOT",
      "SYMBOLS", "symdecls", "ATTRIBUTES", "attrdecls",
      "PRODUCTIONS", "prodlist", "END"]),
    ("SymMany", "symdecls", ["symdecls", "symdecl"]),
    ("SymOne", "symdecls", ["symdecl"]),
    ("SymDecl", "symdecl", ["symkind", "identlist", "SEMI"]),
    ("KindNonterminal", "symkind", ["NONTERMINAL"]),
    ("KindTerminal", "symkind", ["TERMINAL"]),
    ("KindLimb", "symkind", ["LIMB"]),
    ("IdentMany", "identlist", ["identlist", "COMMA", "IDENT"]),
    ("IdentOne", "identlist", ["IDENT"]),
    ("AttrNone", "attrdecls", []),
    ("AttrMany", "attrdecls", ["attrdecls", "attrdecl"]),
    ("AttrDecl", "attrdecl", ["IDENT", "COLON", "attrspecs", "SEMI"]),
    ("SpecMany", "attrspecs", ["attrspecs", "COMMA", "attrspec"]),
    ("SpecOne", "attrspecs", ["attrspec"]),
    ("AttrSpec", "attrspec", ["akind", "IDENT", "IDENT"]),
    ("KindInherited", "akind", ["INHERITED"]),
    ("KindSynthesized", "akind", ["SYNTHESIZED"]),
    ("KindIntrinsic", "akind", ["INTRINSIC"]),
    ("KindLocal", "akind", ["LOCAL"]),
    ("ProdMany", "prodlist", ["prodlist", "production"]),
    ("ProdOne", "prodlist", ["production"]),
    ("ProdBare", "production", ["header", "SEMI"]),
    ("ProdFuncs", "production", ["header", "funclist", "SEMI"]),
    ("Header", "header", ["IDENT", "EQ", "symseq", "DOT"]),
    ("HeaderLimb", "header", ["IDENT", "EQ", "symseq", "ARROW", "IDENT", "DOT"]),
    ("HeaderEmpty", "header", ["IDENT", "EQ", "DOT"]),
    ("HeaderEmptyLimb", "header", ["IDENT", "EQ", "ARROW", "IDENT", "DOT"]),
    ("SymSeqMany", "symseq", ["symseq", "IDENT"]),
    ("SymSeqOne", "symseq", ["IDENT"]),
    ("FuncMany", "funclist", ["funclist", "COMMA", "semfn"]),
    ("FuncOne", "funclist", ["semfn"]),
    ("SemFn", "semfn", ["targetlist", "EQ", "exprtop"]),
    ("TargetMany", "targetlist", ["targetlist", "COMMA", "target"]),
    ("TargetOne", "targetlist", ["target"]),
    ("TargetQualified", "target", ["IDENT", "DOT", "IDENT"]),
    ("TargetBare", "target", ["IDENT"]),
    ("ExprIf", "exprtop", ["ifexpr"]),
    ("ExprSimple", "exprtop", ["simple"]),
    ("IfExpr", "ifexpr", ["IF", "simple", "THEN", "exprseq", "elsetail"]),
    ("ElseTail", "elsetail", ["ELSE", "exprseq", "ENDIF"]),
    ("ElsifTail", "elsetail", ["ELSIF", "simple", "THEN", "exprseq", "elsetail"]),
    ("SeqMany", "exprseq", ["exprseq", "COMMA", "exprtop"]),
    ("SeqOne", "exprseq", ["exprtop"]),
    ("Simple", "simple", ["disj"]),
    ("Or", "disj", ["disj", "OR", "conj"]),
    ("Disj", "disj", ["conj"]),
    ("And", "conj", ["conj", "AND", "cmp"]),
    ("Conj", "conj", ["cmp"]),
    ("Compare", "cmp", ["add", "relop", "add"]),
    ("Cmp", "cmp", ["add"]),
    ("RelEq", "relop", ["EQ"]),
    ("RelNe", "relop", ["NE"]),
    ("RelLt", "relop", ["LT"]),
    ("RelGt", "relop", ["GT"]),
    ("RelLe", "relop", ["LE"]),
    ("RelGe", "relop", ["GE"]),
    ("Plus", "add", ["add", "PLUS", "mul"]),
    ("Minus", "add", ["add", "MINUS", "mul"]),
    ("Add", "add", ["mul"]),
    ("Times", "mul", ["mul", "STAR", "unary"]),
    ("Divide", "mul", ["mul", "DIV", "unary"]),
    ("Mul", "mul", ["unary"]),
    ("NotOp", "unary", ["NOT", "unary"]),
    ("NegOp", "unary", ["MINUS", "unary"]),
    ("Unary", "unary", ["primary"]),
    ("Number", "primary", ["NUMBER"]),
    ("Str", "primary", ["STRING"]),
    ("True", "primary", ["TRUE"]),
    ("False", "primary", ["FALSE"]),
    ("Name", "primary", ["IDENT"]),
    ("AttrRef", "primary", ["IDENT", "DOT", "IDENT"]),
    ("Call0", "primary", ["IDENT", "LPAREN", "RPAREN"]),
    ("CallN", "primary", ["IDENT", "LPAREN", "args", "RPAREN"]),
    ("Paren", "primary", ["LPAREN", "simple", "RPAREN"]),
    ("ArgMany", "args", ["args", "COMMA", "simple"]),
    ("ArgOne", "args", ["simple"]),
]


def input_language_grammar() -> Grammar:
    """The input language's own CFG (fed to the LALR builder)."""
    return Grammar("file", [(lhs, rhs, tag) for tag, lhs, rhs in _PRODUCTIONS])


_TABLES: Optional[ParseTables] = None


def _tables() -> ParseTables:
    global _TABLES
    if _TABLES is None:
        _TABLES = build_tables(input_language_grammar())
    return _TABLES


# ---------------------------------------------------------------------------
# Syntax-directed AST construction.
# ---------------------------------------------------------------------------


def _text(tok: Token) -> str:
    return tok.text


def _branch(seq: List[Expr]):
    return tuple(seq)


_ACTIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "File": lambda c: AGFile(
        name=_text(c[1]), start=_text(c[3]),
        symdecls=c[6], attrdecls=c[8], prods=c[10],
    ),
    "SymMany": lambda c: c[0] + [c[1]],
    "SymOne": lambda c: [c[0]],
    "SymDecl": lambda c: SymDecl(c[0][0], c[1], c[0][1]),
    "KindNonterminal": lambda c: ("nonterminal", c[0].location),
    "KindTerminal": lambda c: ("terminal", c[0].location),
    "KindLimb": lambda c: ("limb", c[0].location),
    "IdentMany": lambda c: c[0] + [_text(c[2])],
    "IdentOne": lambda c: [_text(c[0])],
    "AttrNone": lambda c: [],
    "AttrMany": lambda c: c[0] + [c[1]],
    "AttrDecl": lambda c: AttrDecl(_text(c[0]), c[2], c[0].location),
    "SpecMany": lambda c: c[0] + [c[2]],
    "SpecOne": lambda c: [c[0]],
    "AttrSpec": lambda c: (c[0], _text(c[1]), _text(c[2])),
    "KindInherited": lambda c: "inherited",
    "KindSynthesized": lambda c: "synthesized",
    "KindIntrinsic": lambda c: "intrinsic",
    "KindLocal": lambda c: "local",
    "ProdMany": lambda c: c[0] + [c[1]],
    "ProdOne": lambda c: [c[0]],
    "ProdBare": lambda c: ProdDecl(
        lhs=c[0][0], rhs=c[0][1], limb=c[0][2], funcs=[], location=c[0][3]
    ),
    "ProdFuncs": lambda c: ProdDecl(
        lhs=c[0][0], rhs=c[0][1], limb=c[0][2], funcs=c[1], location=c[0][3]
    ),
    "Header": lambda c: (_text(c[0]), c[2], "", c[0].location),
    "HeaderLimb": lambda c: (_text(c[0]), c[2], _text(c[4]), c[0].location),
    "HeaderEmpty": lambda c: (_text(c[0]), [], "", c[0].location),
    "HeaderEmptyLimb": lambda c: (_text(c[0]), [], _text(c[3]), c[0].location),
    "SymSeqMany": lambda c: c[0] + [_text(c[1])],
    "SymSeqOne": lambda c: [_text(c[0])],
    "FuncMany": lambda c: c[0] + [c[2]],
    "FuncOne": lambda c: [c[0]],
    "SemFn": lambda c: FuncDecl(targets=c[0][0], expr=c[2], location=c[0][1]),
    "TargetMany": lambda c: (c[0][0] + [c[2][0]], c[0][1]),
    "TargetOne": lambda c: ([c[0][0]], c[0][1]),
    "TargetQualified": lambda c: ((_text(c[0]), _text(c[2])), c[0].location),
    "TargetBare": lambda c: (("", _text(c[0])), c[0].location),
    "ExprIf": lambda c: c[0],
    "ExprSimple": lambda c: c[0],
    "IfExpr": lambda c: _make_if(c[1], c[3], c[4]),
    "ElseTail": lambda c: _branch(c[1]),
    "ElsifTail": lambda c: _make_if(c[1], c[3], c[4]),
    "SeqMany": lambda c: c[0] + [c[2]],
    "SeqOne": lambda c: [c[0]],
    "Simple": lambda c: c[0],
    "Or": lambda c: BinOp("OR", c[0], c[2]),
    "Disj": lambda c: c[0],
    "And": lambda c: BinOp("AND", c[0], c[2]),
    "Conj": lambda c: c[0],
    "Compare": lambda c: BinOp(c[1], c[0], c[2]),
    "Cmp": lambda c: c[0],
    "RelEq": lambda c: "=",
    "RelNe": lambda c: "<>",
    "RelLt": lambda c: "<",
    "RelGt": lambda c: ">",
    "RelLe": lambda c: "<=",
    "RelGe": lambda c: ">=",
    "Plus": lambda c: BinOp("+", c[0], c[2]),
    "Minus": lambda c: BinOp("-", c[0], c[2]),
    "Add": lambda c: c[0],
    "Times": lambda c: BinOp("*", c[0], c[2]),
    "Divide": lambda c: BinOp("DIV", c[0], c[2]),
    "Mul": lambda c: c[0],
    "NotOp": lambda c: Not(c[1]),
    "NegOp": lambda c: BinOp("-", Const(0), c[1]),
    "Unary": lambda c: c[0],
    "Number": lambda c: Const(int(_text(c[0]))),
    "Str": lambda c: Const(_text(c[0])[1:-1].replace("''", "'")),
    "True": lambda c: Const(True),
    "False": lambda c: Const(False),
    "Name": lambda c: AttrRef("", _text(c[0])),
    "AttrRef": lambda c: AttrRef(_text(c[0]), _text(c[2])),
    "Call0": lambda c: Call(_text(c[0]), ()),
    "CallN": lambda c: Call(_text(c[0]), tuple(c[2])),
    "Paren": lambda c: c[1],
    "ArgMany": lambda c: c[0] + [c[2]],
    "ArgOne": lambda c: [c[0]],
}


def _make_if(cond: Expr, then_seq: List[Expr], tail: Any) -> If:
    then_branch = tuple(then_seq)
    tail_arity = tail.arity() if isinstance(tail, If) else len(tail)
    if len(then_branch) != tail_arity:
        raise ParseError(
            f"if-expression branches have different lengths "
            f"({len(then_branch)} vs {tail_arity})"
        )
    return If(cond, then_branch, tail)


class _Builder(ParseListener):
    def __init__(self) -> None:
        self.stack: List[Any] = []

    def on_shift(self, token: Token) -> None:
        self.stack.append(token)

    def on_reduce(self, production) -> None:
        if production.index == 0:
            return
        n = len(production.rhs)
        children = self.stack[len(self.stack) - n :] if n else []
        if n:
            del self.stack[len(self.stack) - n :]
        action = _ACTIONS.get(production.tag)
        if action is None:  # pragma: no cover
            raise ParseError(f"no action for production {production.tag!r}")
        self.stack.append(action(children))


def parse_ag_text(text: str, filename: str = "<input>") -> AGFile:
    """Parse ``.ag`` source text into an :class:`AGFile` AST."""
    scanner = make_scanner(filename=filename)
    parser = LALRParser(_tables())
    builder = _Builder()
    parser.parse(scanner.tokens(text), listener=builder, build_tree=False)
    # Stack: [AGFile, eof-token]
    result = next(v for v in builder.stack if isinstance(v, AGFile))
    result.source_lines = text.count("\n") + (0 if text.endswith("\n") else 1)
    return result
