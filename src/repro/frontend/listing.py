"""Listing generation (LINGUIST-86's overlay 6).

The listing interleaves the source with diagnostics, shows each
production's semantic functions with "each implicit copy-rule …
listed immediately after all of the explicit semantic functions"
(§IV), and appends the grammar statistics and the evaluability report.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ag.model import AttributeGrammar
from repro.ag.stats import compute_statistics
from repro.errors import DiagnosticSink
from repro.passes.partition import PassAssignment
from repro.passes.report import render_pass_report


def render_listing(
    source: str,
    ag: AttributeGrammar,
    sink: Optional[DiagnosticSink] = None,
    assignment: Optional[PassAssignment] = None,
) -> str:
    lines: List[str] = []
    lines.append(f"*** listing for attribute grammar {ag.name!r} ***")
    lines.append("")

    by_line = {}
    if sink is not None:
        for diag in sink.sorted_by_location():
            by_line.setdefault(diag.location.line, []).append(diag)

    for i, text in enumerate(source.splitlines(), start=1):
        lines.append(f"{i:5d}  {text}")
        for diag in by_line.get(i, []):
            lines.append(f"       ^ {diag.severity.value}: {diag.message}")
    for diag in by_line.get(0, []):
        lines.append(f"       * {diag.severity.value}: {diag.message}")

    lines.append("")
    lines.append("*** productions with semantic functions ***")

    def pass_note(func) -> str:
        # The paper's listings annotate each function with "# pass N".
        return f"   # pass {func.pass_number}" if func.pass_number else ""

    for prod in ag.productions:
        lines.append("")
        lines.append(str(prod))
        explicit = [f for f in prod.functions if not f.implicit]
        implicit = [f for f in prod.functions if f.implicit]
        for func in explicit:
            lines.append(f"    {func}{pass_note(func)}")
        for func in implicit:
            lines.append(f"    {func}   # implicit copy-rule{pass_note(func)}")

    lines.append("")
    stats = compute_statistics(
        ag, n_passes=assignment.n_passes if assignment else 0
    )
    lines.append(stats.render())
    if assignment is not None:
        lines.append("")
        lines.append(render_pass_report(assignment))
    return "\n".join(lines) + "\n"
