"""Parse-level AST of an ``.ag`` file (before semantic analysis)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.ag.expr import Expr
from repro.errors import SourceLocation, NOWHERE


@dataclass
class FuncDecl:
    """One semantic function as written: targets are (occ-name, attr-name)
    pairs, occ-name empty for bare limb-attribute targets."""

    targets: List[Tuple[str, str]]
    expr: Expr
    location: SourceLocation = NOWHERE


@dataclass
class ProdDecl:
    """One production as written (occurrence names still suffixed)."""

    lhs: str
    rhs: List[str]
    limb: str
    funcs: List[FuncDecl]
    location: SourceLocation = NOWHERE


@dataclass
class SymDecl:
    kind: str  # "nonterminal" | "terminal" | "limb"
    names: List[str]
    location: SourceLocation = NOWHERE


@dataclass
class AttrDecl:
    symbol: str
    #: (kind keyword, attribute name, type name) triples.
    specs: List[Tuple[str, str, str]]
    location: SourceLocation = NOWHERE


@dataclass
class AGFile:
    """A parsed ``.ag`` file."""

    name: str
    start: str
    symdecls: List[SymDecl] = field(default_factory=list)
    attrdecls: List[AttrDecl] = field(default_factory=list)
    prods: List[ProdDecl] = field(default_factory=list)
    source_lines: int = 0
