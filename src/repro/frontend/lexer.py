"""Lexical structure of the ``.ag`` input language.

Identifiers follow the paper's convention: ``$`` is a word separator
(``function$list``, ``union$setof``); trailing digits distinguish
occurrences (``function$list0``).  ``#`` starts a comment to end of
line (the paper's listings carry ``# pass 2`` comments).
"""

from __future__ import annotations

from typing import Optional

from repro.regex.generator import ScannerSpec
from repro.regex.scanner import Scanner
from repro.util.nametable import NameTable

#: Keywords of the input language (section structure + expressions).
KEYWORDS = [
    "grammar",
    "symbols",
    "attributes",
    "productions",
    "end",
    "nonterminal",
    "terminal",
    "limb",
    "inherited",
    "synthesized",
    "intrinsic",
    "local",
    "if",
    "then",
    "elsif",
    "else",
    "endif",
    "and",
    "or",
    "not",
    "div",
    "true",
    "false",
]


def _build_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("COMMENT", r"#[^\n]*", skip=True)
    spec.rule("IDENT", r"[A-Za-z][A-Za-z0-9$_]*", intern=True)
    spec.rule("NUMBER", r"\d+")
    spec.rule("STRING", r"'([^'\n]|'')*'")
    spec.rule("ARROW", r"\->")
    spec.rule("NE", r"<>")
    spec.rule("LE", r"<=")
    spec.rule("GE", r">=")
    spec.rule("LT", r"<")
    spec.rule("GT", r">")
    spec.rule("EQ", r"=")
    spec.rule("PLUS", r"\+")
    spec.rule("MINUS", r"\-")
    spec.rule("STAR", r"\*")
    spec.rule("LPAREN", r"\(")
    spec.rule("RPAREN", r"\)")
    spec.rule("COMMA", r",")
    spec.rule("SEMI", r";")
    spec.rule("COLON", r":")
    spec.rule("DOT", r"\.")
    for kw in KEYWORDS:
        spec.keyword(kw, kw.upper())
    return spec


#: The declarative lexical spec (inspected by tests and the listing).
LEXICAL_SPEC = _build_spec()

_GENERATOR = None


def make_scanner(names: Optional[NameTable] = None, filename: str = "<input>") -> Scanner:
    """A scanner for the input language (tables built once, cached)."""
    global _GENERATOR
    if _GENERATOR is None:
        from repro.regex.generator import ScannerGenerator

        _GENERATOR = ScannerGenerator(LEXICAL_SPEC)
        _GENERATOR.build_tables()
    return _GENERATOR.generate(names=names, filename=filename)
