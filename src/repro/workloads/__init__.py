"""Workload generators for the throughput and scaling benchmarks."""

from repro.workloads.generators import (
    generate_pascal_program,
    generate_calc_program,
    generate_binary_numeral,
    generate_ag_source,
)

__all__ = [
    "generate_pascal_program",
    "generate_calc_program",
    "generate_binary_numeral",
    "generate_ag_source",
]
