"""Synthetic program generators.

The paper measures throughput in source lines per minute over real
inputs (the 1800-line self grammar, the Pascal grammar).  These
generators produce arbitrarily large, deterministic, *valid* inputs in
each shipped language so EXP-T4 and the scaling ablations can sweep
input size.  Determinism matters: benchmarks must be reproducible, so
the "randomness" is a fixed linear-congruential sequence.
"""

from __future__ import annotations

from typing import List


class _LCG:
    """Deterministic pseudo-random stream (no global random state)."""

    def __init__(self, seed: int = 0x2A):
        self.state = seed & 0x7FFFFFFF or 1

    def next(self, bound: int) -> int:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state % bound


def generate_pascal_program(n_statements: int = 100, seed: int = 42) -> str:
    """A valid Pascal-subset program with ~``n_statements`` statements."""
    rng = _LCG(seed)
    names = [f"v{i}" for i in range(8)]
    flags = [f"b{i}" for i in range(3)]
    lines: List[str] = [
        "program generated;",
        "var " + ", ".join(names) + " : integer;",
        "    " + ", ".join(flags) + " : boolean;",
        "begin",
    ]
    body: List[str] = []

    def expr(depth: int = 0) -> str:
        choice = rng.next(5 if depth < 2 else 3)
        if choice == 0:
            return str(rng.next(100))
        if choice == 1:
            return names[rng.next(len(names))]
        if choice == 2:
            return f"{names[rng.next(len(names))]} + {rng.next(10)}"
        if choice == 3:
            return f"({expr(depth + 1)}) * {names[rng.next(len(names))]}"
        return f"{expr(depth + 1)} - {expr(depth + 1)}"

    def cond() -> str:
        kind = rng.next(3)
        if kind == 0:
            return f"{names[rng.next(len(names))]} > {rng.next(50)}"
        if kind == 1:
            return f"{flags[rng.next(len(flags))]}"
        return f"({names[rng.next(len(names))]} < {rng.next(20)}) and {flags[rng.next(len(flags))]}"

    for i in range(n_statements):
        kind = rng.next(8)
        if kind in (0, 1, 2):
            body.append(f"  {names[rng.next(len(names))]} := {expr()}")
        elif kind == 3:
            body.append(f"  {flags[rng.next(len(flags))]} := {cond()}")
        elif kind == 4:
            body.append(
                f"  if {cond()} then {names[rng.next(len(names))]} := {expr()}"
                f" else writeln({names[rng.next(len(names))]})"
            )
        elif kind == 5:
            body.append(
                f"  for {names[rng.next(len(names))]} := 1 to {1 + rng.next(6)} "
                f"do {names[rng.next(len(names))]} := {expr()}"
            )
        elif kind == 6:
            v = names[rng.next(len(names))]
            body.append(
                f"  repeat {v} := {v} - 1 until {v} < {rng.next(5)}"
            )
        else:
            body.append(
                f"  while {flags[rng.next(len(flags))]} do "
                f"{flags[rng.next(len(flags))]} := false"
            )
    lines.append(";\n".join(body))
    lines.append("end.")
    return "\n".join(lines)


def generate_calc_program(n_statements: int = 100, seed: int = 7) -> str:
    """A valid desk-calculator program: lets and prints."""
    rng = _LCG(seed)
    lines: List[str] = ["let x0 = 1"]
    defined = ["x0"]
    for i in range(1, n_statements):
        if rng.next(3) == 0:
            lines.append(f"print {defined[rng.next(len(defined))]} + {rng.next(9)}")
        else:
            name = f"x{len(defined)}"
            a = defined[rng.next(len(defined))]
            b = defined[rng.next(len(defined))]
            op = ["+", "-", "*"][rng.next(3)]
            lines.append(f"let {name} = {a} {op} {b}")
            defined.append(name)
    return " ;\n".join(lines)


def generate_binary_numeral(n_bits: int = 64, seed: int = 3) -> str:
    """A binary numeral ``<int-part>.<frac-part>`` with ~n_bits digits."""
    rng = _LCG(seed)
    head = max(1, n_bits // 2)
    tail = max(1, n_bits - head)
    int_part = "".join("01"[rng.next(2)] for _ in range(head))
    frac_part = "".join("01"[rng.next(2)] for _ in range(tail))
    return f"{int_part}.{frac_part}"


def generate_ag_source(n_productions: int = 40, seed: int = 11) -> str:
    """A valid ``.ag`` source with ``n_productions`` chain/list
    productions — workload for the Linguist pipeline itself (the paper's
    lines-per-minute measurements process attribute grammars)."""
    rng = _LCG(seed)
    n_nts = max(2, n_productions // 2)
    nts = [f"n{i}" for i in range(n_nts)]
    lines: List[str] = ["grammar generated : root ."]
    lines.append("symbols")
    lines.append("  nonterminal root, " + ", ".join(nts) + " ;")
    lines.append("  terminal T ;")
    lines.append("attributes")
    lines.append("  root : synthesized V int ;")
    for nt in nts:
        lines.append(f"  {nt} : inherited D int, synthesized V int ;")
    lines.append("  T : intrinsic W int ;")
    lines.append("productions")
    lines.append(f"root = {nts[0]} .")
    lines.append(f"  {nts[0]}.D = 0 ;")
    # A chain from the start to every other nonterminal, then leaves.
    made = 1
    for i, nt in enumerate(nts):
        if made >= n_productions:
            break
        if i + 1 < n_nts:
            nxt = nts[i + 1]
            lines.append(f"{nt} = {nxt} T .")
            lines.append(f"  {nxt}.D = {nt}.D + {rng.next(5)} ,")
            lines.append(f"  {nt}.V = {nxt}.V + T.W ;")
            made += 1
    for i, nt in enumerate(nts):
        if made >= n_productions and i > 0:
            break
        lines.append(f"{nt} = T .")
        lines.append(f"  {nt}.V = {nt}.D + T.W ;")
        made += 1
    lines.append("end")
    return "\n".join(lines)
