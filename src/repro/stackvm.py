"""A stack-machine interpreter for the code the Pascal front ends emit.

Both the generated attribute-grammar front end (``pascal.ag``) and the
hand-written comparator compiler synthesize the same simple stack code
(``LOADC``/``LOAD``/``STORE``, arithmetic and comparison operators,
``JMP``/``JMPF`` with labels, ``WRITE``, ``HALT``).  This module runs
it, which closes the loop: an end-to-end compiler whose *execution*
behavior can be tested, not just its text output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from repro.errors import EvaluationError


@dataclass
class ExecutionResult:
    """Outcome of one run: the WRITE outputs and the final store."""

    output: List[int] = field(default_factory=list)
    memory: Dict[str, int] = field(default_factory=dict)
    steps: int = 0


class StackMachine:
    """Executes a label-resolved instruction list.

    ``fuel`` bounds the step count so buggy (or adversarial) code with
    infinite loops terminates with a diagnostic instead of hanging.
    """

    BINOPS = {
        "ADD": lambda a, b: a + b,
        "SUB": lambda a, b: a - b,
        "MUL": lambda a, b: a * b,
        "DIV": lambda a, b: _int_div(a, b),
        "CMPEQ": lambda a, b: int(a == b),
        "CMPNE": lambda a, b: int(a != b),
        "CMPLT": lambda a, b: int(a < b),
        "CMPGT": lambda a, b: int(a > b),
        "CMPLE": lambda a, b: int(a <= b),
        "CMPGE": lambda a, b: int(a >= b),
        "AND": lambda a, b: int(bool(a) and bool(b)),
        "OR": lambda a, b: int(bool(a) or bool(b)),
    }

    def __init__(self, code: Iterable[str], fuel: int = 1_000_000):
        self.code: List[str] = list(code)
        self.fuel = fuel
        self.labels: Dict[str, int] = {}
        for i, instr in enumerate(self.code):
            if instr.endswith(":"):
                label = instr[:-1]
                if label in self.labels:
                    raise EvaluationError(f"duplicate label {label!r}")
                self.labels[label] = i

    def run(self, initial: Dict[str, int] = None) -> ExecutionResult:
        result = ExecutionResult(memory=dict(initial or {}))
        stack: List[int] = []
        pc = 0
        n = len(self.code)
        while pc < n:
            result.steps += 1
            if result.steps > self.fuel:
                raise EvaluationError(
                    f"stack machine out of fuel after {self.fuel} steps "
                    "(infinite loop?)"
                )
            instr = self.code[pc]
            pc += 1
            if instr.endswith(":"):
                continue
            op, _, arg = instr.partition(" ")
            if op == "LOADC":
                stack.append(int(arg))
            elif op == "LOAD":
                stack.append(result.memory.get(arg, 0))
            elif op == "STORE":
                result.memory[arg] = self._pop(stack, instr)
            elif op in self.BINOPS:
                right = self._pop(stack, instr)
                left = self._pop(stack, instr)
                stack.append(self.BINOPS[op](left, right))
            elif op == "NOTOP":
                stack.append(int(not self._pop(stack, instr)))
            elif op == "JMP":
                pc = self._target(arg)
            elif op == "JMPF":
                if not self._pop(stack, instr):
                    pc = self._target(arg)
            elif op == "WRITE":
                result.output.append(self._pop(stack, instr))
            elif op == "HALT":
                break
            else:
                raise EvaluationError(f"unknown instruction {instr!r}")
        return result

    @staticmethod
    def _pop(stack: List[int], instr: str) -> int:
        if not stack:
            raise EvaluationError(f"stack underflow at {instr!r}")
        return stack.pop()

    def _target(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise EvaluationError(f"jump to undefined label {label!r}") from None


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise EvaluationError("division by zero")
    # Pascal's div truncates toward zero.
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def execute(code: Iterable[str], fuel: int = 1_000_000) -> ExecutionResult:
    """Convenience: run ``code`` on a fresh machine."""
    return StackMachine(code, fuel=fuel).run()
