"""Human-readable conflict reports for the LALR table builder."""

from __future__ import annotations

from typing import Optional

from repro.lalr.lr0 import LR0Automaton


def format_conflicts(tables, automaton: Optional[LR0Automaton] = None) -> str:
    """Render every conflict in ``tables`` with its state's items."""
    lines = []
    seen_states = set()
    for c in tables.conflicts:
        lines.append(
            f"{c.kind} conflict in state {c.state} on {c.terminal!r}: "
            f"{c.existing} vs {c.incoming}"
        )
        for item in c.items:
            lines.append(f"    via item: {item}")
        if automaton is not None and c.state not in seen_states:
            seen_states.add(c.state)
            lines.append(automaton.render_state(c.state))
    return "\n".join(lines)
