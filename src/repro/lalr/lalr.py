"""LALR(1) lookahead computation.

We use the classic spontaneous-generation / propagation algorithm
(Aho–Sethi–Ullman §4.7.5): probe each kernel item with a dummy
lookahead ``#`` through an LR(1) closure; lookaheads that emerge as
concrete terminals are *spontaneous*, and wherever ``#`` itself emerges
the lookahead *propagates* from the probed item.  Iterate propagation
to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lalr.grammar import EOF_SYMBOL, Grammar
from repro.lalr.lr0 import Item, LR0Automaton

#: The dummy probe lookahead.
HASH = "#"


def _lr1_closure(
    grammar: Grammar, seed: List[Tuple[Item, str]]
) -> Set[Tuple[Item, str]]:
    """LR(1) closure of ``seed`` items with lookaheads (``#`` allowed)."""
    out: Set[Tuple[Item, str]] = set(seed)
    work = list(seed)
    while work:
        item, la = work.pop()
        sym = item.next_symbol(grammar)
        if not sym or sym not in grammar.nonterminals:
            continue
        p = grammar.productions[item.prod]
        rest = p.rhs[item.dot + 1 :]
        lookaheads = grammar.first_of_sequence(rest, {la})
        for q in grammar.productions_of(sym):
            for b in lookaheads:
                entry = (Item(q.index, 0), b)
                if entry not in out:
                    out.add(entry)
                    work.append(entry)
    return out


def compute_lalr_lookaheads(automaton: LR0Automaton) -> Dict[Tuple[int, Item], Set[str]]:
    """Return LALR(1) lookahead sets for every (state, kernel item).

    Keys cover exactly the kernel items of every state; the lookahead of
    a non-kernel completed item is recovered by closing its state (see
    :func:`expand_to_completed`).
    """
    g = automaton.grammar
    lookaheads: Dict[Tuple[int, Item], Set[str]] = {}
    propagate: Dict[Tuple[int, Item], Set[Tuple[int, Item]]] = {}

    for state, kernel in enumerate(automaton.kernels):
        for item in kernel:
            lookaheads.setdefault((state, item), set())

    # The start item sees end-of-input.  (Production 0 already embeds
    # $eof in its RHS, but seeding is still harmless and keeps the
    # accept action well-defined.)
    lookaheads[(0, Item(0, 0))].add(EOF_SYMBOL)

    # Determine spontaneous lookaheads and the propagation graph.
    for state, kernel in enumerate(automaton.kernels):
        for item in kernel:
            probe = _lr1_closure(g, [(item, HASH)])
            for closed_item, la in probe:
                sym = closed_item.next_symbol(g)
                if not sym:
                    continue
                target_state = automaton.goto.get((state, sym))
                if target_state is None:
                    continue
                target_item = closed_item.advanced()
                key = (target_state, target_item)
                if la == HASH:
                    propagate.setdefault((state, item), set()).add(key)
                else:
                    lookaheads.setdefault(key, set()).add(la)

    # Propagate to fixpoint.
    changed = True
    while changed:
        changed = False
        for src, targets in propagate.items():
            src_las = lookaheads.get(src, set())
            if not src_las:
                continue
            for tgt in targets:
                tgt_las = lookaheads.setdefault(tgt, set())
                before = len(tgt_las)
                tgt_las.update(src_las)
                if len(tgt_las) != before:
                    changed = True
    return lookaheads


def expand_to_completed(
    automaton: LR0Automaton,
    kernel_lookaheads: Dict[Tuple[int, Item], Set[str]],
) -> Dict[Tuple[int, Item], Set[str]]:
    """Lookahead sets for every *completed* item of every state.

    A completed non-kernel item ``A -> ·`` (empty production) inherits
    the lookaheads that reach it through the LR(1) closure of its
    state's kernel items.
    """
    g = automaton.grammar
    out: Dict[Tuple[int, Item], Set[str]] = {}
    for state in range(automaton.n_states()):
        completed = automaton.completed_items(state)
        if not completed:
            continue
        kernel_completed = [i for i in completed if i in automaton.kernels[state]]
        for item in kernel_completed:
            out[(state, item)] = set(kernel_lookaheads.get((state, item), set()))
        nonkernel = [i for i in completed if i not in automaton.kernels[state]]
        if nonkernel:
            seed: List[Tuple[Item, str]] = []
            for kitem in automaton.kernels[state]:
                for la in kernel_lookaheads.get((state, kitem), set()):
                    seed.append((kitem, la))
            closure = _lr1_closure(g, seed)
            for item in nonkernel:
                las = {la for it, la in closure if it == item and la != HASH}
                out[(state, item)] = las
    return out
