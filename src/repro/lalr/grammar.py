"""Context-free grammar model with nullable / FIRST / FOLLOW analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GrammarError

#: The end-of-input terminal (matches the scanner's EOF token kind).
EOF_SYMBOL = "$eof"

#: Name given to the augmented start symbol.
AUGMENTED_START = "$accept"


@dataclass(frozen=True)
class Production:
    """One production ``lhs -> rhs``; ``tag`` names it (the limb name)."""

    index: int
    lhs: str
    rhs: Tuple[str, ...]
    tag: str = ""

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else "ε"
        label = f"  [{self.tag}]" if self.tag else ""
        return f"{self.lhs} -> {rhs}{label}"

    def __len__(self) -> int:
        return len(self.rhs)


class Grammar:
    """A context-free grammar, augmented on construction.

    Production 0 is always ``$accept -> start $eof``.  Terminals are the
    symbols that never appear on a left-hand side unless explicitly
    declared; declaring them up front catches misspelled nonterminals.
    """

    def __init__(
        self,
        start: str,
        productions: Iterable[Tuple[str, Sequence[str], str]],
        terminals: Optional[Iterable[str]] = None,
    ):
        plist = list(productions)
        if not plist:
            raise GrammarError("grammar has no productions")
        self.start = start
        self.productions: List[Production] = [
            Production(0, AUGMENTED_START, (start, EOF_SYMBOL), "$accept")
        ]
        for lhs, rhs, tag in plist:
            self.productions.append(
                Production(len(self.productions), lhs, tuple(rhs), tag)
            )

        self.nonterminals: Set[str] = {p.lhs for p in self.productions}
        mentioned: Set[str] = set()
        for p in self.productions:
            mentioned.update(p.rhs)
        inferred_terminals = (mentioned - self.nonterminals) | {EOF_SYMBOL}
        if terminals is not None:
            declared = set(terminals) | {EOF_SYMBOL}
            bad = inferred_terminals - declared
            if bad:
                raise GrammarError(
                    "symbols used but neither defined nor declared terminal: "
                    + ", ".join(sorted(bad))
                )
            extra_nt = declared & self.nonterminals
            if extra_nt - {EOF_SYMBOL}:
                raise GrammarError(
                    "symbols declared terminal but defined by productions: "
                    + ", ".join(sorted(extra_nt))
                )
            self.terminals = declared
        else:
            self.terminals = inferred_terminals

        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")

        self._by_lhs: Dict[str, List[Production]] = {}
        for p in self.productions:
            self._by_lhs.setdefault(p.lhs, []).append(p)

        self._check_reachability()
        self.nullable: Set[str] = self._compute_nullable()
        self.first: Dict[str, Set[str]] = self._compute_first()
        self.follow: Dict[str, Set[str]] = self._compute_follow()

    # ------------------------------------------------------------------

    def productions_of(self, nonterminal: str) -> List[Production]:
        return self._by_lhs.get(nonterminal, [])

    def is_terminal(self, symbol: str) -> bool:
        return symbol in self.terminals

    def symbols(self) -> Set[str]:
        return self.terminals | self.nonterminals

    # ------------------------------------------------------------------

    def _check_reachability(self) -> None:
        reached = {AUGMENTED_START}
        work = [AUGMENTED_START]
        while work:
            sym = work.pop()
            for p in self.productions_of(sym):
                for s in p.rhs:
                    if s not in reached:
                        reached.add(s)
                        if s in self.nonterminals:
                            work.append(s)
        unreachable = self.nonterminals - reached
        if unreachable:
            raise GrammarError(
                "unreachable nonterminals: " + ", ".join(sorted(unreachable))
            )

    def _compute_nullable(self) -> Set[str]:
        nullable: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                if p.lhs in nullable:
                    continue
                if all(s in nullable for s in p.rhs):
                    nullable.add(p.lhs)
                    changed = True
        return nullable

    def _compute_first(self) -> Dict[str, Set[str]]:
        first: Dict[str, Set[str]] = {t: {t} for t in self.terminals}
        for nt in self.nonterminals:
            first[nt] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                target = first[p.lhs]
                before = len(target)
                for s in p.rhs:
                    target.update(first[s])
                    if s not in self.nullable:
                        break
                if len(target) != before:
                    changed = True
        return first

    def first_of_sequence(self, seq: Sequence[str], lookahead: Optional[Set[str]] = None) -> Set[str]:
        """FIRST of ``seq`` followed (if all nullable) by ``lookahead``."""
        out: Set[str] = set()
        for s in seq:
            out.update(self.first[s])
            if s not in self.nullable:
                return out
        if lookahead:
            out.update(lookahead)
        return out

    def sequence_nullable(self, seq: Sequence[str]) -> bool:
        return all(s in self.nullable for s in seq)

    def _compute_follow(self) -> Dict[str, Set[str]]:
        follow: Dict[str, Set[str]] = {nt: set() for nt in self.nonterminals}
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                for i, s in enumerate(p.rhs):
                    if s not in self.nonterminals:
                        continue
                    rest = p.rhs[i + 1 :]
                    target = follow[s]
                    before = len(target)
                    target.update(self.first_of_sequence(rest))
                    if self.sequence_nullable(rest):
                        target.update(follow[p.lhs])
                    if len(target) != before:
                        changed = True
        return follow

    def __str__(self) -> str:
        return "\n".join(str(p) for p in self.productions)
