"""Table-driven shift-reduce parser.

The parser interprets :class:`~repro.lalr.tables.ParseTables` over a
token stream.  It reports events through a listener so the APT builder
can emit tree nodes **in bottom-up order** — exactly the paper's first
linearization strategy ("for the parser to emit tree nodes in bottom-up
order … the first attribute evaluation pass is right-to-left").  A
generic :class:`ParseTreeNode` builder is provided for tests and for
the prefix-emission strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.errors import ParseError
from repro.lalr.grammar import EOF_SYMBOL, Grammar, Production
from repro.lalr.tables import Action, ActionKind, ParseTables
from repro.regex.scanner import Token


@dataclass
class ParseTreeNode:
    """A generic concrete-syntax tree node."""

    symbol: str
    production: Optional[Production] = None  # None for terminal leaves
    token: Optional[Token] = None
    children: List["ParseTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.production is None

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf:
            text = self.token.text if self.token else ""
            return f"{pad}{self.symbol} {text!r}"
        lines = [f"{pad}{self.symbol}  [{self.production.tag or self.production.index}]"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)

    def leaves(self) -> Iterable["ParseTreeNode"]:
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.leaves()


class ParseListener:
    """Receives shift/reduce events during parsing.

    ``on_shift`` fires for every terminal consumed; ``on_reduce`` fires
    for every production applied, in bottom-up order — together these
    form the right-parse the first evaluation pass consumes.
    """

    def on_shift(self, token: Token) -> None:  # pragma: no cover - interface
        pass

    def on_reduce(self, production: Production) -> None:  # pragma: no cover
        pass


class LALRParser:
    """Interprets LALR parse tables over a scanner's token stream."""

    def __init__(self, tables: ParseTables):
        self.tables = tables
        self.grammar: Grammar = tables.grammar

    def parse(
        self,
        tokens: Iterable[Token],
        listener: Optional[ParseListener] = None,
        build_tree: bool = True,
        tracer=None,
    ) -> Optional[ParseTreeNode]:
        """Parse ``tokens``; return the tree root (or None if not built).

        ``tokens`` must end with a token whose kind is ``$eof`` (the
        scanner emits one).  Raises :class:`ParseError` on syntax errors
        with the set of expected terminals.  With a ``tracer`` the whole
        parse runs inside one span (category ``parse``) whose args carry
        the final shift/reduce counts.
        """
        if tracer is not None:
            span = tracer.begin("parse", cat="parse")
            try:
                return self._parse(tokens, listener, build_tree, span)
            finally:
                tracer.end()
        return self._parse(tokens, listener, build_tree, None)

    def _parse(
        self,
        tokens: Iterable[Token],
        listener: Optional[ParseListener],
        build_tree: bool,
        span,
    ) -> Optional[ParseTreeNode]:
        n_shifts = 0
        n_reduces = 0
        state_stack: List[int] = [0]
        node_stack: List[Optional[ParseTreeNode]] = []
        stream = iter(tokens)
        token = next(stream, None)
        if token is None:
            token = Token(EOF_SYMBOL, "", _loc())
        while True:
            state = state_stack[-1]
            act = self.tables.action_for(state, token.kind)
            if act is None:
                expected = self.tables.expected_terminals(state)
                raise ParseError(
                    f"{token.location}: syntax error at {token.kind} "
                    f"({token.text!r}); expected one of: {', '.join(expected)}"
                )
            if act.kind is ActionKind.SHIFT:
                n_shifts += 1
                if listener is not None:
                    listener.on_shift(token)
                state_stack.append(act.target)
                node_stack.append(
                    ParseTreeNode(token.kind, token=token) if build_tree else None
                )
                token = next(stream, None)
                if token is None:
                    token = Token(EOF_SYMBOL, "", _loc())
            elif act.kind is ActionKind.REDUCE:
                n_reduces += 1
                prod = self.grammar.productions[act.target]
                n = len(prod.rhs)
                children = node_stack[len(node_stack) - n :] if n else []
                del state_stack[len(state_stack) - n :]
                del node_stack[len(node_stack) - n :]
                if listener is not None:
                    listener.on_reduce(prod)
                goto = self.tables.goto_for(state_stack[-1], prod.lhs)
                if goto is None:
                    raise ParseError(
                        f"internal: missing goto for {prod.lhs} in state {state_stack[-1]}"
                    )
                state_stack.append(goto)
                node_stack.append(
                    ParseTreeNode(prod.lhs, production=prod, children=list(children))
                    if build_tree
                    else None
                )
            else:  # ACCEPT
                if span is not None:
                    span.args["n_shifts"] = n_shifts
                    span.args["n_reduces"] = n_reduces
                if listener is not None:
                    listener.on_shift(token)  # the $eof leaf
                if build_tree:
                    root = ParseTreeNode(
                        self.grammar.productions[0].lhs,
                        production=self.grammar.productions[0],
                        children=[
                            node_stack[-1],
                            ParseTreeNode(EOF_SYMBOL, token=token),
                        ],
                    )
                    return root
                return None


def _loc():
    from repro.errors import SourceLocation

    return SourceLocation()
