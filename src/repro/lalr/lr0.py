"""The LR(0) automaton: items, closure, goto, canonical collection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lalr.grammar import Grammar, Production


@dataclass(frozen=True, order=True)
class Item:
    """An LR(0) item: production index and dot position."""

    prod: int
    dot: int

    def next_symbol(self, grammar: Grammar) -> str:
        p = grammar.productions[self.prod]
        return p.rhs[self.dot] if self.dot < len(p.rhs) else ""

    def advanced(self) -> "Item":
        return Item(self.prod, self.dot + 1)

    def render(self, grammar: Grammar) -> str:
        p = grammar.productions[self.prod]
        rhs = list(p.rhs)
        rhs.insert(self.dot, "·")
        return f"{p.lhs} -> {' '.join(rhs)}"


ItemSet = FrozenSet[Item]


class LR0Automaton:
    """Canonical collection of LR(0) item sets and the goto function."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.states: List[ItemSet] = []
        self.kernels: List[ItemSet] = []
        #: goto[(state, symbol)] -> state
        self.goto: Dict[Tuple[int, str], int] = {}
        self._build()

    def closure(self, items: Set[Item]) -> ItemSet:
        g = self.grammar
        out = set(items)
        work = list(items)
        while work:
            item = work.pop()
            sym = item.next_symbol(g)
            if sym and sym in g.nonterminals:
                for p in g.productions_of(sym):
                    new = Item(p.index, 0)
                    if new not in out:
                        out.add(new)
                        work.append(new)
        return frozenset(out)

    def goto_set(self, items: ItemSet, symbol: str) -> ItemSet:
        g = self.grammar
        kernel = {
            item.advanced()
            for item in items
            if item.next_symbol(g) == symbol
        }
        return self.closure(kernel) if kernel else frozenset()

    def _build(self) -> None:
        g = self.grammar
        start_kernel = frozenset({Item(0, 0)})
        start = self.closure(set(start_kernel))
        index: Dict[ItemSet, int] = {start: 0}
        self.states = [start]
        self.kernels = [start_kernel]
        work = [0]
        while work:
            i = work.pop(0)
            items = self.states[i]
            symbols = sorted(
                {item.next_symbol(g) for item in items if item.next_symbol(g)}
            )
            for sym in symbols:
                kernel = frozenset(
                    item.advanced() for item in items if item.next_symbol(g) == sym
                )
                nxt_set = self.closure(set(kernel))
                j = index.get(nxt_set)
                if j is None:
                    j = len(self.states)
                    index[nxt_set] = j
                    self.states.append(nxt_set)
                    self.kernels.append(kernel)
                    work.append(j)
                self.goto[(i, sym)] = j

    def n_states(self) -> int:
        return len(self.states)

    def completed_items(self, state: int) -> List[Item]:
        """Items with the dot at the end (reduce candidates) in ``state``."""
        g = self.grammar
        return [
            item
            for item in self.states[state]
            if item.dot == len(g.productions[item.prod].rhs)
        ]

    def render_state(self, state: int) -> str:
        lines = [f"state {state}:"]
        for item in sorted(self.states[state]):
            marker = "  *" if item in self.kernels[state] else "   "
            lines.append(f"{marker} {item.render(self.grammar)}")
        return "\n".join(lines)
