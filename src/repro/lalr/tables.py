"""ACTION/GOTO table construction with conflict detection."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConflictError
from repro.lalr.grammar import EOF_SYMBOL, Grammar
from repro.lalr.lalr import compute_lalr_lookaheads, expand_to_completed
from repro.lalr.lr0 import Item, LR0Automaton


class ActionKind(enum.Enum):
    SHIFT = "shift"
    REDUCE = "reduce"
    ACCEPT = "accept"


@dataclass(frozen=True)
class Action:
    kind: ActionKind
    target: int = 0  # shift: next state; reduce: production index

    def __str__(self) -> str:
        if self.kind is ActionKind.SHIFT:
            return f"s{self.target}"
        if self.kind is ActionKind.REDUCE:
            return f"r{self.target}"
        return "acc"


@dataclass(frozen=True)
class Conflict:
    state: int
    terminal: str
    existing: Action
    incoming: Action
    items: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        kinds = {self.existing.kind, self.incoming.kind}
        if kinds == {ActionKind.SHIFT, ActionKind.REDUCE}:
            return "shift/reduce"
        if kinds == {ActionKind.REDUCE}:
            return "reduce/reduce"
        return "other"


@dataclass
class ParseTables:
    """The generated parse tables (what overlay 1 links in as data)."""

    grammar: Grammar
    action: Dict[Tuple[int, str], Action]
    goto: Dict[Tuple[int, str], int]
    n_states: int
    conflicts: List[Conflict] = field(default_factory=list)

    def action_for(self, state: int, terminal: str) -> Optional[Action]:
        return self.action.get((state, terminal))

    def goto_for(self, state: int, nonterminal: str) -> Optional[int]:
        return self.goto.get((state, nonterminal))

    def table_bytes(self) -> int:
        """Approximate 8086-style footprint: 4 bytes per populated entry."""
        return 4 * (len(self.action) + len(self.goto))

    def expected_terminals(self, state: int) -> List[str]:
        return sorted(t for (s, t) in self.action if s == state)


def build_tables(grammar: Grammar, strict: bool = True) -> ParseTables:
    """Build LALR(1) tables.

    With ``strict`` (the default) any conflict raises
    :class:`~repro.errors.ConflictError`; otherwise conflicts are
    recorded on the result and resolved shift-over-reduce /
    lowest-production-first, lex-style.
    """
    automaton = LR0Automaton(grammar)
    kernel_las = compute_lalr_lookaheads(automaton)
    completed_las = expand_to_completed(automaton, kernel_las)

    action: Dict[Tuple[int, str], Action] = {}
    goto: Dict[Tuple[int, str], int] = {}
    conflicts: List[Conflict] = []

    def put(state: int, terminal: str, act: Action, items: Tuple[str, ...]) -> None:
        key = (state, terminal)
        existing = action.get(key)
        if existing is None:
            action[key] = act
            return
        if existing == act:
            return
        conflicts.append(Conflict(state, terminal, existing, act, items))
        # Resolution when tolerated: prefer shift, then lower production.
        if existing.kind is ActionKind.SHIFT:
            return
        if act.kind is ActionKind.SHIFT:
            action[key] = act
            return
        if act.target < existing.target:
            action[key] = act

    for state in range(automaton.n_states()):
        items = automaton.states[state]
        for item in items:
            sym = item.next_symbol(grammar)
            if sym:
                nxt = automaton.goto[(state, sym)]
                if grammar.is_terminal(sym):
                    if item.prod == 0 and sym == EOF_SYMBOL:
                        put(state, EOF_SYMBOL, Action(ActionKind.ACCEPT),
                            (item.render(grammar),))
                    else:
                        put(state, sym, Action(ActionKind.SHIFT, nxt),
                            (item.render(grammar),))
                else:
                    goto[(state, sym)] = nxt
        for item in automaton.completed_items(state):
            if item.prod == 0:
                continue
            las = completed_las.get((state, item), set())
            for la in las:
                put(state, la, Action(ActionKind.REDUCE, item.prod),
                    (item.render(grammar),))

    tables = ParseTables(
        grammar=grammar,
        action=action,
        goto=goto,
        n_states=automaton.n_states(),
        conflicts=conflicts,
    )
    if strict and conflicts:
        from repro.lalr.conflicts import format_conflicts

        raise ConflictError(
            f"grammar is not LALR(1): {len(conflicts)} conflict(s)\n"
            + format_conflicts(tables, automaton)
        )
    return tables
