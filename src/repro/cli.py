"""Command-line interface: the LINGUIST tool as a program.

Subcommands::

    python -m repro stats FILE.ag           grammar statistics + pass report
    python -m repro listing FILE.ag [-o F]  the listing file (overlay 6)
    python -m repro generate FILE.ag --language pascal|python [-o DIR]
    python -m repro run NAME INPUT [--exec] translate with a shipped grammar
    python -m repro selfcheck               the self-generation bootstrap
    python -m repro trace FILE.ag INPUT [--out F --format chrome|ndjson|summary]
                                            traced translation (obs subsystem)
    python -m repro profile FILE.ag [INPUT] per-overlay/per-pass time, I/O,
                                            and peak-memory tables
    python -m repro fsck SPOOL [--salvage OUT]
                                            verify an APT spool file or a
                                            provenance log; recover the valid
                                            prefix into OUT
    python -m repro debug why|history|step|summary DIR [...]
                                            time-travel queries over a recorded
                                            run (repro run ... --record DIR)
    python -m repro batch FILE.ag INPUTS... [-j N --cache-dir DIR --timeout S]
                                            translate many inputs through the
                                            persistent build cache, optionally
                                            across worker processes
    python -m repro serve FILE.ag [...] [--port P --workers N --journal DIR]
                                            long-lived fault-tolerant
                                            translation daemon (supervised
                                            workers, admission control,
                                            durable request journal)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.passes.schedule import Direction

_DIRECTIONS = {"r2l": Direction.R2L, "l2r": Direction.L2R, "auto": "auto"}


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def _build_linguist(args):
    from repro.core import Linguist

    return Linguist(
        _read(args.file),
        filename=args.file,
        first_direction=_DIRECTIONS[args.direction],
    )


def cmd_stats(args) -> int:
    from repro.passes.report import render_pass_report

    linguist = _build_linguist(args)
    print(linguist.statistics.render())
    print()
    print(render_pass_report(linguist.assignment))
    print()
    print("overlay times:")
    print(linguist.overlay_times.render())
    return 0


def cmd_listing(args) -> int:
    linguist = _build_linguist(args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(linguist.listing)
        print(f"listing written to {args.output}")
    else:
        print(linguist.listing)
    return 0


def cmd_generate(args) -> int:
    linguist = _build_linguist(args)
    artifacts = (
        linguist.pascal_artifacts
        if args.language == "pascal"
        else linguist.python_artifacts
    )
    ext = "pas" if args.language == "pascal" else "py"
    outdir = args.output or "."
    os.makedirs(outdir, exist_ok=True)
    for artifact in artifacts:
        path = os.path.join(outdir, f"pass{artifact.pass_k}.{ext}")
        with open(path, "w", encoding="utf-8") as f:
            f.write(artifact.text)
        print(
            f"wrote {path}: {artifact.total_bytes} bytes "
            f"(husk {artifact.husk_bytes}, semantic {artifact.sem_bytes}, "
            f"{artifact.n_subsumed} copy-rules subsumed)"
        )
    sizes = linguist.code_sizes(args.language)
    print(sizes.render())
    return 0


def cmd_run(args) -> int:
    from repro.core import Linguist
    from repro.grammars import GRAMMAR_NAMES, library_for, load_source
    from repro.grammars import scanners

    if args.name not in GRAMMAR_NAMES:
        print(f"unknown shipped grammar {args.name!r}; have {GRAMMAR_NAMES}",
              file=sys.stderr)
        return 2
    spec_factory = {
        "binary": scanners.binary_scanner_spec,
        "calc": scanners.calc_scanner_spec,
        "pascal": scanners.pascal_scanner_spec,
    }.get(args.name)
    if spec_factory is None and args.name == "linguist":
        from repro.frontend.lexer import LEXICAL_SPEC

        spec = LEXICAL_SPEC
    else:
        spec = spec_factory()
    if args.resume and not (args.checkpoint_dir or args.record):
        print("--resume requires --checkpoint-dir or --record", file=sys.stderr)
        return 2
    linguist = Linguist(load_source(args.name))
    translator = linguist.make_translator(
        spec, library=library_for(args.name), backend=args.backend
    )
    text = _read(args.input) if os.path.exists(args.input) else args.input
    disk_budget = None
    if args.disk_budget is not None:
        from repro.governance import DiskBudget

        disk_budget = DiskBudget(args.disk_budget, label=args.name)
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry() if args.memo_dir else None
    result = translator.translate(
        text, checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        spool_memory_budget=args.spool_memory_budget, record=args.record,
        disk_budget=disk_budget, memo_dir=args.memo_dir, metrics=metrics,
    )
    if args.memo_dir:
        hits = metrics.counter("incremental.hits").value
        misses = metrics.counter("incremental.misses").value
        spliced = metrics.counter("incremental.spliced_records").value
        print(
            f"# incremental memo at {args.memo_dir}: {hits} subtree "
            f"hit(s) splicing {spliced} record(s), {misses} miss(es)",
            file=sys.stderr,
        )
    if args.record:
        print(
            f"# provenance recorded to {args.record} "
            f"(query it with `repro debug why {args.record} NODE.ATTR`)",
            file=sys.stderr,
        )
    elif args.checkpoint_dir:
        verb = "resumed from" if args.resume else "checkpointed to"
        print(f"# evaluation {verb} {args.checkpoint_dir}", file=sys.stderr)
    for line in render_root_attrs(result.root_attrs):
        print(line)
    if args.execute:
        if "CODE" not in result:
            print("--exec: grammar produces no CODE attribute", file=sys.stderr)
            return 2
        from repro.stackvm import execute

        outcome = execute(list(result["CODE"]))
        print(f"execution output: {outcome.output}")
    return 0


def _scanner_and_library(name: str):
    """Scanner spec + function library of a shipped grammar, or (None, None).

    ``trace``/``profile``/``batch`` accept any ``.ag`` file; translating
    an INPUT additionally needs the described language's scanner, which
    we only have for the shipped grammars (keyed by file stem or
    ``--grammar``).
    """
    from repro.grammars import scanner_and_library

    return scanner_and_library(name)


def render_root_attrs(root_attrs) -> List[str]:
    """Render root attributes exactly as ``repro run`` prints them —
    ``repro batch`` and the serve daemon reuse this (it lives in
    :mod:`repro.evalgen.runtime` now) so their output is byte-identical."""
    from repro.evalgen.runtime import render_root_attrs as _render

    return _render(root_attrs)


def _grammar_stem(args) -> str:
    if getattr(args, "grammar", None):
        return args.grammar
    return os.path.splitext(os.path.basename(args.file))[0]


def cmd_trace(args) -> int:
    from repro.core import Linguist
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs.export import chrome_trace_json, ndjson, summary

    name = _grammar_stem(args)
    spec, library = _scanner_and_library(name)
    if spec is None:
        print(
            f"error: no shipped scanner for grammar {name!r}; "
            "pass --grammar binary|calc|pascal|asm|linguist",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer()
    metrics = MetricsRegistry()
    linguist = Linguist(
        _read(args.file),
        filename=args.file,
        first_direction=_DIRECTIONS[args.direction],
        tracer=tracer,
        metrics=metrics,
    )
    # The interpretive backend is the default here: it runs node visits
    # through the runtime, so the trace shows the full overlay → pass →
    # node-visit → semantic-function hierarchy.  The generated backend
    # still yields overlay/pass spans and all spool/event instants.
    translator = linguist.make_translator(
        spec, library=library, backend=args.backend
    )
    text = _read(args.input) if os.path.exists(args.input) else args.input
    translator.translate(text, tracer=tracer, metrics=metrics)

    if args.format == "chrome":
        rendered = chrome_trace_json(tracer.records)
    elif args.format == "ndjson":
        rendered = ndjson(tracer.records)
    else:
        rendered = summary(tracer.records, metrics)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(rendered + "\n")
        print(
            f"{args.format} trace written to {args.out} "
            f"({len(tracer.records)} records)"
        )
    else:
        print(rendered)
    return 0


def _render_metric(value) -> str:
    """One metric value on one line (histogram snapshots are dicts)."""
    if isinstance(value, dict):
        # Sorted so the summary table is deterministic (histogram
        # snapshots are plain dicts in observation-insertion order).
        inner = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(value.items())
        )
        return "{" + inner + "}"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def cmd_profile(args) -> int:
    from repro.core import Linguist
    from repro.core.overlays import OVERLAY_NAMES
    from repro.obs import MetricsRegistry

    cache = None
    if args.cache_dir:
        from repro.buildcache import BuildCache

        cache = BuildCache(args.cache_dir)
    metrics = MetricsRegistry()
    linguist = Linguist(
        _read(args.file),
        filename=args.file,
        first_direction=_DIRECTIONS[args.direction],
        metrics=metrics,
        cache=cache,
    )

    translated = False
    if args.input:
        name = _grammar_stem(args)
        spec, library = _scanner_and_library(name)
        if spec is None:
            print(
                f"error: no shipped scanner for grammar {name!r}; "
                "pass --grammar binary|calc|pascal|asm|linguist",
                file=sys.stderr,
            )
            return 2
        translator = linguist.make_translator(spec, library=library)
        text = _read(args.input) if os.path.exists(args.input) else args.input
        translator.translate(text, metrics=metrics, record=args.record)
        translated = True

    # Everything below renders from the live MetricsRegistry snapshot —
    # the same numbers the benchmarks consume.
    snap = metrics.snapshot()
    lines = [f"profile: {args.file} (grammar {linguist.ag.name!r})", ""]
    total = snap.get("overlay.total.seconds", 0.0) or 1e-12
    lines.append(
        f"{'overlay':<30} {'ms':>10} {'share':>7} {'io bytes':>10} "
        f"{'peak resident B':>16}"
    )
    for name in OVERLAY_NAMES:
        seconds = snap.get(f"overlay.{name}.seconds")
        if seconds is None:
            continue
        lines.append(
            f"{name:<30} {seconds * 1000:>10.1f} "
            f"{100 * seconds / total:>6.0f}% "
            f"{snap.get(f'overlay.{name}.io_bytes', 0):>10,} "
            f"{snap.get(f'overlay.{name}.peak_bytes', 0):>16,}"
        )
    lines.append(f"{'TOTAL':<30} {total * 1000:>10.1f} {'100':>6}%")

    if translated:
        lines.append("")
        lines.append(
            f"{'evaluation pass':<30} {'ms':>10} {'rec r/w':>11} "
            f"{'bytes r/w':>15} {'peak resident B':>16}"
        )
        for k in range(1, int(snap.get("pass.n_passes", 0)) + 1):
            lines.append(
                f"pass {k} ({snap.get(f'pass.{k}.direction', '?'):<13}) "
                f"{snap.get(f'pass.{k}.seconds', 0.0) * 1000:>10.1f} "
                f"{snap.get(f'pass.{k}.records_read', 0):>5}/"
                f"{snap.get(f'pass.{k}.records_written', 0):<5} "
                f"{snap.get(f'pass.{k}.bytes_read', 0):>7,}/"
                f"{snap.get(f'pass.{k}.bytes_written', 0):<7,} "
                f"{snap.get(f'pass.{k}.peak_bytes', 0):>16,}"
            )
        lines.append("")
        lines.append(
            f"totals: {snap.get('io.records_read', 0):,} records / "
            f"{snap.get('io.bytes_read', 0):,} bytes read, "
            f"{snap.get('io.records_written', 0):,} records / "
            f"{snap.get('io.bytes_written', 0):,} bytes written, "
            f"peak resident {snap.get('mem.peak_bytes', 0):,} B "
            f"({snap.get('mem.peak_nodes', 0)} nodes)"
        )
        lines.append(
            f"events: {snap.get('evt.copyrule_elided', 0)} copy-rules "
            f"elided, {snap.get('evt.subsume_saves', 0)} saves / "
            f"{snap.get('evt.subsume_restores', 0)} restores at "
            f"subsumption sites, {snap.get('evt.dead_attrs_skipped', 0)} "
            "dead attribute instances skipped"
        )
    for title, prefix in (
        ("fusion", "fusion."),
        ("spool codec", "spool.codec."),
        ("spool spill", "spool.spill."),
        ("robustness", "robust."),
        ("build cache", "cache."),
        ("batch", "batch."),
        ("serve", "serve."),
        ("provenance", "provenance."),
        ("debug", "debug."),
    ):
        section = {
            key: value
            for key, value in sorted(snap.items())
            if key.startswith(prefix) and not key.endswith(".peak")
        }
        if not section:
            continue
        lines.append("")
        lines.append(
            f"{title}: "
            + ", ".join(
                f"{key[len(prefix):]}={_render_metric(value)}"
                for key, value in section.items()
            )
        )
    print("\n".join(lines))
    if args.metrics:
        print()
        print(metrics.render())
    return 0


def _say(args):
    """``print``, or a no-op under ``--quiet`` (exit codes still talk).

    ``fsck --json`` also silences the human renderer: the JSON document
    is the whole report, so nothing else may touch stdout.
    """
    if getattr(args, "quiet", False) or getattr(args, "json", False):
        return lambda *a, **k: None
    return print


def _fsck_emit(args, report, fmt: str, code: int, **extra) -> int:
    """Common tail of every fsck path: emit the ``--json`` document
    (artifact path, format, verdict, loss count) and return the exit
    code unchanged — scripts keep branching on 0/1/2 either way."""
    if getattr(args, "json", False):
        import json

        doc = {
            "path": args.spool,
            "format": fmt,
            "verdict": ("clean" if code == 0 else
                        "salvaged-with-loss" if code == 2 else "corrupt"),
            "exit": code,
            "n_valid": getattr(report, "n_valid", None),
        }
        err = getattr(report, "error", None)
        if err is not None:
            doc["error"] = {"reason": err.reason, "locus": err.locus()}
        if getattr(args, "salvage", None):
            doc["salvaged_to"] = args.salvage
        doc.update(extra)
        print(json.dumps(doc, sort_keys=True))
    return code


def cmd_fsck(args) -> int:
    """Verify (and optionally salvage) a durable artifact file.

    Exit status: 0 clean, 1 corrupt (or missing), 2 corrupt but the
    longest checksum-valid prefix was recovered via ``--salvage``
    (salvaged with loss).  ``--quiet`` suppresses all output so scripts
    can branch on the code alone.
    """
    from repro.apt.storage import salvage_spool, scan_spool
    from repro.errors import Diagnostic, Severity, SourceLocation
    from repro.obs import MetricsRegistry

    say = _say(args)
    metrics = MetricsRegistry()
    if not os.path.exists(args.spool):
        say(f"error: no such spool file: {args.spool}", file=sys.stderr)
        if getattr(args, "json", False):
            import json

            print(json.dumps({
                "path": args.spool, "format": None,
                "verdict": "missing", "exit": 1,
            }, sort_keys=True))
        return 1
    from repro.obs.provenance import looks_like_provenance_log
    from repro.passes.incremental import looks_like_memo_manifest
    from repro.serve.journal import looks_like_request_journal

    memo_target = args.spool
    if os.path.isdir(args.spool):
        from repro.passes.incremental import MEMO_LOG

        memo_target = os.path.join(args.spool, MEMO_LOG)
    if looks_like_provenance_log(args.spool):
        return _fsck_provenance(args, metrics)
    if looks_like_request_journal(args.spool):
        return _fsck_journal(args, metrics)
    if looks_like_memo_manifest(memo_target):
        return _fsck_memo(args, metrics)
    if args.salvage:
        report = salvage_spool(args.spool, args.salvage, metrics=metrics)
    else:
        report = scan_spool(args.spool, metrics=metrics)
    say(report.render())
    if args.salvage:
        say(
            f"salvaged {report.n_valid} record(s) "
            f"({report.valid_data_bytes:,} payload bytes) -> {args.salvage}"
        )
    if args.metrics:
        say()
        say(metrics.render())
    loss = (report.sealed_records - report.n_valid
            if report.sealed_records is not None else None)
    if report.ok:
        return _fsck_emit(args, report, f"spool-v{report.version}", 0, loss=0)
    # A location-bearing diagnostic: the damaged region, named the same
    # way grammar errors name their source coordinates.
    err = report.error
    diag = Diagnostic(
        Severity.ERROR,
        f"spool corrupt at {err.locus()} [{err.reason}]; "
        f"valid prefix: {report.n_valid} record(s), "
        f"{report.valid_end_offset} bytes",
        SourceLocation(filename=args.spool),
    )
    say(str(diag), file=sys.stderr)
    return _fsck_emit(args, report, f"spool-v{report.version}",
                      2 if args.salvage else 1, loss=loss)


def _fsck_provenance(args, metrics) -> int:
    """The fsck path for PROV1 provenance logs (sniffed by header)."""
    from repro.errors import Diagnostic, Severity, SourceLocation
    from repro.obs.provenance import salvage_provenance, scan_provenance

    say = _say(args)
    if args.salvage:
        report = salvage_provenance(args.spool, args.salvage, metrics=metrics)
    else:
        report = scan_provenance(args.spool, metrics=metrics)
    say(report.render())
    if args.salvage:
        say(f"salvaged {report.n_valid} record(s) -> {args.salvage}")
    if args.metrics:
        say()
        say(metrics.render())
    if report.ok:
        return _fsck_emit(args, report, "PROV1", 0,
                          loss=0, n_events=report.n_events)
    err = report.error
    diag = Diagnostic(
        Severity.ERROR,
        f"provenance log corrupt at {err.locus()} [{err.reason}]; "
        f"valid prefix: {report.n_valid} record(s)",
        SourceLocation(filename=args.spool),
    )
    say(str(diag), file=sys.stderr)
    return _fsck_emit(args, report, "PROV1", 2 if args.salvage else 1,
                      loss=None, n_events=report.n_events)


def _fsck_journal(args, metrics) -> int:
    """The fsck path for SRVJ1 request journals (sniffed by header).

    A clean *unsealed* journal (the daemon was killed rather than
    drained) exits 0 — that is an expected crash artifact whose valid
    prefix is authoritative; record-level damage exits 1 (2 when
    ``--salvage`` recovered the prefix).
    """
    from repro.errors import Diagnostic, Severity, SourceLocation
    from repro.serve.journal import (
        replay_journal,
        salvage_journal,
        scan_journal,
    )

    say = _say(args)
    if args.salvage:
        report = salvage_journal(args.spool, args.salvage, metrics=metrics)
    else:
        report = scan_journal(args.spool, metrics=metrics)
    say(report.render())
    if report.ok:
        state = replay_journal(args.spool)
        say(
            f"  requests: {len(state.completed)} completed, "
            f"{len(state.failed)} failed, "
            f"{len(state.in_flight)} in flight at shutdown"
            + (f", {len(state.duplicates)} DUPLICATED"
               if state.duplicates else "")
        )
    if args.salvage:
        say(f"salvaged {report.n_valid} record(s) -> {args.salvage}")
    if args.metrics:
        say()
        say(metrics.render())
    if report.ok:
        return _fsck_emit(args, report, "SRVJ1", 0,
                          loss=report.lost_records, sealed=report.sealed)
    err = report.error
    diag = Diagnostic(
        Severity.ERROR,
        f"request journal corrupt at {err.locus()} [{err.reason}]; "
        f"valid prefix: {report.n_valid} record(s)",
        SourceLocation(filename=args.spool),
    )
    say(str(diag), file=sys.stderr)
    return _fsck_emit(args, report, "SRVJ1", 2 if args.salvage else 1,
                      loss=report.lost_records, sealed=report.sealed)


def _fsck_memo(args, metrics) -> int:
    """The fsck path for MEMO1 incremental-memo manifests (sniffed by
    header).  Memo damage is never fatal to a translation — the loader
    treats any corruption as a silent cold miss — so fsck's job here is
    naming the damaged entry and, with ``--salvage``, resealing the
    verified prefix so the surviving entries stay warm.
    """
    from repro.errors import Diagnostic, Severity, SourceLocation
    from repro.passes.incremental import salvage_memo, scan_memo

    say = _say(args)
    if args.salvage:
        report = salvage_memo(args.spool, args.salvage, metrics=metrics)
    else:
        report = scan_memo(args.spool, metrics=metrics)
    say(report.render())
    if args.salvage:
        say(
            f"salvaged {report.n_valid} memo "
            f"entr{'y' if report.n_valid == 1 else 'ies'} -> {args.salvage}"
        )
    if args.metrics:
        say()
        say(metrics.render())
    loss = (report.n_entries - report.n_valid
            if report.n_entries is not None else None)
    if report.ok:
        return _fsck_emit(args, report, "MEMO1", 0,
                          loss=0, n_entries=report.n_entries)
    err = report.error
    diag = Diagnostic(
        Severity.ERROR,
        f"memo manifest corrupt at {err.locus()} [{err.reason}]; "
        f"valid prefix: {report.n_valid} entry line(s); "
        "translation falls back to a cold miss, never a wrong answer",
        SourceLocation(filename=args.spool),
    )
    say(str(diag), file=sys.stderr)
    return _fsck_emit(args, report, "MEMO1", 2 if args.salvage else 1,
                      loss=loss, n_entries=report.n_entries)


def cmd_doctor(args) -> int:
    """Sweep directories for crash debris across every durable format.

    Classifies every file (sealed / unsealed / unsealed-tmp / corrupt /
    orphaned / legacy / foreign); ``--repair`` salvages the valid
    prefixes in place, deletes what is safe to lose (corrupt cache
    entries, tmp debris, orphaned pass spools), and truncates damaged
    checkpoint manifests at the last verified pass.  Exit status:
    0 clean, 1 problems found (or remaining), 2 repaired with loss.
    """
    from repro.doctor import run_doctor
    from repro.obs import MetricsRegistry

    say = _say(args)
    metrics = MetricsRegistry()
    for d in args.dirs:
        if not os.path.isdir(d):
            say(f"error: no such directory: {d}", file=sys.stderr)
            return 1
    report = run_doctor(args.dirs, repair=args.repair, metrics=metrics)
    say(report.render())
    if args.metrics:
        say()
        say(metrics.render())
    if report.problems:
        return 1
    if args.repair and report.lossy:
        return 2
    return 0


def cmd_cache_gc(args) -> int:
    """Shrink the build cache to a byte cap, least-recently-used first."""
    from repro.buildcache import BuildCache, default_cache_root
    from repro.governance import evict_cache
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    root = args.cache_dir or default_cache_root()
    cache = BuildCache(root)
    kept, evicted = evict_cache(cache, args.max_bytes, metrics=metrics)
    print(f"cache gc: {root}")
    print(
        f"  kept {kept:,} byte(s); evicted {len(evicted)} entrie(s) "
        f"({sum(e.file_bytes for e in evicted):,} bytes)"
    )
    return 0


def cmd_debug(args) -> int:
    """Time-travel queries over a recorded run directory.

    All four queries read only sealed artifacts (the provenance log and
    the per-pass spools) — nothing is re-evaluated.  A damaged log
    surfaces as a typed :class:`~repro.errors.ProvenanceCorruptionError`
    naming the damaged record (exit 1 via the main handler).
    """
    from repro.obs import MetricsRegistry
    from repro.obs.provenance import DebugSession

    metrics = MetricsRegistry()
    with DebugSession(args.dir, metrics=metrics) as session:
        if args.query == "why":
            print(session.render_why(args.target, max_depth=args.max_depth))
        elif args.query == "history":
            print(session.render_history(args.target))
        elif args.query == "step":
            print(
                session.render_step(
                    at=args.at, count=args.count, backward=args.backward
                )
            )
        else:
            print(session.render_summary())
    if args.metrics:
        print()
        print(metrics.render())
    return 0


def cmd_batch(args) -> int:
    """Translate many inputs through the persistent build cache.

    The grammar is built (or cache-rehydrated) exactly once; with
    ``-j N`` the built artifacts are sealed into a shared-memory plane
    and the inputs fan out across ``N`` worker processes that attach to
    it zero-copy (``--no-shm`` falls back to per-worker cache
    rehydration).  Exit status: 0 when every input translated, 1 when
    any input failed (other inputs still complete — per-input
    isolation).
    """
    from repro.batch import WorkerSpec, build_batch_translator
    from repro.buildcache import default_cache_root
    from repro.obs import MetricsRegistry

    name = _grammar_stem(args)
    spec, _ = _scanner_and_library(name)
    if spec is None:
        print(
            f"error: no shipped scanner for grammar {name!r}; "
            "pass --grammar binary|calc|pascal|asm|linguist",
            file=sys.stderr,
        )
        return 2
    metrics = MetricsRegistry()
    worker_spec = WorkerSpec(
        source=_read(args.file),
        filename=args.file,
        grammar_name=name,
        direction=args.direction,
        cache_dir=args.cache_dir or default_cache_root(),
        backend=args.backend,
        memo_dir=args.memo_dir,
    )
    translator = build_batch_translator(worker_spec, metrics=metrics)
    texts = [
        _read(item) if os.path.exists(item) else item for item in args.inputs
    ]
    report = translator.translate_many(
        texts, jobs=args.jobs, metrics=metrics, timeout=args.timeout,
        use_shm=not args.no_shm, pipeline_depth=args.pipeline_depth,
    )

    if args.output_dir:
        os.makedirs(args.output_dir, exist_ok=True)
    for item in report.items:
        if item.ok:
            rendered = "\n".join(render_root_attrs(item.result.root_attrs))
            if args.output_dir:
                path = os.path.join(args.output_dir, f"{item.index:04d}.out")
                with open(path, "w", encoding="utf-8") as f:
                    f.write(rendered + "\n")
            else:
                print(f"# input {item.index}: ok ({item.seconds * 1000:.1f} ms)")
                print(rendered)
        else:
            print(
                f"# input {item.index}: FAILED "
                f"{item.error_type}: {item.error}",
                file=sys.stderr,
            )
    print(
        f"# batch: {report.n_ok}/{len(report.items)} ok, "
        f"{report.n_failed} failed, jobs={report.jobs}, "
        f"{report.seconds * 1000:.1f} ms total"
        + (" [INTERRUPTED: partial report]" if report.interrupted else ""),
        file=sys.stderr,
    )
    if args.metrics:
        print()
        print(metrics.render())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the fault-tolerant translation service daemon.

    Builds every grammar once through the persistent build cache (the
    warm instances), then serves ``POST /translate`` through a pool of
    supervised worker subprocesses with bounded queues, per-request
    deadlines, a circuit breaker per grammar, and a durable request
    journal.  SIGTERM/SIGINT drains gracefully (stop admitting, finish
    in-flight up to ``--drain-timeout``, seal the journal) and exits 0.
    See docs/serving.md.
    """
    import asyncio

    from repro.batch import WorkerSpec
    from repro.buildcache import default_cache_root
    from repro.obs import MetricsRegistry
    from repro.serve import ServeConfig, TranslationServer

    metrics = MetricsRegistry()
    cache_dir = args.cache_dir or default_cache_root()
    specs = {}
    for path in args.files:
        name = os.path.splitext(os.path.basename(path))[0]
        spec, _ = _scanner_and_library(name)
        if spec is None:
            print(
                f"error: no shipped scanner for grammar {name!r}; "
                "serve needs a scanner for every grammar file",
                file=sys.stderr,
            )
            return 2
        specs[name] = WorkerSpec(
            source=_read(path),
            filename=path,
            grammar_name=name,
            direction=args.direction,
            cache_dir=cache_dir,
            backend=args.backend,
            memo_dir=(
                os.path.join(args.memo_dir, name) if args.memo_dir else None
            ),
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        journal_dir=args.journal,
        heartbeat_timeout=args.heartbeat_timeout,
        max_retries=args.max_retries,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_seconds=args.breaker_reset,
        backend=args.backend,
        fsync_every_done=args.fsync,
        disk_low_bytes=int(args.disk_low_mb * (1 << 20)),
        disk_high_bytes=int(args.disk_high_mb * (1 << 20)),
        governance_interval=args.governance_interval,
        cache_dir=cache_dir,
        cache_max_bytes=int(args.cache_max_mb * (1 << 20)),
        startup_doctor=not args.no_doctor,
        use_shm=not args.no_shm,
    )
    return asyncio.run(_serve_main(specs, config, metrics))


async def _serve_main(specs, config, metrics) -> int:
    import asyncio
    import signal

    from repro.serve import TranslationServer
    from repro.serve.http import HttpFrontend

    server = TranslationServer(specs, config, metrics)
    await server.start()
    frontend = HttpFrontend(server, config.host, config.port or 0)
    host, port = await frontend.start()
    if server.journal is not None:
        print(f"# request journal: {server.journal.path}", flush=True)
    print(
        f"# repro serve: listening on http://{host}:{port} "
        f"(grammars: {', '.join(sorted(specs))}; "
        f"{config.workers} worker(s)/grammar)",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, server.request_shutdown)
    rc = await server.run()
    await frontend.stop()
    snap = metrics.snapshot()
    print(
        "# drained: "
        f"{snap.get('serve.admitted', 0)} admitted, "
        f"{snap.get('serve.completed', 0)} completed, "
        f"{snap.get('serve.rejected', 0)} rejected, "
        f"{snap.get('serve.timeouts', 0)} timeouts, "
        f"{snap.get('serve.worker_restarts', 0)} worker restart(s)",
        flush=True,
    )
    return rc


def cmd_selfcheck(args) -> int:
    from repro.core.selfgen import SelfGeneration

    selfgen = SelfGeneration()
    machine, hand = selfgen.bootstrap_check()
    print("self-generation bootstrap: OK")
    print(f"  {machine.n_syms} symbols, {machine.n_attrs} attributes, "
          f"{machine.n_prods} productions, {machine.n_funcs} functions, "
          f"{machine.n_copies} explicit copy-rules")
    print(f"  evaluated in {selfgen.linguist.n_passes} alternating passes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LINGUIST-86 reproduction: a translator-writing system "
        "based on attribute grammars",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="attribute grammar (.ag) source file")
        p.add_argument(
            "--direction", choices=sorted(_DIRECTIONS), default="r2l",
            help="first-pass direction (default r2l, the paper's choice)",
        )

    p_stats = sub.add_parser("stats", help="statistics and pass report")
    add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_listing = sub.add_parser("listing", help="produce the listing file")
    add_common(p_listing)
    p_listing.add_argument("-o", "--output", help="write to this file")
    p_listing.set_defaults(func=cmd_listing)

    p_gen = sub.add_parser("generate", help="write the generated evaluators")
    add_common(p_gen)
    p_gen.add_argument("--language", choices=["pascal", "python"],
                       default="pascal")
    p_gen.add_argument("-o", "--output", help="output directory")
    p_gen.set_defaults(func=cmd_generate)

    p_run = sub.add_parser("run", help="translate input with a shipped grammar")
    p_run.add_argument("name", help="shipped grammar (binary/calc/pascal/linguist)")
    p_run.add_argument("input", help="input text or a path to it")
    p_run.add_argument("--exec", dest="execute", action="store_true",
                       help="run the produced CODE on the stack machine")
    p_run.add_argument(
        "--checkpoint-dir",
        help="persist every completed evaluation pass (sealed spool + "
        "manifest) into this directory",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="resume a killed evaluation from the checkpoint manifest "
        "(requires --checkpoint-dir)",
    )
    p_run.add_argument(
        "--spool-memory-budget", type=int, default=None, metavar="BYTES",
        help="max bytes each intermediate APT spool keeps in memory "
        "before spilling to a sealed v3 disk spool (default 8 MiB; "
        "0 forces disk spooling throughout)",
    )
    p_run.add_argument(
        "--record", metavar="DIR",
        help="record attribute provenance into DIR (sealed NDJSON log + "
        "every pass's sealed spool); query it with `repro debug`",
    )
    p_run.add_argument(
        "--backend", choices=["interp", "generated"], default="generated",
        help="evaluator backend (default generated)",
    )
    p_run.add_argument(
        "--disk-budget", type=int, default=None, metavar="BYTES",
        help="cap the bytes this run may write durably (spool spills + "
        "checkpoint passes); the write that would overspend fails with "
        "a typed DiskBudgetExceeded before the bytes land",
    )
    p_run.add_argument(
        "--memo-dir", metavar="DIR",
        help="incremental re-translation: persist per-pass subtree memo "
        "entries (sealed MEMO1 manifest + splice-source spools) into DIR; "
        "a later run of edited input re-evaluates only the dirty spine "
        "and splices sealed output for clean subtrees, byte-identically",
    )
    p_run.set_defaults(func=cmd_run)

    p_debug = sub.add_parser(
        "debug",
        help="time-travel queries over a recorded run "
        "(see `repro run --record`)",
    )
    dsub = p_debug.add_subparsers(dest="query", required=True)

    def add_debug_common(p):
        p.add_argument("dir", help="record directory (from --record DIR)")
        p.add_argument(
            "--metrics", action="store_true",
            help="also dump the debug.* counters",
        )

    p_why = dsub.add_parser(
        "why",
        help="dependency-directed backward slice: the semantic-function "
        "instants (across passes) that produced NODE.ATTR's value",
    )
    add_debug_common(p_why)
    p_why.add_argument(
        "target",
        help="NODE.ATTR, e.g. root.OUT or root.1.2.VAL (positions are "
        "1-based child indices; 'limb' names a production's limb node)",
    )
    p_why.add_argument(
        "--max-depth", type=int, default=8, metavar="N",
        help="slice recursion depth (default 8)",
    )
    p_why.set_defaults(func=cmd_debug)

    p_hist = dsub.add_parser(
        "history",
        help="NODE.ATTR's value at every pass boundary, read out of the "
        "sealed spools",
    )
    add_debug_common(p_hist)
    p_hist.add_argument("target", help="NODE.ATTR (as in `debug why`)")
    p_hist.set_defaults(func=cmd_debug)

    p_step = dsub.add_parser(
        "step",
        help="replay recorded semantic-function instants around a cursor",
    )
    add_debug_common(p_step)
    p_step.add_argument(
        "--at", type=int, default=None, metavar="SEQ",
        help="cursor instant (default: first; with --backward: last)",
    )
    p_step.add_argument(
        "--count", type=int, default=10, metavar="N",
        help="instants to show (default 10)",
    )
    p_step.add_argument(
        "--backward", action="store_true",
        help="step backward from the cursor instead of forward",
    )
    p_step.set_defaults(func=cmd_debug)

    p_summ = dsub.add_parser(
        "summary", help="totals of the recorded run (events per pass, "
        "busiest productions and attributes)",
    )
    add_debug_common(p_summ)
    p_summ.set_defaults(func=cmd_debug)

    p_fsck = sub.add_parser(
        "fsck",
        help="verify an APT spool file's header, record/block checksums, "
        "name table, and sealed footer",
    )
    p_fsck.add_argument(
        "spool",
        help="path to a .spool file (v1, v2, or v3), a provenance "
        ".ndjson log, a request journal, or an incremental memo "
        "manifest / memo directory (format is sniffed)",
    )
    p_fsck.add_argument(
        "--salvage", metavar="OUT",
        help="recover the longest checksum-valid prefix into a fresh "
        "sealed spool at OUT (v3 sources are rescued as v3 with their "
        "name table; v1/v2 as v2)",
    )
    p_fsck.add_argument(
        "--metrics", action="store_true",
        help="also dump the robustness counters",
    )
    p_fsck.add_argument(
        "--quiet", action="store_true",
        help="no output; exit status alone reports the verdict "
        "(0 clean, 1 corrupt/missing, 2 salvaged with loss)",
    )
    p_fsck.add_argument(
        "--json", action="store_true",
        help="emit a single machine-readable JSON report (artifact path, "
        "format, verdict, loss count) instead of the human rendering; "
        "exit codes are unchanged",
    )
    p_fsck.set_defaults(func=cmd_fsck)

    p_doctor = sub.add_parser(
        "doctor",
        help="sweep directories for crash debris across every durable "
        "format; classify each artifact and optionally --repair "
        "(see docs/robustness.md)",
    )
    p_doctor.add_argument(
        "dirs", nargs="+", metavar="DIR",
        help="directories to sweep recursively (journal dirs, "
        "checkpoint dirs, record dirs, cache roots)",
    )
    p_doctor.add_argument(
        "--repair", action="store_true",
        help="salvage valid prefixes in place, delete what is safe to "
        "lose (corrupt cache entries, *.tmp debris, orphaned pass "
        "spools), truncate damaged checkpoint manifests at the last "
        "verified pass",
    )
    p_doctor.add_argument(
        "--metrics", action="store_true",
        help="also dump the governance.doctor.* counters",
    )
    p_doctor.add_argument(
        "--quiet", action="store_true",
        help="no output; exit status alone reports the verdict "
        "(0 clean, 1 problems found/remaining, 2 repaired with loss)",
    )
    p_doctor.set_defaults(func=cmd_doctor)

    p_cache = sub.add_parser(
        "cache", help="build-cache maintenance (see `repro cache gc`)"
    )
    csub = p_cache.add_subparsers(dest="cache_cmd", required=True)
    p_gc = csub.add_parser(
        "gc",
        help="shrink the build cache to a byte cap, evicting "
        "least-recently-used entries (store and load-hit both refresh "
        "an entry's clock)",
    )
    p_gc.add_argument(
        "--max-bytes", type=int, required=True, metavar="BYTES",
        help="target size: entries are evicted LRU-first until the "
        "sealed entries fit",
    )
    p_gc.add_argument(
        "--cache-dir",
        help="cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-linguist86)",
    )
    p_gc.set_defaults(func=cmd_cache_gc)

    p_trace = sub.add_parser(
        "trace",
        help="translate INPUT under the telemetry subsystem and export "
        "the span/event trace",
    )
    add_common(p_trace)
    p_trace.add_argument("input", help="input text or a path to it")
    p_trace.add_argument(
        "--format", choices=["chrome", "ndjson", "summary"], default="chrome",
        help="chrome (chrome://tracing JSON, default), ndjson, or summary",
    )
    p_trace.add_argument("--out", help="write the trace to this file")
    p_trace.add_argument(
        "--backend", choices=["interp", "generated"], default="interp",
        help="evaluator backend (interp shows node-visit spans; default)",
    )
    p_trace.add_argument(
        "--grammar",
        help="shipped-grammar name for scanner/library (default: file stem)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_prof = sub.add_parser(
        "profile",
        help="per-overlay (and, with INPUT, per-pass) time/I-O/memory "
        "tables from the metrics registry",
    )
    add_common(p_prof)
    p_prof.add_argument(
        "input", nargs="?", default=None,
        help="optional input text or path — adds the per-pass table",
    )
    p_prof.add_argument(
        "--grammar",
        help="shipped-grammar name for scanner/library (default: file stem)",
    )
    p_prof.add_argument(
        "--cache-dir",
        help="build through the persistent artifact cache at DIR (the "
        "cache.* counters then appear in the profile)",
    )
    p_prof.add_argument(
        "--record", metavar="DIR",
        help="record attribute provenance while translating INPUT (the "
        "provenance.* counters then appear in the profile)",
    )
    p_prof.add_argument(
        "--metrics", action="store_true",
        help="also dump the raw unified metrics snapshot",
    )
    p_prof.set_defaults(func=cmd_profile)

    p_batch = sub.add_parser(
        "batch",
        help="translate many inputs through the persistent build cache, "
        "optionally across worker processes (-j N)",
    )
    add_common(p_batch)
    p_batch.add_argument(
        "inputs", nargs="+",
        help="input texts or paths to them (each translated independently)",
    )
    p_batch.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default 1 = sequential in-process)",
    )
    p_batch.add_argument(
        "--grammar",
        help="shipped-grammar name for scanner/library (default: file stem)",
    )
    p_batch.add_argument(
        "--cache-dir",
        help="build-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-linguist86)",
    )
    p_batch.add_argument(
        "--output-dir", metavar="DIR",
        help="write each input's root attributes to DIR/NNNN.out instead "
        "of stdout",
    )
    p_batch.add_argument(
        "--backend", choices=["interp", "generated"], default="generated",
        help="evaluator backend (default generated)",
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-input deadline; a hung input is recorded as a failed "
        "item (TranslationTimeout) and its worker killed + restarted "
        "(implies supervised subprocess execution even with -j 1)",
    )
    p_batch.add_argument(
        "--no-shm", action="store_true",
        help="skip the shared-memory artifact plane: workers rehydrate "
        "the translator from the build cache per process instead of "
        "attaching zero-copy (see docs/performance.md)",
    )
    p_batch.add_argument(
        "--pipeline-depth", type=int, default=None, metavar="N",
        help="inputs kept in flight per worker so scan of input N+1 "
        "overlaps evaluation of input N (default 2; --timeout forces 1 "
        "so a queued input's deadline clock never runs early)",
    )
    p_batch.add_argument(
        "--memo-dir", metavar="DIR",
        help="incremental re-translation memo root: inputs sharing "
        "subtrees with earlier ones splice their sealed output instead "
        "of re-evaluating (workers keep per-slot subdirectories)",
    )
    p_batch.add_argument(
        "--metrics", action="store_true",
        help="also dump the cache.*/batch.* metrics snapshot",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived fault-tolerant translation daemon: supervised "
        "workers, admission control, circuit breaker, durable request "
        "journal (see docs/serving.md)",
    )
    p_serve.add_argument(
        "files", nargs="+", metavar="FILE.ag",
        help="attribute grammar file(s) to serve (grammar name = file "
        "stem; each needs a shipped scanner)",
    )
    p_serve.add_argument(
        "--direction", choices=sorted(_DIRECTIONS), default="r2l",
        help="first-pass direction (default r2l, the paper's choice)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8674,
        help="TCP port (0 = kernel-assigned, printed at startup)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="supervised worker processes per grammar (default 2)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="bounded per-grammar queue; a full queue rejects with "
        "429 + Retry-After instead of buffering (default 16)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request deadline (default 30); a request that "
        "outlives it is cancelled and its worker killed + restarted",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM, finish in-flight requests up to this long "
        "before failing the stragglers fast (default 10)",
    )
    p_serve.add_argument(
        "--journal", metavar="DIR",
        help="durable CRC-framed request journal in DIR (verify with "
        "`repro fsck DIR/requests.ndjson`)",
    )
    p_serve.add_argument(
        "--heartbeat-timeout", type=float, default=10.0, metavar="SECONDS",
        help="an idle worker silent for this long is declared hung and "
        "restarted (default 10)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        help="re-dispatches of a request whose worker crashed "
        "(translation is pure, so re-dispatch is idempotent; default 1)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive infrastructure failures that open a "
        "grammar's circuit breaker (default 5)",
    )
    p_serve.add_argument(
        "--breaker-reset", type=float, default=5.0, metavar="SECONDS",
        help="how long an open breaker waits before a half-open probe "
        "(default 5; doubles on probe failure)",
    )
    p_serve.add_argument(
        "--cache-dir",
        help="build-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-linguist86)",
    )
    p_serve.add_argument(
        "--backend", choices=["interp", "generated"], default="generated",
        help="evaluator backend (default generated)",
    )
    p_serve.add_argument(
        "--no-shm", action="store_true",
        help="skip the shared-memory artifact plane: workers (and "
        "supervised restarts) rehydrate from the build cache instead "
        "of attaching zero-copy",
    )
    p_serve.add_argument(
        "--memo-dir", metavar="DIR",
        help="warm-memo serving: root a per-grammar incremental memo "
        "at DIR/<grammar>/w<slot>; repeated or edited requests splice "
        "clean subtrees from the sealed memo instead of re-evaluating",
    )
    p_serve.add_argument(
        "--fsync", action="store_true",
        help="fsync the journal after every completed request "
        "(machine-crash durability; default flushes per record, which "
        "survives process kill)",
    )
    p_serve.add_argument(
        "--disk-low-mb", type=float, default=0.0, metavar="MB",
        help="degrade every grammar (503 + Retry-After, journal "
        "suspended with an explicit gap marker) when free disk under "
        "the journal directory drops below this many MiB "
        "(0 disables free-space governance)",
    )
    p_serve.add_argument(
        "--disk-high-mb", type=float, default=0.0, metavar="MB",
        help="recover from low-disk degraded mode only once free disk "
        "climbs back above this many MiB (hysteresis; default: equal "
        "to --disk-low-mb)",
    )
    p_serve.add_argument(
        "--cache-max-mb", type=float, default=0.0, metavar="MB",
        help="on a low-disk trip, shrink the build cache to this many "
        "MiB (LRU eviction; 0 = never evict)",
    )
    p_serve.add_argument(
        "--governance-interval", type=float, default=0.5, metavar="SECONDS",
        help="free-space probe period of the governance loop "
        "(default 0.5)",
    )
    p_serve.add_argument(
        "--no-doctor", action="store_true",
        help="skip the startup `repro doctor --repair` sweep over the "
        "journal and cache directories",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_self = sub.add_parser("selfcheck", help="run the self-generation bootstrap")
    p_self.set_defaults(func=cmd_selfcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
