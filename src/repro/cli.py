"""Command-line interface: the LINGUIST tool as a program.

Subcommands::

    python -m repro stats FILE.ag           grammar statistics + pass report
    python -m repro listing FILE.ag [-o F]  the listing file (overlay 6)
    python -m repro generate FILE.ag --language pascal|python [-o DIR]
    python -m repro run NAME INPUT [--exec] translate with a shipped grammar
    python -m repro selfcheck               the self-generation bootstrap
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.passes.schedule import Direction

_DIRECTIONS = {"r2l": Direction.R2L, "l2r": Direction.L2R, "auto": "auto"}


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def _build_linguist(args):
    from repro.core import Linguist

    return Linguist(
        _read(args.file),
        filename=args.file,
        first_direction=_DIRECTIONS[args.direction],
    )


def cmd_stats(args) -> int:
    from repro.passes.report import render_pass_report

    linguist = _build_linguist(args)
    print(linguist.statistics.render())
    print()
    print(render_pass_report(linguist.assignment))
    print()
    print("overlay times:")
    print(linguist.overlay_times.render())
    return 0


def cmd_listing(args) -> int:
    linguist = _build_linguist(args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(linguist.listing)
        print(f"listing written to {args.output}")
    else:
        print(linguist.listing)
    return 0


def cmd_generate(args) -> int:
    linguist = _build_linguist(args)
    artifacts = (
        linguist.pascal_artifacts
        if args.language == "pascal"
        else linguist.python_artifacts
    )
    ext = "pas" if args.language == "pascal" else "py"
    outdir = args.output or "."
    os.makedirs(outdir, exist_ok=True)
    for artifact in artifacts:
        path = os.path.join(outdir, f"pass{artifact.pass_k}.{ext}")
        with open(path, "w", encoding="utf-8") as f:
            f.write(artifact.text)
        print(
            f"wrote {path}: {artifact.total_bytes} bytes "
            f"(husk {artifact.husk_bytes}, semantic {artifact.sem_bytes}, "
            f"{artifact.n_subsumed} copy-rules subsumed)"
        )
    sizes = linguist.code_sizes(args.language)
    print(sizes.render())
    return 0


def cmd_run(args) -> int:
    from repro.core import Linguist
    from repro.grammars import GRAMMAR_NAMES, library_for, load_source
    from repro.grammars import scanners

    if args.name not in GRAMMAR_NAMES:
        print(f"unknown shipped grammar {args.name!r}; have {GRAMMAR_NAMES}",
              file=sys.stderr)
        return 2
    spec_factory = {
        "binary": scanners.binary_scanner_spec,
        "calc": scanners.calc_scanner_spec,
        "pascal": scanners.pascal_scanner_spec,
    }.get(args.name)
    if spec_factory is None and args.name == "linguist":
        from repro.frontend.lexer import LEXICAL_SPEC

        spec = LEXICAL_SPEC
    else:
        spec = spec_factory()
    linguist = Linguist(load_source(args.name))
    translator = linguist.make_translator(spec, library=library_for(args.name))
    text = _read(args.input) if os.path.exists(args.input) else args.input
    result = translator.translate(text)
    for attr, value in sorted(result.root_attrs.items()):
        rendered = list(value) if hasattr(value, "__iter__") and not isinstance(
            value, str
        ) else value
        print(f"{attr} = {rendered}")
    if args.execute:
        if "CODE" not in result:
            print("--exec: grammar produces no CODE attribute", file=sys.stderr)
            return 2
        from repro.stackvm import execute

        outcome = execute(list(result["CODE"]))
        print(f"execution output: {outcome.output}")
    return 0


def cmd_selfcheck(args) -> int:
    from repro.core.selfgen import SelfGeneration

    selfgen = SelfGeneration()
    machine, hand = selfgen.bootstrap_check()
    print("self-generation bootstrap: OK")
    print(f"  {machine.n_syms} symbols, {machine.n_attrs} attributes, "
          f"{machine.n_prods} productions, {machine.n_funcs} functions, "
          f"{machine.n_copies} explicit copy-rules")
    print(f"  evaluated in {selfgen.linguist.n_passes} alternating passes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LINGUIST-86 reproduction: a translator-writing system "
        "based on attribute grammars",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="attribute grammar (.ag) source file")
        p.add_argument(
            "--direction", choices=sorted(_DIRECTIONS), default="r2l",
            help="first-pass direction (default r2l, the paper's choice)",
        )

    p_stats = sub.add_parser("stats", help="statistics and pass report")
    add_common(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_listing = sub.add_parser("listing", help="produce the listing file")
    add_common(p_listing)
    p_listing.add_argument("-o", "--output", help="write to this file")
    p_listing.set_defaults(func=cmd_listing)

    p_gen = sub.add_parser("generate", help="write the generated evaluators")
    add_common(p_gen)
    p_gen.add_argument("--language", choices=["pascal", "python"],
                       default="pascal")
    p_gen.add_argument("-o", "--output", help="output directory")
    p_gen.set_defaults(func=cmd_generate)

    p_run = sub.add_parser("run", help="translate input with a shipped grammar")
    p_run.add_argument("name", help="shipped grammar (binary/calc/pascal/linguist)")
    p_run.add_argument("input", help="input text or a path to it")
    p_run.add_argument("--exec", dest="execute", action="store_true",
                       help="run the produced CODE on the stack machine")
    p_run.set_defaults(func=cmd_run)

    p_self = sub.add_parser("selfcheck", help="run the self-generation bootstrap")
    p_self.set_defaults(func=cmd_selfcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
