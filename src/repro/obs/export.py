"""Trace exporters: Chrome ``chrome://tracing`` JSON, NDJSON, summary.

Three consumers, three formats:

* :func:`chrome_trace_json` — the Trace Event Format understood by
  ``chrome://tracing`` / Perfetto.  Spans become complete events
  (``"ph": "X"`` with ``ts``/``dur`` in microseconds) on one pid/tid;
  the viewer reconstructs the overlay → pass → node-visit nesting from
  timestamp containment.  Instant events become ``"ph": "i"``.
* :func:`ndjson` — one JSON object per line, in start-time order, for
  ad-hoc ``jq``/pandas analysis.
* :func:`summary` — a terminal table aggregating span time by category
  and event counts by name, optionally followed by a
  :class:`~repro.obs.metrics.MetricsRegistry` rendering.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import INSTANT, SPAN, TraceRecord

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "jsonable_snapshot",
    "ndjson",
    "summary",
]


def chrome_trace_events(
    records: Iterable[TraceRecord], pid: int = 1, tid: int = 1
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list of the Chrome Trace Event Format."""
    events: List[Dict[str, Any]] = []
    for rec in records:
        event: Dict[str, Any] = {
            "name": rec.name,
            "cat": rec.cat or "default",
            "ts": rec.ts_us,
            "pid": pid,
            "tid": tid,
        }
        if rec.kind == SPAN:
            event["ph"] = "X"
            event["dur"] = rec.dur_us
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        if rec.args:
            event["args"] = dict(rec.args)
        events.append(event)
    return events


def chrome_trace_json(records: Iterable[TraceRecord], indent: int = None) -> str:
    """A complete Chrome-trace JSON document."""
    doc = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs (LINGUIST-86 reproduction)"},
    }
    return json.dumps(doc, indent=indent, default=str)


def ndjson(records: Iterable[TraceRecord]) -> str:
    """Newline-delimited JSON events, ordered by start time."""
    lines = []
    for rec in sorted(records, key=lambda r: r.ts):
        obj: Dict[str, Any] = {
            "kind": rec.kind,
            "name": rec.name,
            "cat": rec.cat,
            "ts_us": rec.ts_us,
            "depth": rec.depth,
        }
        if rec.kind == SPAN:
            obj["dur_us"] = rec.dur_us
        if rec.args:
            obj["args"] = dict(rec.args)
        lines.append(json.dumps(obj, default=str))
    return "\n".join(lines)


def summary(
    records: Iterable[TraceRecord],
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """Human-readable digest of a trace (plus metrics, if given)."""
    records = list(records)
    span_stats: Dict[str, List[float]] = {}
    instant_counts: Dict[str, int] = {}
    for rec in records:
        if rec.kind == SPAN:
            span_stats.setdefault(rec.cat or rec.name, []).append(rec.dur_us)
        elif rec.kind == INSTANT:
            instant_counts[rec.name] = instant_counts.get(rec.name, 0) + 1

    lines = [f"trace summary: {len(records)} records"]
    if span_stats:
        lines.append(
            f"  {'span category':<18} {'count':>8} {'total ms':>10} {'max ms':>9}"
        )
        for cat in sorted(span_stats):
            durs = span_stats[cat]
            lines.append(
                f"  {cat:<18} {len(durs):>8} {sum(durs) / 1000:>10.2f} "
                f"{max(durs) / 1000:>9.2f}"
            )
    if instant_counts:
        lines.append(f"  {'event':<28} {'count':>8}")
        for name in sorted(instant_counts):
            lines.append(f"  {name:<28} {instant_counts[name]:>8}")
    if metrics is not None:
        lines.append("")
        lines.append(metrics.render())
    return "\n".join(lines)


def jsonable_snapshot(metrics) -> dict:
    """A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` coerced to
    JSON-encodable values (the serve daemon's ``/stats`` body).

    Counter/gauge values are already numbers; histogram snapshots are
    plain dicts; anything exotic a registered source emits falls back
    to ``repr`` so one odd source can never break the endpoint.
    """
    out = {}
    for key, value in metrics.snapshot().items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        elif isinstance(value, dict):
            out[key] = {
                str(k): (v if isinstance(v, (int, float, str, bool)) else repr(v))
                for k, v in value.items()
            }
        else:
            out[key] = repr(value)
    return out
