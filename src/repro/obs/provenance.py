"""Attribute provenance: recording and time-travel debugging.

The alternating-pass paradigm already *persists* every intermediate
attribute state: each pass streams the APT through a sealed spool file,
so the whole evaluation history sits on disk when a run finishes.  This
module adds the missing half of a time-travel debugger — a record of
**why** each attribute instance holds its value:

* :class:`ProvenanceRecorder` — attached to an evaluation (via
  ``Translator.translate(..., record=DIR)`` or ``repro run --record``),
  it captures one event per semantic-function instant: the (pass,
  production, node path, attribute, inputs-with-values, output value,
  output-spool offset) tuple, for both explicit ``compute`` instants
  and ``subsume`` instants (copy-rules elided into a static global).
  Events stream into ``DIR/provenance.ndjson`` — line-framed NDJSON
  where every line carries its own CRC32 — and are sealed atomically
  (tmp + fsync + rename) with a trailing seal line covering the whole
  stream, the same write discipline as the v2/v3 spool formats.
* :class:`ProvenanceLog` — opens and fully verifies a sealed log,
  indexing defines by (node path, attribute) and node writes by
  (pass, node path).  Any damage raises a typed
  :class:`~repro.errors.ProvenanceCorruptionError` naming the record.
* :class:`DebugSession` — the query engine behind ``repro debug``:
  ``why`` walks the dependency-directed backward slice across passes,
  ``history`` reads the attribute's value at every pass boundary out of
  the sealed spools (random access, no re-evaluation), ``step`` replays
  semantic-function instants around a cursor, and ``summary`` totals
  the recorded run.

Node identity is the **tree path** from the root: ``()`` is the root,
``(2, 1)`` is "second child's first child", and ``-1`` names a
production's limb node.  Paths are derived purely from the visit
discipline (the root-to-node stack), so the interpreter and the
generated evaluator — and fused and unfused pass plans — produce
directly comparable logs: the differential harness asserts the event
streams (and hence every backward slice) are identical.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.ag.model import LHS_POSITION, LIMB_POSITION
from repro.errors import ProvenanceCorruptionError, ProvenanceError
from repro.util import atomic_write as _aw
from repro.util.atomic_write import atomic_write

__all__ = [
    "PROV_FORMAT",
    "LOG_NAME",
    "ProvenanceRecorder",
    "ProvenanceLog",
    "ProvenanceScanReport",
    "DebugSession",
    "canonical_value",
    "input_keys",
    "parse_target",
    "render_path",
    "scan_provenance",
    "salvage_provenance",
    "looks_like_provenance_log",
]

#: Format tag in the header line; bump on incompatible layout changes.
PROV_FORMAT = "PROV1"

#: File name of the provenance log inside a record directory.
LOG_NAME = "provenance.ndjson"

_SEPARATORS = (",", ":")


def canonical_value(value: Any) -> str:
    """One attribute value as a canonical byte-comparable string.

    Matches the ``repro run`` / differential-harness rendering: non-str
    iterables (``CatSeq`` chains, tuples) materialize as lists, then
    everything goes through ``repr`` — so values recorded from lazy
    list structures compare equal across backends.
    """
    if hasattr(value, "__iter__") and not isinstance(value, str):
        return repr(list(value))
    return repr(value)


def input_keys(binding) -> List[Tuple[int, str]]:
    """The deterministic input-occurrence keys of a binding, deduplicated
    in first-reference order — the shared keying that makes interpreter
    and generated-evaluator provenance events byte-comparable."""
    from repro.ag.dependencies import binding_argument_keys

    return list(dict.fromkeys(binding_argument_keys(binding)))


def render_path(path: Iterable[int]) -> str:
    """Render a node path as the CLI spells it: ``root``, ``root.2.1``,
    ``root.1.limb`` (``-1`` is the production's limb node)."""
    parts = ["root"]
    for p in path:
        parts.append("limb" if p == LIMB_POSITION else str(p))
    return ".".join(parts)


def parse_target(spec: str) -> Tuple[Tuple[int, ...], str]:
    """Parse a ``NODE.ATTR`` target: ``root.2.1.VAL`` -> ((2, 1), "VAL").

    The leading ``root`` is optional; path components are 1-based child
    positions or ``limb``; the last component is the attribute name.
    """
    parts = [p for p in spec.split(".") if p != ""]
    if not parts:
        raise ProvenanceError(f"empty debug target {spec!r}")
    attr = parts[-1]
    comps = parts[:-1]
    if comps and comps[0] == "root":
        comps = comps[1:]
    path: List[int] = []
    for comp in comps:
        if comp == "limb":
            path.append(LIMB_POSITION)
        elif comp.isdigit() and int(comp) >= 1:
            path.append(int(comp))
        else:
            raise ProvenanceError(
                f"bad node-path component {comp!r} in target {spec!r}; "
                "expected 'root', a 1-based child position, or 'limb' "
                "(attribute name goes last: root.2.1.VAL)"
            )
    return tuple(path), attr


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------


class ProvenanceRecorder:
    """Streams provenance events for one evaluation into a sealed log.

    Constructed with the static facts (grammar, backend, productions);
    the driver calls :meth:`begin_run` once (writing the header line),
    :meth:`begin_pass` per pass, and :meth:`seal` after the last pass.
    The evaluators call :meth:`define` at every semantic-function
    instant, :meth:`put` before every node write, and
    :meth:`enter_child`/:meth:`exit_child` around child visits (the
    root-to-node stack discipline that yields node paths).

    Events stream into ``<dir>/provenance.ndjson.tmp``; :meth:`seal`
    writes the seal line, fsyncs, and atomically renames — a crash
    mid-run leaves no sealed log, never a silently truncated one.
    """

    def __init__(
        self,
        directory: str,
        grammar: str,
        backend: str,
        start: str,
        productions,
        metrics=None,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.path = os.path.join(directory, LOG_NAME)
        self._tmp_path = self.path + ".tmp"
        self._grammar = grammar
        self._backend = backend
        self._start = start
        #: Self-contained production table [index, lhs, rhs_len, limb, tag]
        #: so the query engine never needs to rebuild the grammar.
        self._productions = [
            [p.index, p.lhs, len(p.rhs), p.limb or "", p.tag]
            for p in productions
        ]
        self._f = None
        self._seq = 0
        self._stream_crc = 0
        self._pass_k = 0
        self._path_stack: List[int] = []
        self._sealed = False
        if metrics is not None:
            self._c_instants = metrics.counter("provenance.instants")
            self._c_puts = metrics.counter("provenance.puts")
            self._c_bytes = metrics.counter("provenance.bytes_written")
            self._c_passes = metrics.counter("provenance.passes_recorded")
        else:
            self._c_instants = None
            self._c_puts = None
            self._c_bytes = None
            self._c_passes = None

    # -- lifecycle ---------------------------------------------------------

    def begin_run(
        self, strategy: str, directions: List[str], resumed_from: int = 0
    ) -> None:
        """Open the log and write the header (driver calls this once)."""
        if self._f is not None:
            raise ProvenanceError("provenance recorder already started")
        self._f = _aw.open_file(self._tmp_path, "w", encoding="utf-8")
        self._emit(
            {
                "e": "hdr",
                "format": PROV_FORMAT,
                "grammar": self._grammar,
                "backend": self._backend,
                "start": self._start,
                "strategy": strategy,
                "n_passes": len(directions),
                "directions": directions,
                "resumed_from": resumed_from,
                "productions": self._productions,
            },
            count=False,
        )

    def begin_pass(self, pass_k: int, direction: str) -> None:
        self._pass_k = pass_k
        self._path_stack = []
        self._emit({"e": "pass", "i": self._seq, "p": pass_k, "d": direction})
        if self._c_passes is not None:
            self._c_passes.inc()

    def seal(self) -> None:
        """Write the seal line and atomically publish the log."""
        if self._sealed or self._f is None:
            return
        body = json.dumps(
            {"e": "seal", "n": self._seq, "crc": self._stream_crc},
            sort_keys=True,
            separators=_SEPARATORS,
        )
        crc = zlib.crc32(body.encode("utf-8"))
        try:
            self._f.write(f'{body[:-1]},"c":{crc}}}\n')
            _aw.fsync_file(self._f)
            self._f.close()
            self._f = None
            _aw.atomic_replace(self._tmp_path, self.path)
        except BaseException:
            # A fault while sealing (ENOSPC, failed fsync/rename) must
            # not leave an open fd or a half-published log: close the
            # writer and leave the classifiable ``.tmp`` for doctor.
            if self._f is not None:
                try:
                    self._f.close()
                except OSError:
                    pass
                self._f = None
            raise
        self._sealed = True

    def abort(self) -> None:
        """Close the unsealed temp log after a failed run (the .tmp file
        is left on disk as evidence; it never shadows a sealed log)."""
        if self._f is not None:
            self._f.close()
            self._f = None

    # -- event hooks (hot path) --------------------------------------------

    def enter_child(self, position: int) -> None:
        self._path_stack.append(position)

    def exit_child(self) -> None:
        self._path_stack.pop()

    def _node_path(self, position: int) -> List[int]:
        if position == LHS_POSITION:
            return list(self._path_stack)
        return self._path_stack + [position]

    def define(
        self,
        prod_index: int,
        position: int,
        attr: str,
        value: Any,
        inputs,
        kind: str,
        expr: str,
        out_index: int,
    ) -> None:
        """One semantic-function instant: ``kind`` is ``"compute"`` for
        an evaluated binding or ``"subsume"`` for a copy-rule elided
        into a static global; ``inputs`` is ``[(position, attr, value),
        ...]`` in :func:`input_keys` order; ``out_index`` is the output
        spool record index the owning node will be written at."""
        self._emit(
            {
                "e": "def",
                "i": self._seq,
                "p": self._pass_k,
                "pr": prod_index,
                "n": self._node_path(position),
                "a": attr,
                "v": canonical_value(value),
                "in": [
                    [self._node_path(p), a, canonical_value(v)]
                    for p, a, v in inputs
                ],
                "k": kind,
                "x": expr,
                "o": out_index,
            }
        )
        if self._c_instants is not None:
            self._c_instants.inc()

    def put(self, position: int, symbol: str, out_index: int) -> None:
        """The node at ``position`` is about to be written as record
        ``out_index`` of this pass's output spool."""
        self._emit(
            {
                "e": "put",
                "i": self._seq,
                "p": self._pass_k,
                "n": self._node_path(position),
                "s": symbol,
                "o": out_index,
            }
        )
        if self._c_puts is not None:
            self._c_puts.inc()

    def reuse(
        self, symbol: str, n_records: int, out_start: int, out_len: int
    ) -> None:
        """A memoized subtree was *spliced* instead of visited (see
        :mod:`repro.passes.incremental`): ``n_records`` input records
        under the ``symbol`` node were skipped and ``out_len`` sealed
        output records were copied to ``out_start``.  No define/put
        events exist for the spliced region — this instant is the
        provenance of the whole reuse."""
        self._emit(
            {
                "e": "reuse",
                "i": self._seq,
                "p": self._pass_k,
                "n": list(self._path_stack),
                "s": symbol,
                "r": n_records,
                "o": out_start,
                "l": out_len,
            }
        )
        if self._c_instants is not None:
            self._c_instants.inc()

    # -- framing -----------------------------------------------------------

    def _emit(self, obj: Dict[str, Any], count: bool = True) -> None:
        if self._f is None:
            raise ProvenanceError(
                "provenance recorder is not open (begin_run was never "
                "called, or the log was already sealed)"
            )
        body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
        crc = zlib.crc32(body.encode("utf-8"))
        line = f'{body[:-1]},"c":{crc}}}\n'
        self._f.write(line)
        self._stream_crc = zlib.crc32(line.encode("utf-8"), self._stream_crc)
        if count:
            self._seq += 1
        if self._c_bytes is not None:
            self._c_bytes.inc(len(line))


# ---------------------------------------------------------------------------
# verification + loading
# ---------------------------------------------------------------------------


def _verify_line(line: str, index: int, path: str) -> Dict[str, Any]:
    """Parse + CRC-check one log line; raise naming the damaged record."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProvenanceCorruptionError(
            f"provenance record {index} is not valid JSON ({exc})",
            record_index=index,
            path=path,
            reason="framing",
        ) from exc
    if not isinstance(obj, dict) or "c" not in obj:
        raise ProvenanceCorruptionError(
            f"provenance record {index} has no checksum field",
            record_index=index,
            path=path,
            reason="framing",
        )
    want = obj.pop("c")
    body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
    if zlib.crc32(body.encode("utf-8")) != want:
        raise ProvenanceCorruptionError(
            f"provenance record {index} checksum mismatch "
            "(bit rot or torn write)",
            record_index=index,
            path=path,
            reason="checksum",
        )
    return obj


def _resolve_log_path(path_or_dir: str) -> str:
    if os.path.isdir(path_or_dir):
        return os.path.join(path_or_dir, LOG_NAME)
    return path_or_dir


def looks_like_provenance_log(path: str) -> bool:
    """Cheap sniff used by ``repro fsck`` to route files: a provenance
    log is NDJSON whose first line carries the PROV1 format tag."""
    try:
        with open(path, "rb") as f:
            head = f.read(4096)
    except OSError:
        return False
    first = head.split(b"\n", 1)[0]
    return first.startswith(b"{") and b'"' + PROV_FORMAT.encode() + b'"' in first


class ProvenanceLog:
    """A fully verified, indexed, sealed provenance log."""

    def __init__(self, path: str, header: Dict[str, Any], events: List[dict]):
        self.path = path
        self.header = header
        self.events = events
        #: (node path, attr) -> define events in seq order.
        self.defines: Dict[Tuple[Tuple[int, ...], str], List[dict]] = {}
        #: (pass, node path) -> put event.
        self.puts: Dict[Tuple[int, Tuple[int, ...]], dict] = {}
        #: node path -> symbol (from put events; the root from the header).
        self.symbols: Dict[Tuple[int, ...], str] = {(): header.get("start", "?")}
        #: pass-boundary marker events in order.
        self.pass_marks: List[dict] = []
        #: production index -> [index, lhs, rhs_len, limb, tag].
        self.productions: Dict[int, list] = {
            int(row[0]): row for row in header.get("productions", [])
        }
        for ev in events:
            kind = ev.get("e")
            if kind == "def":
                key = (tuple(ev["n"]), ev["a"])
                self.defines.setdefault(key, []).append(ev)
            elif kind == "put":
                p = tuple(ev["n"])
                self.puts[(ev["p"], p)] = ev
                self.symbols[p] = ev["s"]
            elif kind == "pass":
                self.pass_marks.append(ev)

    # -- loading -----------------------------------------------------------

    @classmethod
    def open(cls, path_or_dir: str) -> "ProvenanceLog":
        """Open + verify a sealed log (every line's CRC, seq contiguity,
        and the stream seal); raise the typed corruption error on any
        damage, naming the damaged record."""
        path = _resolve_log_path(path_or_dir)
        if not os.path.exists(path):
            hint = ""
            if os.path.exists(path + ".tmp"):
                hint = (
                    " (an unsealed .tmp log exists — the recorded run "
                    "died before sealing)"
                )
            raise ProvenanceError(
                f"no sealed provenance log at {path}{hint}; record one "
                "with `repro run ... --record DIR`"
            )
        try:
            with open(path, "rb") as f:
                raw = f.read()
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProvenanceCorruptionError(
                f"provenance log is not valid UTF-8 at byte {exc.start}",
                path=path,
                reason="framing",
            ) from exc
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise ProvenanceCorruptionError(
                "provenance log is empty", path=path, reason="truncated"
            )
        stream_crc = 0
        objs: List[dict] = []
        for i, line in enumerate(lines):
            objs.append(_verify_line(line, i, path))
            if i < len(lines) - 1:
                stream_crc = zlib.crc32((line + "\n").encode("utf-8"), stream_crc)
        header = objs[0]
        if header.get("e") != "hdr" or header.get("format") != PROV_FORMAT:
            raise ProvenanceCorruptionError(
                f"provenance record 0 is not a {PROV_FORMAT} header",
                record_index=0,
                path=path,
                reason="header",
            )
        seal = objs[-1]
        if seal.get("e") != "seal":
            raise ProvenanceCorruptionError(
                f"provenance log has no seal line (crashed before "
                f"finalize?); last record is {len(objs) - 1}",
                record_index=len(objs) - 1,
                path=path,
                reason="seal",
            )
        events = objs[1:-1]
        if seal.get("n") != len(events):
            raise ProvenanceCorruptionError(
                f"seal promises {seal.get('n')} events, found {len(events)}",
                record_index=len(objs) - 1,
                path=path,
                reason="seal",
            )
        if seal.get("crc") != stream_crc:
            raise ProvenanceCorruptionError(
                "seal stream checksum mismatch (a record was altered "
                "after sealing)",
                record_index=len(objs) - 1,
                path=path,
                reason="seal",
            )
        for j, ev in enumerate(events):
            if ev.get("i") != j:
                raise ProvenanceCorruptionError(
                    f"event sequence broken at record {j + 1}: "
                    f"expected seq {j}, found {ev.get('i')!r}",
                    record_index=j + 1,
                    path=path,
                    reason="framing",
                )
        return cls(path, header, events)

    # -- convenience -------------------------------------------------------

    def define_of(
        self,
        path: Tuple[int, ...],
        attr: str,
        before_seq: Optional[int] = None,
    ) -> Optional[dict]:
        """The most recent define of ``path.attr`` (optionally before a
        consumer's seq — the backward-slice resolution rule)."""
        evs = self.defines.get((path, attr))
        if not evs:
            return None
        if before_seq is None:
            return evs[-1]
        best = None
        for ev in evs:
            if ev["i"] < before_seq:
                best = ev
        return best

    def production_tag(self, index: int) -> str:
        row = self.productions.get(index)
        return row[4] if row else f"P{index}"

    @property
    def n_passes(self) -> int:
        return int(self.header.get("n_passes", 0))

    @property
    def directions(self) -> List[str]:
        return list(self.header.get("directions", []))


# ---------------------------------------------------------------------------
# fsck support
# ---------------------------------------------------------------------------


class ProvenanceScanReport:
    """Outcome of scanning (or salvaging) a provenance log."""

    def __init__(
        self,
        path: str,
        n_valid: int,
        n_events: int,
        sealed: bool,
        error: Optional[ProvenanceCorruptionError],
    ):
        self.path = path
        #: Valid leading records (header + events + seal when clean).
        self.n_valid = n_valid
        self.n_events = n_events
        self.sealed = sealed
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        head = f"provenance log: {self.path}"
        if self.ok:
            return (
                f"{head}\n  format {PROV_FORMAT}, sealed, "
                f"{self.n_events} event(s), {self.n_valid} record(s) verified"
            )
        return (
            f"{head}\n  CORRUPT at {self.error.locus()} "
            f"[{self.error.reason}]: {self.error}\n"
            f"  valid prefix: {self.n_valid} record(s)"
        )


def scan_provenance(path: str, metrics=None) -> ProvenanceScanReport:
    """Verify a provenance log for ``repro fsck``; never raises."""
    try:
        log = ProvenanceLog.open(path)
    except ProvenanceCorruptionError as exc:
        n_valid = _valid_prefix_length(path)
        if metrics is not None:
            metrics.counter("robust.provenance_scan_corrupt").inc()
        return ProvenanceScanReport(path, n_valid, 0, False, exc)
    if metrics is not None:
        metrics.counter("robust.provenance_scan_clean").inc()
    return ProvenanceScanReport(
        path, len(log.events) + 2, len(log.events), True, None
    )


def _valid_prefix_length(path: str) -> int:
    """How many leading records survive line + CRC verification."""
    try:
        with open(path, "rb") as f:
            text = f.read().decode("utf-8", errors="replace")
    except OSError:
        return 0
    n = 0
    for i, line in enumerate(text.split("\n")):
        if line == "":
            continue
        try:
            _verify_line(line, i, path)
        except ProvenanceCorruptionError:
            break
        n += 1
    return n


def salvage_provenance(path: str, out: str, metrics=None) -> ProvenanceScanReport:
    """Recover the longest checksum-valid prefix of a damaged log into a
    freshly sealed log at ``out`` (parallel to ``salvage_spool``)."""
    report = scan_provenance(path, metrics=metrics)
    with open(path, "rb") as f:
        lines = f.read().decode("utf-8", errors="replace").split("\n")
    kept: List[str] = []
    for i, line in enumerate(lines):
        if len(kept) >= report.n_valid or line == "":
            break
        obj = _verify_line(line, i, path)
        if obj.get("e") == "seal":
            break
        # Re-sequence events contiguously so the salvaged log verifies.
        if obj.get("e") != "hdr":
            obj["i"] = len(kept) - 1
        body = json.dumps(obj, sort_keys=True, separators=_SEPARATORS)
        crc = zlib.crc32(body.encode("utf-8"))
        kept.append(f'{body[:-1]},"c":{crc}}}\n')
    if not kept or json.loads(kept[0]).get("e") != "hdr":
        raise ProvenanceCorruptionError(
            "cannot salvage: no valid header line",
            record_index=0,
            path=path,
            reason="header",
        )
    stream_crc = 0
    for line in kept:
        stream_crc = zlib.crc32(line.encode("utf-8"), stream_crc)
    seal_body = json.dumps(
        {"e": "seal", "n": len(kept) - 1, "crc": stream_crc},
        sort_keys=True,
        separators=_SEPARATORS,
    )
    seal_crc = zlib.crc32(seal_body.encode("utf-8"))
    with atomic_write(out, text=True, encoding="utf-8") as f:
        f.writelines(kept)
        f.write(f'{seal_body[:-1]},"c":{seal_crc}}}\n')
    if metrics is not None:
        metrics.counter("robust.provenance_records_salvaged").inc(
            max(0, len(kept) - 1)
        )
    return report


# ---------------------------------------------------------------------------
# the query engine
# ---------------------------------------------------------------------------


class DebugSession:
    """Time-travel queries over one recorded run directory.

    The directory holds the sealed provenance log plus the recorded
    run's sealed artifacts: ``initial.spool``, one ``pass<k>.spool``
    per pass, and the checkpoint manifest.  Node states are read out of
    the sealed spools by random access — nothing is re-evaluated.
    """

    def __init__(self, directory: str, metrics=None):
        self.directory = directory
        self.log = ProvenanceLog.open(directory)
        self.metrics = metrics
        self._readers: Dict[int, Any] = {}
        self._initial_states: Optional[Dict[Tuple[int, ...], tuple]] = None

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # -- spool access ------------------------------------------------------

    def _reader(self, pass_k: int):
        """RandomAccessReader over pass ``k``'s sealed spool, or None."""
        if pass_k in self._readers:
            return self._readers[pass_k]
        from repro.apt.storage import DiskSpool, RandomAccessReader

        path = os.path.join(self.directory, f"pass{pass_k}.spool")
        reader = None
        if os.path.exists(path):
            reader = RandomAccessReader(
                DiskSpool.open(path, channel=f"pass{pass_k}.debug")
            )
        self._readers[pass_k] = reader
        return reader

    def node_record(self, pass_k: int, path: Tuple[int, ...]):
        """``(record, address)`` of a node in pass ``k``'s sealed spool
        (via its put event + random access), or ``(None, None)``."""
        put = self.log.puts.get((pass_k, path))
        if put is None:
            return None, None
        reader = self._reader(pass_k)
        if reader is None:
            return None, None
        index = put["o"]
        record = reader.record(index)
        self._count("debug.spool_records_fetched")
        return record, reader.address(pass_k, index)

    def _initial_attrs(self, path: Tuple[int, ...]) -> Optional[dict]:
        """Attrs of a node in the initial (parser-emitted) spool, by a
        one-time reconstruction walk; None when unavailable."""
        if self._initial_states is None:
            self._initial_states = self._walk_initial()
        state = self._initial_states.get(path)
        return state[1] if state is not None else None

    def _walk_initial(self) -> Dict[Tuple[int, ...], tuple]:
        """path -> (symbol, attrs) from ``initial.spool`` (postfix only;
        prefix-strategy recordings skip initial-state resolution)."""
        path = os.path.join(self.directory, "initial.spool")
        if not os.path.exists(path) or self.log.header.get("strategy") != "bottom-up":
            return {}
        from repro.apt.storage import DiskSpool

        spool = DiskSpool.open(path, channel="initial.debug")
        prods = self.log.productions
        stack: List[tuple] = []  # (symbol, attrs, children, limb)
        pending_limb: Optional[tuple] = None
        for record in spool.read_forward():
            symbol, production, attrs, is_limb = record
            if is_limb:
                pending_limb = (symbol, attrs, [], None)
                continue
            if production is None:
                stack.append((symbol, attrs, [], None))
                continue
            row = prods.get(production)
            arity = row[2] if row else 0
            has_limb = bool(row and row[3])
            children = stack[len(stack) - arity:] if arity else []
            del stack[len(stack) - arity:]
            limb = pending_limb if has_limb else None
            pending_limb = None
            stack.append((symbol, attrs, children, limb))
        out: Dict[Tuple[int, ...], tuple] = {}

        def assign(node: tuple, path_: Tuple[int, ...]) -> None:
            symbol, attrs, children, limb = node
            out[path_] = (symbol, attrs)
            if limb is not None:
                out[path_ + (LIMB_POSITION,)] = (limb[0], limb[1])
            for j, child in enumerate(children):
                assign(child, path_ + (j + 1,))

        if len(stack) == 1:
            assign(stack[0], ())
        return out

    # -- why: the dependency-directed backward slice -----------------------

    def why(
        self, path: Tuple[int, ...], attr: str, max_depth: int = 8
    ) -> dict:
        """The backward slice of ``path.attr``: the semantic-function
        instant that defined it and, recursively, the instants that
        defined each input — across passes, resolving every input to
        its most recent define before the consumer's instant."""
        self._count("debug.queries_why")
        return self._slice(path, attr, None, None, max_depth)

    def _slice(
        self,
        path: Tuple[int, ...],
        attr: str,
        value_hint: Optional[str],
        before_seq: Optional[int],
        depth: int,
    ) -> dict:
        ev = self.log.define_of(path, attr, before_seq)
        value = ev["v"] if ev is not None else value_hint
        if value is None:
            value = self._spool_value(path, attr)
        node = {
            "path": path,
            "attr": attr,
            "value": value,
            "event": ev,
            "inputs": [],
            "truncated": False,
        }
        if ev is None or depth <= 0:
            node["truncated"] = ev is not None and depth <= 0
            return node
        for in_path, in_attr, in_value in ev.get("in", []):
            node["inputs"].append(
                self._slice(
                    tuple(in_path), in_attr, in_value, ev["i"], depth - 1
                )
            )
        return node

    def _spool_value(self, path: Tuple[int, ...], attr: str) -> Optional[str]:
        """Last recorded value of ``path.attr`` out of the sealed spools
        (latest pass first, then the initial spool)."""
        for mark in reversed(self.log.pass_marks):
            record, _addr = self.node_record(mark["p"], path)
            if record is not None and attr in record[2]:
                return canonical_value(record[2][attr])
        attrs = self._initial_attrs(path)
        if attrs is not None and attr in attrs:
            return canonical_value(attrs[attr])
        return None

    def slice_instants(self, node: dict) -> List[tuple]:
        """Flatten a slice into ``(seq, path, attr, value, kind)`` rows —
        the comparable essence the differential test asserts on."""
        out = []

        def walk(n: dict) -> None:
            ev = n["event"]
            out.append(
                (
                    ev["i"] if ev else None,
                    n["path"],
                    n["attr"],
                    n["value"],
                    ev["k"] if ev else "leaf",
                )
            )
            for child in n["inputs"]:
                walk(child)

        walk(node)
        return out

    def render_why(self, target: str, max_depth: int = 8) -> str:
        path, attr = parse_target(target)
        node = self.why(path, attr, max_depth=max_depth)
        lines = [f"why {render_path(path)}.{attr}"]
        seen: Dict[Tuple[Tuple[int, ...], str], int] = {}

        def emit(n: dict, depth: int, marker: str) -> None:
            indent = "   " * depth
            head = f"{render_path(n['path'])}.{n['attr']} = {n['value']}"
            key = (n["path"], n["attr"])
            ev = n["event"]
            if key in seen and ev is not None:
                lines.append(
                    f"{indent}{marker}{head}  (see #{seen[key]} above)"
                )
                return
            lines.append(f"{indent}{marker}{head}")
            pad = indent + (" " * len(marker))
            if ev is None:
                lines.append(
                    f"{pad}| intrinsic: no recorded semantic-function "
                    "instant (scanner/parser-supplied, or defined "
                    "before a resumed recording began)"
                )
                return
            seen[key] = ev["i"]
            tag = self.log.production_tag(ev["pr"])
            lines.append(
                f"{pad}| #{ev['i']} {ev['k']} in pass {ev['p']}, "
                f"production {ev['pr']} ({tag}): {ev['x']}"
            )
            record, addr = self.node_record(ev["p"], n["path"])
            if addr is not None:
                lines.append(
                    f"{pad}| stored at spool address {addr.render()} "
                    f"(pass{ev['p']}.spool record {ev['o']})"
                )
            if n["truncated"]:
                lines.append(f"{pad}| ... inputs elided (--max-depth)")
                return
            for child in n["inputs"]:
                emit(child, depth + 1, "<- ")

        emit(node, 0, "")
        return "\n".join(lines)

    # -- history: value at every pass boundary -----------------------------

    def history(self, path: Tuple[int, ...], attr: str) -> List[dict]:
        self._count("debug.queries_history")
        ev = self.log.define_of(path, attr)
        def_pass = ev["p"] if ev is not None else None
        rows: List[dict] = []
        attrs0 = self._initial_attrs(path)
        rows.append(
            {
                "stage": "initial",
                "value": canonical_value(attrs0[attr])
                if attrs0 is not None and attr in attrs0
                else None,
                "status": "intrinsic"
                if attrs0 is not None and attr in attrs0
                else "absent",
                "address": None,
            }
        )
        for mark in self.log.pass_marks:
            k = mark["p"]
            record, addr = self.node_record(k, path)
            if record is None:
                rows.append(
                    {"stage": f"pass {k}", "value": None,
                     "status": "no sealed record", "address": None}
                )
                continue
            attrs = record[2]
            if attr in attrs:
                status = "defined here" if def_pass == k else "carried"
                rows.append(
                    {
                        "stage": f"pass {k}",
                        "value": canonical_value(attrs[attr]),
                        "status": status,
                        "address": addr,
                    }
                )
            else:
                status = (
                    "not yet defined"
                    if def_pass is None or k < def_pass
                    else "dropped (dead-attribute suppression)"
                )
                rows.append(
                    {"stage": f"pass {k}", "value": None,
                     "status": status, "address": addr}
                )
        return rows

    def render_history(self, target: str) -> str:
        path, attr = parse_target(target)
        rows = self.history(path, attr)
        lines = [f"history {render_path(path)}.{attr}"]
        width = max(len(r["stage"]) for r in rows)
        for r in rows:
            value = "(absent)" if r["value"] is None else r["value"]
            addr = f"  [{r['address'].render()}]" if r["address"] else ""
            lines.append(
                f"  {r['stage']:<{width}} : {value}  ({r['status']}){addr}"
            )
        ev = self.log.define_of(path, attr)
        if ev is not None:
            tag = self.log.production_tag(ev["pr"])
            lines.append(
                f"  defined by #{ev['i']} ({ev['k']}) in pass {ev['p']}, "
                f"production {ev['pr']} ({tag})"
            )
        else:
            lines.append("  no recorded semantic-function instant (intrinsic)")
        return "\n".join(lines)

    # -- step: replay instants around a cursor -----------------------------

    def step(
        self,
        at: Optional[int] = None,
        count: int = 10,
        backward: bool = False,
    ) -> List[dict]:
        self._count("debug.queries_step")
        events = self.log.events
        if not events:
            return []
        if at is None:
            at = events[-1]["i"] if backward else 0
        if not 0 <= at < len(events):
            raise ProvenanceError(
                f"cursor {at} out of range (log has events #0..#{len(events) - 1})"
            )
        if backward:
            lo = max(0, at - count + 1)
            return events[lo:at + 1]
        return events[at:at + count]

    def render_event(self, ev: dict, cursor: bool = False) -> List[str]:
        mark = ">> " if cursor else "   "
        kind = ev.get("e")
        if kind == "pass":
            return [f"{mark}#{ev['i']} -- pass {ev['p']} begins ({ev['d']})"]
        if kind == "put":
            return [
                f"{mark}#{ev['i']} put {render_path(tuple(ev['n']))} "
                f"({ev['s']}) -> pass{ev['p']}.spool record {ev['o']}"
            ]
        if kind == "reuse":
            return [
                f"{mark}#{ev['i']} reuse {ev['s']} subtree under "
                f"{render_path(tuple(ev['n']))}: {ev['r']} input records "
                f"spliced as pass{ev['p']}.spool records "
                f"[{ev['o']}, {ev['o'] + ev['l']})"
            ]
        tag = self.log.production_tag(ev["pr"])
        lines = [
            f"{mark}#{ev['i']} def {render_path(tuple(ev['n']))}.{ev['a']} "
            f"= {ev['v']}  ({ev['k']}, pass {ev['p']}, prod {ev['pr']} {tag})"
        ]
        if cursor:
            for in_path, in_attr, in_value in ev.get("in", []):
                lines.append(
                    f"       <- {render_path(tuple(in_path))}.{in_attr} "
                    f"= {in_value}"
                )
            record, addr = self.node_record(ev["p"], tuple(ev["n"]))
            if record is not None:
                attrs = ", ".join(
                    f"{k}={canonical_value(v)}"
                    for k, v in sorted(record[2].items())
                )
                lines.append(
                    f"       node state after pass {ev['p']} "
                    f"[{addr.render()}]: {{{attrs}}}"
                )
        return lines

    def render_step(
        self,
        at: Optional[int] = None,
        count: int = 10,
        backward: bool = False,
    ) -> str:
        events = self.step(at=at, count=count, backward=backward)
        if not events:
            return "step: the log records no events"
        cursor_seq = events[-1]["i"] if backward else events[0]["i"]
        arrow = "backward" if backward else "forward"
        lines = [
            f"step {arrow} from #{cursor_seq} "
            f"({len(events)} of {len(self.log.events)} instants)"
        ]
        for ev in events:
            lines.extend(self.render_event(ev, cursor=ev["i"] == cursor_seq))
        return "\n".join(lines)

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict:
        self._count("debug.queries_summary")
        per_pass: Dict[int, Dict[str, int]] = {}
        per_prod: Dict[int, int] = {}
        per_attr: Dict[str, int] = {}
        n_defines = n_subsumed = n_puts = 0
        for ev in self.log.events:
            kind = ev.get("e")
            if kind == "pass":
                per_pass.setdefault(ev["p"], {"defines": 0, "puts": 0})
            elif kind == "def":
                n_defines += 1
                if ev["k"] == "subsume":
                    n_subsumed += 1
                per_pass.setdefault(ev["p"], {"defines": 0, "puts": 0})[
                    "defines"
                ] += 1
                per_prod[ev["pr"]] = per_prod.get(ev["pr"], 0) + 1
                per_attr[ev["a"]] = per_attr.get(ev["a"], 0) + 1
            elif kind == "put":
                n_puts += 1
                per_pass.setdefault(ev["p"], {"defines": 0, "puts": 0})[
                    "puts"
                ] += 1
        return {
            "header": self.log.header,
            "n_events": len(self.log.events),
            "n_defines": n_defines,
            "n_subsumed": n_subsumed,
            "n_puts": n_puts,
            "per_pass": per_pass,
            "per_production": per_prod,
            "per_attribute": per_attr,
        }

    def render_summary(self) -> str:
        s = self.summary()
        h = s["header"]
        directions = ", ".join(h.get("directions", []))
        lines = [
            f"provenance summary: {self.log.path}",
            f"  grammar {h.get('grammar')!r}, backend {h.get('backend')}, "
            f"strategy {h.get('strategy')}, "
            f"{h.get('n_passes')} pass(es) ({directions})",
            f"  {s['n_events']} events: {s['n_defines']} defines "
            f"({s['n_subsumed']} subsumed), {s['n_puts']} node writes",
        ]
        if h.get("resumed_from"):
            lines.append(
                f"  resumed recording: passes 1..{h['resumed_from']} "
                "replayed from checkpoint (not re-recorded)"
            )
        for k in sorted(s["per_pass"]):
            row = s["per_pass"][k]
            lines.append(
                f"  pass {k}: {row['defines']} defines, {row['puts']} writes"
            )
        prods = sorted(
            s["per_production"].items(), key=lambda kv: (-kv[1], kv[0])
        )[:8]
        if prods:
            lines.append(
                "  busiest productions: "
                + ", ".join(
                    f"{self.log.production_tag(i)}={n}" for i, n in prods
                )
            )
        attrs = sorted(
            s["per_attribute"].items(), key=lambda kv: (-kv[1], kv[0])
        )[:8]
        if attrs:
            lines.append(
                "  busiest attributes: "
                + ", ".join(f"{a}={n}" for a, n in attrs)
            )
        return "\n".join(lines)

    def close(self) -> None:
        for reader in self._readers.values():
            if reader is not None:
                reader.close()
        self._readers.clear()

    def __enter__(self) -> "DebugSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
