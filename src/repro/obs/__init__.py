"""Unified telemetry for the reproduction: tracing, metrics, exporters.

The paper's headline results are all *measurements* — per-overlay times
(§V), pass-file sizes, I/O-boundedness, the 48K resident-memory budget —
so this package gives every layer of the pipeline one observability
substrate:

* :mod:`repro.obs.trace` — :class:`Tracer` records hierarchical spans
  (overlay → pass → node-visit → semantic-function) and structured
  instant events (spool reads/writes, subsumption save/restore, elided
  copy-rules, dead-attribute skips); :class:`NullTracer` and plain
  ``None`` are the near-zero-overhead disabled paths.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` unifies counters,
  gauges, and histograms with the historical accounting objects
  (``IOAccountant``, ``MemoryGauge``, ``OverlayClock``), which live on
  as thin shims registered as snapshot *sources*.
* :mod:`repro.obs.export` — Chrome ``chrome://tracing`` JSON, NDJSON,
  and terminal-summary exporters consumed by the ``python -m repro
  trace`` and ``python -m repro profile`` subcommands.
* :mod:`repro.obs.provenance` — the attribute-provenance recorder and
  the time-travel query engine behind ``python -m repro debug``
  (why/history/step/summary over a recorded run).

See ``docs/observability.md`` for the span taxonomy and consumption
guidelines.
"""

from repro.obs.metrics import (
    ChannelStats,
    Counter,
    Gauge,
    Histogram,
    IOAccountant,
    IOStats,
    MemoryGauge,
    MetricsRegistry,
    StageClock,
    StageTimes,
)
from repro.obs.trace import NULL_TRACER, NullTracer, TraceRecord, Tracer
from repro.obs.export import chrome_trace_events, chrome_trace_json, ndjson, summary
from repro.obs.provenance import (
    DebugSession,
    ProvenanceLog,
    ProvenanceRecorder,
    ProvenanceScanReport,
    salvage_provenance,
    scan_provenance,
)

__all__ = [
    "DebugSession",
    "ProvenanceLog",
    "ProvenanceRecorder",
    "ProvenanceScanReport",
    "salvage_provenance",
    "scan_provenance",
    "ChannelStats",
    "Counter",
    "Gauge",
    "Histogram",
    "IOAccountant",
    "IOStats",
    "MemoryGauge",
    "MetricsRegistry",
    "StageClock",
    "StageTimes",
    "NULL_TRACER",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "ndjson",
    "summary",
]
