"""The metrics registry: counters, gauges, histograms — one interface.

Before this subsystem existed the repo's quantitative claims were backed
by three ad-hoc counters (``IOAccountant``, ``MemoryGauge``,
``OverlayClock``) that benchmarks read directly.  The
:class:`MetricsRegistry` absorbs all three behind one interface:

* native metrics — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  — are created on first use by name;
* existing accounting objects register as **sources**: a prefix plus a
  ``snapshot()`` callable whose keys are merged into the registry's own
  :meth:`~MetricsRegistry.snapshot` under ``prefix.key``.

The historical names survive as thin compatibility shims: the real
implementations of :class:`IOAccountant` and :class:`MemoryGauge` now
live here (``repro.util.iotrack`` re-exports them), and
``repro.core.overlays.OverlayClock`` subclasses :class:`StageClock`.
Benchmarks read :meth:`MetricsRegistry.snapshot`, so the numbers they
report and the telemetry the ``trace``/``profile`` CLI commands export
can never diverge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "IOStats",
    "ChannelStats",
    "IOAccountant",
    "MemoryGauge",
    "StageTimes",
    "StageClock",
]


# ---------------------------------------------------------------------------
# Native metric kinds
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can move both ways; tracks its peak."""

    __slots__ = ("name", "value", "peak")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, n) -> None:
        self.set(self.value + n)

    def sub(self, n) -> None:
        self.value -= n

    def reset(self) -> None:
        self.value = 0
        self.peak = 0


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class _Timer:
    """Context manager observing a block's wall time into a histogram."""

    __slots__ = ("_hist", "_started")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named metrics plus pluggable snapshot sources, one namespace."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- native metrics ----------------------------------------------------

    def _get(self, name: str, cls) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("phase.seconds"): ...`` observes seconds."""
        return _Timer(self.histogram(name))

    # -- sources -----------------------------------------------------------

    def register_source(
        self, prefix: str, snapshot_fn: Callable[[], Dict[str, Any]]
    ) -> None:
        """Merge ``snapshot_fn()`` under ``prefix.*`` at snapshot time.

        Re-registering a prefix replaces the previous source (a fresh
        evaluation driver supersedes the last run's counters).
        """
        self._sources[prefix] = snapshot_fn

    # -- unified view ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One flat dict unifying native metrics and every source.

        Counters map to ints, gauges contribute ``name`` and
        ``name.peak``, histograms map to their summary dict; source keys
        are prefixed (nested dicts, e.g. per-channel stats, stay nested).
        """
        snap: Dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                snap[name] = metric.value
            elif isinstance(metric, Gauge):
                snap[name] = metric.value
                snap[f"{name}.peak"] = metric.peak
            else:
                snap[name] = metric.snapshot()
        for prefix, fn in self._sources.items():
            for key, value in fn().items():
                snap[f"{prefix}.{key}"] = value
        return snap

    def render(self, title: str = "metrics") -> str:
        """Human-readable table of the current snapshot."""
        snap = self.snapshot()
        lines = [f"{title}:"]
        for key in sorted(snap):
            value = snap[key]
            if isinstance(value, dict):
                lines.append(f"  {key}:")
                for sub in sorted(value):
                    lines.append(f"    {sub:<24} {_fmt(value[sub]):>14}")
            else:
                lines.append(f"  {key:<38} {_fmt(value):>14}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6f}" if value < 1000 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


# ---------------------------------------------------------------------------
# I/O accounting (compatibility shims for repro.util.iotrack)
# ---------------------------------------------------------------------------


@dataclass
class IOStats:
    """Record/byte traffic counters shared by totals and channels.

    One dataclass serves both the accountant's totals and each
    per-channel breakdown — previously ``ChannelStats`` duplicated the
    fields and ``charge_*`` logic.
    """

    records_read: int = 0
    records_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def charge_read(self, nbytes: int) -> None:
        self.records_read += 1
        self.bytes_read += nbytes

    def charge_write(self, nbytes: int) -> None:
        self.records_written += 1
        self.bytes_written += nbytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def total_records(self) -> int:
        return self.records_read + self.records_written

    def snapshot(self) -> Dict[str, int]:
        return {
            "records_read": self.records_read,
            "records_written": self.records_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def reset(self) -> None:
        self.records_read = 0
        self.records_written = 0
        self.bytes_read = 0
        self.bytes_written = 0


#: Historical name for per-channel traffic counters.
ChannelStats = IOStats


@dataclass
class IOAccountant(IOStats):
    """Counts record and byte traffic between memory and "disk".

    Totals live on the inherited :class:`IOStats` fields; a per-channel
    breakdown (e.g. ``{"pass1.out": IOStats(...)}``) accumulates in
    :attr:`by_channel`.  :meth:`bind` registers the accountant with a
    :class:`MetricsRegistry` so its counters appear in the unified
    snapshot under an ``io.`` prefix.
    """

    by_channel: Dict[str, IOStats] = field(default_factory=dict)

    def charge_read(self, nbytes: int, channel: str = "") -> None:
        self.records_read += 1
        self.bytes_read += nbytes
        if channel:
            self._channel(channel).charge_read(nbytes)

    def charge_write(self, nbytes: int, channel: str = "") -> None:
        self.records_written += 1
        self.bytes_written += nbytes
        if channel:
            self._channel(channel).charge_write(nbytes)

    def charge_write_many(
        self, n: int, nbytes: int, channel: str = ""
    ) -> None:
        """Charge ``n`` written records totalling ``nbytes`` in one call
        (the bulk splice path; totals match ``n`` charge_write calls)."""
        self.records_written += n
        self.bytes_written += nbytes
        if channel:
            stats = self._channel(channel)
            stats.records_written += n
            stats.bytes_written += nbytes

    def _channel(self, name: str) -> IOStats:
        stats = self.by_channel.get(name)
        if stats is None:
            stats = IOStats()
            self.by_channel[name] = stats
        return stats

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = IOStats.snapshot(self)
        snap["by_channel"] = {
            name: stats.snapshot() for name, stats in self.by_channel.items()
        }
        return snap

    def bind(self, registry: MetricsRegistry, prefix: str = "io") -> "IOAccountant":
        registry.register_source(prefix, self.snapshot)
        return self

    def reset(self) -> None:
        IOStats.reset(self)
        self.by_channel.clear()


# ---------------------------------------------------------------------------
# Memory gauge (compatibility shim for repro.util.iotrack)
# ---------------------------------------------------------------------------


class MemoryGauge:
    """Tracks currently resident and peak resident bytes of APT nodes.

    Evaluators call :meth:`acquire` when a node enters the in-memory
    stack (``GetNode``) and :meth:`release` when it is written back
    (``PutNode``).  ``peak_bytes`` is the 48K-claim comparator.

    The ledger is defensive: a :meth:`release` that would drive the
    resident figures negative **clamps at zero** and is counted in
    :attr:`unbalanced_releases` instead of silently corrupting the peak
    statistics; with ``strict=True`` it raises immediately, and
    :meth:`assert_balanced` verifies a finished run returned every
    acquired byte.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.current_bytes = 0
        self.peak_bytes = 0
        self.current_nodes = 0
        self.peak_nodes = 0
        self.total_acquired = 0
        self.total_released = 0
        self.unbalanced_releases = 0

    def acquire(self, nbytes: int) -> None:
        self.current_bytes += nbytes
        self.current_nodes += 1
        self.total_acquired += nbytes
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if self.current_nodes > self.peak_nodes:
            self.peak_nodes = self.current_nodes

    def release(self, nbytes: int) -> None:
        self.total_released += nbytes
        if nbytes > self.current_bytes or self.current_nodes == 0:
            self.unbalanced_releases += 1
            if self.strict:
                raise TelemetryError(
                    f"memory gauge underflow: release({nbytes}) with "
                    f"{self.current_bytes} bytes / {self.current_nodes} "
                    "nodes resident"
                )
            self.current_bytes = max(0, self.current_bytes - nbytes)
            self.current_nodes = max(0, self.current_nodes - 1)
            return
        self.current_bytes -= nbytes
        self.current_nodes -= 1

    def assert_balanced(self) -> None:
        """Raise unless every acquire was matched by an exact release."""
        if (
            self.unbalanced_releases
            or self.current_bytes != 0
            or self.current_nodes != 0
        ):
            raise TelemetryError(
                "memory gauge unbalanced: "
                f"{self.current_bytes} bytes / {self.current_nodes} nodes "
                f"still resident, {self.unbalanced_releases} clamped "
                f"releases (acquired {self.total_acquired}, released "
                f"{self.total_released})"
            )

    def snapshot(self) -> Dict[str, int]:
        return {
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "current_nodes": self.current_nodes,
            "peak_nodes": self.peak_nodes,
            "unbalanced_releases": self.unbalanced_releases,
        }

    def bind(self, registry: MetricsRegistry, prefix: str = "mem") -> "MemoryGauge":
        registry.register_source(prefix, self.snapshot)
        return self

    def reset(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self.current_nodes = 0
        self.peak_nodes = 0
        self.total_acquired = 0
        self.total_released = 0
        self.unbalanced_releases = 0


# ---------------------------------------------------------------------------
# Stage timing (compatibility base for repro.core.overlays)
# ---------------------------------------------------------------------------


@dataclass
class StageTimes:
    """Ordered per-stage wall-clock times of one pipeline run."""

    entries: List[Tuple[str, float]] = field(default_factory=list)

    def record(self, name: str, seconds: float) -> None:
        self.entries.append((name, seconds))

    @property
    def total(self) -> float:
        return sum(t for _, t in self.entries)

    def render(self) -> str:
        width = max(len(n) for n, _ in self.entries) if self.entries else 10
        lines = [
            f"  {name:>{width}} - {seconds * 1000:8.1f} ms"
            for name, seconds in self.entries
        ]
        lines.append(f"  {'TOTAL':>{width}} - {self.total * 1000:8.1f} ms")
        return "\n".join(lines)


class StageClock:
    """Times named pipeline stages, optionally tracing and metering them.

    With a ``tracer``, each stage runs inside a span (category
    ``overlay``); with a ``metrics`` registry, the clock registers a
    snapshot source mapping ``<stage>.seconds`` (plus per-stage I/O and
    peak-memory deltas read from the registry's ``io.``/``mem.`` keys)
    under the given prefix.
    """

    timing_factory = StageTimes

    def __init__(
        self,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        cat: str = "overlay",
        prefix: str = "overlay",
    ):
        self.timing = self.timing_factory()
        self.tracer = tracer
        self.metrics = metrics
        self.cat = cat
        self.details: Dict[str, Dict[str, float]] = {}
        if metrics is not None:
            metrics.register_source(prefix, self._source)

    def _source(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, seconds in self.timing.entries:
            out[f"{name}.seconds"] = seconds
            for key, value in self.details.get(name, {}).items():
                out[f"{name}.{key}"] = value
        out["total.seconds"] = self.timing.total
        return out

    def _pulse(self) -> Tuple[int, int]:
        """(total io bytes, peak resident bytes) right now, if metered."""
        if self.metrics is None:
            return (0, 0)
        snap = self.metrics.snapshot()
        io_bytes = snap.get("io.bytes_read", 0) + snap.get("io.bytes_written", 0)
        return (io_bytes, snap.get("mem.peak_bytes", 0))

    def run(self, name: str, thunk: Callable[[], Any]) -> Any:
        tracer = self.tracer
        io_before, _ = self._pulse()
        if tracer is not None:
            tracer.begin(name, cat=self.cat)
        started = time.perf_counter()
        try:
            result = thunk()
        finally:
            seconds = time.perf_counter() - started
            if tracer is not None:
                tracer.end()
        self.timing.record(name, seconds)
        io_after, peak_after = self._pulse()
        self.details[name] = {
            "io_bytes": io_after - io_before,
            "peak_bytes": peak_after,
        }
        return result
