"""Structured tracing: hierarchical spans and instant events.

The paper's whole evaluation story (§V) is a *timeline*: seven overlays
run in sequence, each alternating pass streams the APT through a pair of
spool files, and every node visit fires semantic-function evaluations.
This module makes that timeline observable as a tree of **spans**
(overlay → pass → node-visit → semantic-function) interleaved with
**instant events** (spool reads and writes, save/restore traffic at
static-subsumption sites, elided copy-rules, dead-attribute skips).

Design constraints:

* **Near-zero overhead when disabled.**  Instrumented code holds
  ``tracer: Optional[Tracer]`` defaulting to ``None`` and guards every
  hook with one ``is not None`` check; :class:`NullTracer` exists for
  call sites that prefer an always-valid object, and its methods are
  unconditionally no-ops.
* **Append-only records.**  A span is recorded at ``begin`` (so records
  are ordered by start time) and its duration is patched at ``end``;
  exporters (:mod:`repro.obs.export`) never need the live stack.

Timestamps are ``time.perf_counter_ns`` deltas from tracer creation;
exporters convert to the microseconds Chrome's ``chrome://tracing``
expects.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer", "NULL_TRACER"]

#: Record kinds.
SPAN = "span"
INSTANT = "instant"


class TraceRecord:
    """One trace record: a completed/open span or an instant event.

    ``ts`` and ``dur`` are nanoseconds relative to the owning tracer's
    epoch; ``depth`` is the span-stack depth at emission time (0 for
    top-level), which lets consumers reconstruct nesting without links.
    """

    __slots__ = ("kind", "name", "cat", "ts", "dur", "depth", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        depth: int,
        args: Dict[str, Any],
    ):
        self.kind = kind
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.depth = depth
        self.args = args

    @property
    def ts_us(self) -> float:
        return self.ts / 1000.0

    @property
    def dur_us(self) -> float:
        return self.dur / 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" dur={self.dur}ns" if self.kind == SPAN else ""
        return (
            f"<{self.kind} {self.cat + ':' if self.cat else ''}{self.name}"
            f" @{self.ts}ns depth={self.depth}{extra}>"
        )


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "record")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self.record: Optional[TraceRecord] = None

    def __enter__(self) -> TraceRecord:
        self.record = self._tracer.begin(self._name, self._cat, **self._args)
        return self.record

    def __exit__(self, *exc) -> None:
        self._tracer.end()


class Tracer:
    """Collects spans and instant events on one logical timeline."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._stack: List[TraceRecord] = []
        self._epoch = time.perf_counter_ns()

    # -- emission ----------------------------------------------------------

    def _now(self) -> int:
        return time.perf_counter_ns() - self._epoch

    def begin(self, name: str, cat: str = "", **args: Any) -> TraceRecord:
        """Open a span; it must be closed by a matching :meth:`end`."""
        rec = TraceRecord(SPAN, name, cat, self._now(), 0, len(self._stack), args)
        self._stack.append(rec)
        self.records.append(rec)
        return rec

    def end(self) -> TraceRecord:
        """Close the innermost open span, fixing its duration."""
        rec = self._stack.pop()
        rec.dur = self._now() - rec.ts
        return rec

    def span(self, name: str, cat: str = "", **args: Any) -> _SpanContext:
        """Context manager: ``with tracer.span("pass 1", cat="pass"): ...``"""
        return _SpanContext(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record an instantaneous structured event."""
        self.records.append(
            TraceRecord(INSTANT, name, cat, self._now(), 0, len(self._stack), args)
        )

    # -- introspection -----------------------------------------------------

    def spans(self, cat: Optional[str] = None) -> List[TraceRecord]:
        return [
            r for r in self.records
            if r.kind == SPAN and (cat is None or r.cat == cat)
        ]

    def instants(self, name: Optional[str] = None) -> List[TraceRecord]:
        return [
            r for r in self.records
            if r.kind == INSTANT and (name is None or r.name == name)
        ]

    def open_spans(self) -> int:
        """Number of spans begun but not yet ended (0 when well nested)."""
        return len(self._stack)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class _NullSpanContext:
    """Shared no-op context manager for :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> Optional[TraceRecord]:
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """A tracer that records nothing — the disabled fast path.

    All emission methods are no-ops; ``enabled`` is False so callers
    building expensive ``args`` payloads can skip the work entirely.
    """

    enabled = False
    records: tuple = ()

    def begin(self, name: str, cat: str = "", **args: Any) -> None:
        return None

    def end(self) -> None:
        return None

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        return None

    def spans(self, cat: Optional[str] = None) -> list:
        return []

    def instants(self, name: Optional[str] = None) -> list:
        return []

    def open_spans(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


#: Process-wide shared null tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
