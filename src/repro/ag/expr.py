"""Semantic-function expression AST.

§IV fixes the expression language: "some standard infix operators
(+, -, AND, OR, =, <>, >, <), constants (e.g. 0, 14, true), as well as
a value-producing control flow construct" (``if/then/elsif/else/endif``),
with the restriction that "control flow constructs can be nested within
one another but they can not occur within the operands of infix
operators, or arguments to external functions".  Any identifier that is
not a grammar symbol or attribute is an uninterpreted constant or
function, resolved at evaluation time against a function library.

An :class:`If` whose branches are expression *lists* produces several
values pairwise for a multi-target semantic function (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Sequence, Tuple, Union


class Expr:
    """Base class of expression nodes."""

    __slots__ = ()

    def arity(self) -> int:
        """Number of values this expression produces (lists only via If)."""
        return 1

    def refs(self) -> Iterator["AttrRef"]:
        """All attribute references in the expression, in syntax order."""
        return iter(())

    def contains_if(self) -> bool:
        return False

    def select(self, index: int) -> "Expr":
        """The expression computing value ``index`` of a multi-valued expr."""
        if index != 0:
            raise IndexError(f"single-valued expression has no component {index}")
        return self


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (number, boolean, string) or an uninterpreted
    constant identifier such as ``no$msg`` (value = its own name)."""

    value: Any
    is_symbolic: bool = False  # True for uninterpreted identifiers

    def __str__(self) -> str:
        if self.is_symbolic:
            return str(self.value)
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class AttrRef(Expr):
    """A reference to an attribute occurrence, e.g. ``function$list1.FUNCTS``.

    ``occ_name`` is the occurrence spelling in the source (symbol name
    plus optional numeric suffix, or empty for a bare limb-attribute
    reference); ``attr_name`` is the attribute.  Resolution to a
    position happens during validation and is cached in ``position``
    (``None`` until resolved).
    """

    occ_name: str
    attr_name: str
    position: Union[int, None] = field(default=None, compare=False)

    def refs(self) -> Iterator["AttrRef"]:
        yield self

    def __str__(self) -> str:
        if self.occ_name:
            return f"{self.occ_name}.{self.attr_name}"
        return self.attr_name

    def resolved(self, position: int) -> "AttrRef":
        return AttrRef(self.occ_name, self.attr_name, position)


#: The paper's infix operators (plus the pragmatic arithmetic extensions
#: ``*`` and ``DIV`` used by the shipped Pascal grammar).
BINARY_OPS = ("+", "-", "*", "DIV", "AND", "OR", "=", "<>", ">", "<", ">=", "<=")


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown infix operator {self.op!r}")

    def refs(self) -> Iterator[AttrRef]:
        yield from self.left.refs()
        yield from self.right.refs()

    def contains_if(self) -> bool:
        return self.left.contains_if() or self.right.contains_if()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation — appears in the paper as ``not function.EVAL``."""

    body: Expr

    def refs(self) -> Iterator[AttrRef]:
        yield from self.body.refs()

    def contains_if(self) -> bool:
        return self.body.contains_if()

    def __str__(self) -> str:
        return f"(not {self.body})"


@dataclass(frozen=True)
class Call(Expr):
    """Application of an uninterpreted external function."""

    func: str
    args: Tuple[Expr, ...]

    def refs(self) -> Iterator[AttrRef]:
        for a in self.args:
            yield from a.refs()

    def contains_if(self) -> bool:
        return any(a.contains_if() for a in self.args)

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class If(Expr):
    """``if cond then e1,…,ek elsif … else f1,…,fk endif``.

    ``then_branch`` is a tuple of expressions (length = arity);
    ``else_branch`` is either a tuple of the same length or a nested
    :class:`If` (the ``elsif`` chain).
    """

    cond: Expr
    then_branch: Tuple[Expr, ...]
    else_branch: Union[Tuple[Expr, ...], "If"]

    def arity(self) -> int:
        return len(self.then_branch)

    def _else_exprs(self) -> Sequence[Expr]:
        if isinstance(self.else_branch, If):
            return [self.else_branch]
        return self.else_branch

    def refs(self) -> Iterator[AttrRef]:
        yield from self.cond.refs()
        for e in self.then_branch:
            yield from e.refs()
        if isinstance(self.else_branch, If):
            yield from self.else_branch.refs()
        else:
            for e in self.else_branch:
                yield from e.refs()

    def contains_if(self) -> bool:
        return True

    def select(self, index: int) -> Expr:
        """Per-target projection of a multi-valued conditional."""
        if not 0 <= index < self.arity():
            raise IndexError(f"if-expression has arity {self.arity()}, no component {index}")
        if isinstance(self.else_branch, If):
            else_part: Union[Tuple[Expr, ...], If] = self.else_branch.select(index)
            if not isinstance(else_part, If):
                else_part = (else_part,)
        else:
            else_part = (self.else_branch[index],)
        return If(self.cond, (self.then_branch[index],), else_part)

    def __str__(self) -> str:
        then_s = ", ".join(str(e) for e in self.then_branch)
        if isinstance(self.else_branch, If):
            else_s = str(self.else_branch)
            return f"if {self.cond} then {then_s} els{else_s[2:]}"
        else_s = ", ".join(str(e) for e in self.else_branch)
        return f"if {self.cond} then {then_s} else {else_s} endif"


def expression_size(expr: Expr) -> int:
    """Node count of an expression — the code-size proxy the static
    subsumption cost model uses."""
    if isinstance(expr, (Const, AttrRef)):
        return 1
    if isinstance(expr, Not):
        return 1 + expression_size(expr.body)
    if isinstance(expr, BinOp):
        return 1 + expression_size(expr.left) + expression_size(expr.right)
    if isinstance(expr, Call):
        return 1 + sum(expression_size(a) for a in expr.args)
    if isinstance(expr, If):
        total = 1 + expression_size(expr.cond)
        total += sum(expression_size(e) for e in expr.then_branch)
        if isinstance(expr.else_branch, If):
            total += expression_size(expr.else_branch)
        else:
            total += sum(expression_size(e) for e in expr.else_branch)
        return total
    raise TypeError(f"unknown expression node {expr!r}")
