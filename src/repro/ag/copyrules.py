"""Per-target bindings and copy-rule classification.

A *binding* pairs one target attribute-occurrence with the expression
that computes it; a multi-target semantic function yields one binding
per target (projecting a multi-valued ``if`` pairwise, per §IV).  A
binding is a **copy-rule** when its expression is a bare attribute
reference — the 40–60 % case the static-subsumption optimization
exists to eliminate (§III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.ag.expr import AttrRef, Expr
from repro.ag.model import (
    AttributeGrammar,
    AttributeOccurrence,
    Production,
    SemanticFunction,
)


@dataclass(frozen=True)
class Binding:
    """One defining binding: ``target = expr`` within a production."""

    production: int
    function: SemanticFunction
    target_index: int
    target: AttributeOccurrence
    expr: Expr

    @property
    def implicit(self) -> bool:
        return self.function.implicit

    def is_copy(self) -> bool:
        return isinstance(self.expr, AttrRef) and self.expr.position is not None

    def copy_source(self) -> Optional[AttrRef]:
        """The source reference when this binding is a copy-rule."""
        return self.expr if self.is_copy() else None

    def is_same_name_copy(self) -> bool:
        """Copy between two instances of attributes with the *same name* —
        the subsumable shape under name-grouped static allocation."""
        src = self.copy_source()
        return src is not None and src.attr_name == self.target.attr_name

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


def bindings_of(func: SemanticFunction, production_index: int) -> List[Binding]:
    """Expand a semantic function into per-target bindings."""
    out: List[Binding] = []
    multi = func.expr.arity() > 1
    for i, target in enumerate(func.targets):
        expr = func.expr.select(i) if multi else func.expr
        out.append(Binding(production_index, func, i, target, expr))
    return out


def production_bindings(prod: Production) -> List[Binding]:
    """Bindings of a production (cached: the validator fixes the function
    list once, and analysis passes re-enumerate bindings constantly)."""
    cached = prod.__dict__.get("_bindings_cache")
    if cached is not None and cached[0] == len(prod.functions):
        return cached[1]
    out: List[Binding] = []
    for func in prod.functions:
        out.extend(bindings_of(func, prod.index))
    prod.__dict__["_bindings_cache"] = (len(prod.functions), out)
    return out


def grammar_bindings(ag: AttributeGrammar) -> Iterator[Binding]:
    for prod in ag.productions:
        yield from production_bindings(prod)


def is_copy_rule(func: SemanticFunction) -> bool:
    """Function-level classification (the §IV statistic counts whole
    semantic functions): every binding must be a bare attribute copy."""
    if func.expr.arity() > 1:
        return all(
            isinstance(func.expr.select(i), AttrRef)
            and func.expr.select(i).position is not None
            for i in range(func.expr.arity())
        )
    return isinstance(func.expr, AttrRef) and func.expr.position is not None
