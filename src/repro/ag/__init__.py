"""The attribute-grammar core model (§I, §IV of the paper).

Symbols come in the paper's three kinds — terminal, nonterminal, and
**limb** — and attributes in four: inherited, synthesized, **intrinsic**
(set by the parser before any pass), and limb-**local** (names for
common subexpressions).  Semantic functions are pure expressions over
attribute occurrences, may define several occurrences at once, and use
only the paper's operators (infix ``+ - AND OR = <> > <``, ``not``, and
the ``if/then/elsif/else/endif`` value-producing construct).
"""

from repro.ag.model import (
    Attribute,
    AttributeGrammar,
    AttributeOccurrence,
    AttrKind,
    Production,
    SemanticFunction,
    Symbol,
    SymbolKind,
    SymbolOccurrence,
    LHS_POSITION,
    LIMB_POSITION,
)
from repro.ag.expr import (
    AttrRef,
    BinOp,
    Call,
    Const,
    Expr,
    If,
    Not,
)
from repro.ag.builder import GrammarBuilder
from repro.ag.exprtext import parse_expression
from repro.ag.validate import validate_grammar
from repro.ag.copyrules import Binding, bindings_of, is_copy_rule
from repro.ag.stats import GrammarStatistics, compute_statistics
from repro.ag.dependencies import production_dependency_graph
from repro.ag.circularity import check_noncircular

__all__ = [
    "Attribute",
    "AttributeGrammar",
    "AttributeOccurrence",
    "AttrKind",
    "Production",
    "SemanticFunction",
    "Symbol",
    "SymbolKind",
    "SymbolOccurrence",
    "LHS_POSITION",
    "LIMB_POSITION",
    "AttrRef",
    "BinOp",
    "Call",
    "Const",
    "Expr",
    "If",
    "Not",
    "GrammarBuilder",
    "parse_expression",
    "validate_grammar",
    "Binding",
    "bindings_of",
    "is_copy_rule",
    "GrammarStatistics",
    "compute_statistics",
    "production_dependency_graph",
    "check_noncircular",
]
