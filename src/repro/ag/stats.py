"""Grammar statistics — the §IV numbers for EXP-T1 and EXP-C1.

The paper reports, for the LINGUIST-86 grammar itself: 1800 lines, 159
symbols, 318 attributes, 72 productions, 1202 attribute-occurrences,
584 semantic functions of which 302 (~52 %) are copy-rules and 276 of
those implicit; evaluable in 4 alternating passes.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Optional

from repro.ag.copyrules import is_copy_rule
from repro.ag.model import AttributeGrammar, SymbolKind


@dataclass
class GrammarStatistics:
    name: str
    source_lines: int
    n_symbols: int
    n_terminals: int
    n_nonterminals: int
    n_limbs: int
    n_attributes: int
    n_productions: int
    n_attribute_occurrences: int
    n_semantic_functions: int
    n_copy_rules: int
    n_implicit_copy_rules: int
    n_passes: int = 0  # filled by the alternating-pass analysis

    @property
    def copy_rule_percent(self) -> float:
        if not self.n_semantic_functions:
            return 0.0
        return 100.0 * self.n_copy_rules / self.n_semantic_functions

    def as_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["copy_rule_percent"] = round(self.copy_rule_percent, 1)
        return d

    def render(self) -> str:
        rows = [
            ("source lines", self.source_lines),
            ("grammar symbols", self.n_symbols),
            ("  terminals", self.n_terminals),
            ("  nonterminals", self.n_nonterminals),
            ("  limbs", self.n_limbs),
            ("attributes", self.n_attributes),
            ("productions", self.n_productions),
            ("attribute-occurrences", self.n_attribute_occurrences),
            ("semantic functions", self.n_semantic_functions),
            ("copy-rules", self.n_copy_rules),
            ("  implicit copy-rules", self.n_implicit_copy_rules),
            ("copy-rule percentage", f"{self.copy_rule_percent:.1f}%"),
        ]
        if self.n_passes:
            rows.append(("alternating passes", self.n_passes))
        width = max(len(label) for label, _ in rows)
        lines = [f"statistics for attribute grammar {self.name!r}:"]
        lines.extend(f"  {label:<{width}}  {value}" for label, value in rows)
        return "\n".join(lines)


def compute_statistics(ag: AttributeGrammar, n_passes: int = 0) -> GrammarStatistics:
    n_functions = 0
    n_copies = 0
    n_implicit = 0
    n_occurrences = 0
    for prod in ag.productions:
        n_occurrences += len(ag.attribute_occurrences(prod))
        for func in prod.functions:
            n_functions += 1
            if is_copy_rule(func):
                n_copies += 1
                if func.implicit:
                    n_implicit += 1
    return GrammarStatistics(
        name=ag.name,
        source_lines=ag.source_lines,
        n_symbols=len(ag.symbols),
        n_terminals=len(ag.terminals),
        n_nonterminals=len(ag.nonterminals),
        n_limbs=len(ag.limbs),
        n_attributes=len(ag.all_attributes()),
        n_productions=len(ag.productions),
        n_attribute_occurrences=n_occurrences,
        n_semantic_functions=n_functions,
        n_copy_rules=n_copies,
        n_implicit_copy_rules=n_implicit,
        n_passes=n_passes,
    )
