"""Attribute dependency graphs within productions.

The direct dependency graph of a production has the production's
attribute occurrences as nodes and an edge *argument → target* for each
argument of each binding (the target "depends on" the argument, §I).
Overlay 4 of LINGUIST-86 "analyzes the attribute dependencies that are
in the dictionary"; these graphs are its input, shared by the
circularity test and the alternating-pass partitioner.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ag.copyrules import Binding, production_bindings
from repro.ag.model import (
    AttributeGrammar,
    AttributeOccurrence,
    Production,
)

#: A node key: (position, attribute name).  Stable and hashable.
OccKey = Tuple[int, str]


def occ_key(occ: AttributeOccurrence) -> OccKey:
    return (occ.position, occ.attr_name)


def binding_argument_keys(binding: Binding) -> List[OccKey]:
    """Argument occurrences (position, attr) the binding's value needs.

    Cached on the binding object itself — this is the hottest call in
    the pass-assignment fixpoint.
    """
    cached = binding.__dict__.get("_arg_keys")
    if cached is not None:
        return cached
    out = [
        (ref.position, ref.attr_name)
        for ref in binding.expr.refs()
        if ref.position is not None
    ]
    object.__setattr__(binding, "_arg_keys", out)
    return out


def production_dependency_graph(
    ag: AttributeGrammar, prod: Production
) -> Dict[OccKey, Set[OccKey]]:
    """Direct dependencies: ``graph[arg]`` is the set of targets that use
    ``arg``.  Nodes include every attribute occurrence of the production
    (also unused ones, so callers can enumerate)."""
    graph: Dict[OccKey, Set[OccKey]] = {}
    for occ in ag.attribute_occurrences(prod):
        graph.setdefault(occ_key(occ), set())
    for binding in production_bindings(prod):
        tkey = occ_key(binding.target)
        graph.setdefault(tkey, set())
        for akey in binding_argument_keys(binding):
            graph.setdefault(akey, set()).add(tkey)
    return graph


def has_cycle(graph: Dict[OccKey, Set[OccKey]]) -> List[OccKey]:
    """Return a cycle (as a node list) if one exists, else []."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[OccKey, int] = {n: WHITE for n in graph}
    stack: List[OccKey] = []

    def visit(node: OccKey) -> List[OccKey]:
        color[node] = GREY
        stack.append(node)
        for succ in graph.get(node, ()):
            if color.get(succ, WHITE) == GREY:
                i = stack.index(succ)
                return stack[i:] + [succ]
            if color.get(succ, WHITE) == WHITE:
                found = visit(succ)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return []

    for node in list(graph):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return []


def transitive_closure(graph: Dict[OccKey, Set[OccKey]]) -> Dict[OccKey, Set[OccKey]]:
    """Reachability closure (simple worklist; production graphs are small)."""
    closure: Dict[OccKey, Set[OccKey]] = {n: set(s) for n, s in graph.items()}
    changed = True
    while changed:
        changed = False
        for node, succs in closure.items():
            new = set()
            for s in succs:
                new |= closure.get(s, set())
            before = len(succs)
            succs |= new
            if len(succs) != before:
                changed = True
    return closure
