"""Non-circularity test.

Deciding circularity exactly is intrinsically exponential [JOR]; §I
notes "several interesting and widely applicable sufficient conditions
that can be checked in polynomial time".  We implement the classic one:
the **absolutely-noncircular** test.  For each nonterminal ``X`` we
compute one merged IO relation ``io(X) ⊆ inherited(X) × synthesized(X)``
("some tree rooted at X can make this synthesized attribute depend on
that inherited attribute"), by a fixpoint over productions; the grammar
passes when every production's direct-dependency graph, augmented with
``io`` edges at its right-hand-side occurrences, is acyclic.  Passing
implies noncircular; failing means *possibly* circular (the report says
so honestly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ag.dependencies import (
    OccKey,
    has_cycle,
    production_dependency_graph,
    transitive_closure,
)
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    LHS_POSITION,
    Production,
)
from repro.errors import CircularityError

#: io relation element: (inherited attr name, synthesized attr name).
IOPair = Tuple[str, str]


@dataclass
class CircularityReport:
    ok: bool
    io: Dict[str, Set[IOPair]] = field(default_factory=dict)
    #: For each failing production: the cycle found.
    cycles: List[Tuple[int, List[OccKey]]] = field(default_factory=list)

    def render(self, ag: AttributeGrammar) -> str:
        if self.ok:
            return "grammar is absolutely noncircular"
        lines = ["grammar FAILS the absolute-noncircularity test (possibly circular):"]
        for prod_index, cycle in self.cycles:
            prod = ag.productions[prod_index]
            path = " -> ".join(f"{pos}:{name}" for pos, name in cycle)
            lines.append(f"  production {prod_index} ({prod}): cycle {path}")
        return "\n".join(lines)


def _augmented_graph(
    ag: AttributeGrammar,
    prod: Production,
    io: Dict[str, Set[IOPair]],
) -> Dict[OccKey, Set[OccKey]]:
    """Direct dependencies plus io-induced inh→syn edges at RHS occurrences."""
    graph = production_dependency_graph(ag, prod)
    for position in prod.rhs_positions():
        sym_name = prod.rhs[position - 1]
        for inh_name, syn_name in io.get(sym_name, ()):
            src = (position, inh_name)
            dst = (position, syn_name)
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
    return graph


def compute_io_relations(ag: AttributeGrammar) -> Dict[str, Set[IOPair]]:
    """Fixpoint of the merged IO relations over all productions."""
    io: Dict[str, Set[IOPair]] = {s.name: set() for s in ag.nonterminals}
    changed = True
    while changed:
        changed = False
        for prod in ag.productions:
            graph = _augmented_graph(ag, prod, io)
            closure = transitive_closure(graph)
            lhs_sym = ag.symbol(prod.lhs)
            inh_names = [a.name for a in lhs_sym.inherited]
            syn_names = {a.name for a in lhs_sym.synthesized}
            target = io[prod.lhs]
            for inh in inh_names:
                reach = closure.get((LHS_POSITION, inh), set())
                for pos, attr in reach:
                    if pos == LHS_POSITION and attr in syn_names:
                        pair = (inh, attr)
                        if pair not in target:
                            target.add(pair)
                            changed = True
    return io


def check_noncircular(ag: AttributeGrammar, strict: bool = True) -> CircularityReport:
    """Run the absolutely-noncircular test.

    With ``strict``, a failure raises :class:`CircularityError`;
    otherwise the report carries the offending cycles.
    """
    io = compute_io_relations(ag)
    report = CircularityReport(ok=True, io=io)
    for prod in ag.productions:
        graph = _augmented_graph(ag, prod, io)
        cycle = has_cycle(graph)
        if cycle:
            report.ok = False
            report.cycles.append((prod.index, cycle))
    if strict and not report.ok:
        raise CircularityError(report.render(ag))
    return report
