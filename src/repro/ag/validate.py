"""Static validation of attribute grammars.

Implements §I's well-formedness rules and §IV's pragmatics:

* every semantic-function target must be a synthesized attribute of the
  LHS, an inherited attribute of a RHS occurrence, or a limb attribute;
* no attribute-occurrence may be defined twice; intrinsic attributes may
  never be defined;
* the start symbol has no inherited attributes; terminals have no
  synthesized attributes (enforced at declaration) — and additionally
  inherited attributes on terminals are rejected here, since a terminal
  leaf is never visited;
* **implicit copy-rules** are inserted for missing definitions, in the
  paper's two flavors, before completeness is finally enforced;
* every attribute reference must resolve; bare identifiers resolve to
  limb attributes when possible and otherwise become uninterpreted
  constants;
* a multi-target function's expression must produce one common value or
  exactly one value per target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.ag.model import (
    AttrKind,
    AttributeGrammar,
    AttributeOccurrence,
    LHS_POSITION,
    LIMB_POSITION,
    Production,
    SemanticFunction,
    SymbolKind,
)
from repro.errors import DiagnosticSink, SemanticError, SourceLocation, NOWHERE


@dataclass
class RawFunction:
    """An unresolved semantic function: target specs + expression AST."""

    targets: List[Tuple[str, str]]  # (occurrence name or "", attribute name)
    expr: Expr
    location: SourceLocation = NOWHERE


def parse_target_spec(spec: str) -> Tuple[str, str]:
    """Split ``"occ.ATTR"`` / bare ``"ATTR"`` into (occ_name, attr_name)."""
    spec = spec.strip()
    if "." in spec:
        occ, attr = spec.rsplit(".", 1)
        return occ.strip(), attr.strip()
    return "", spec


def validate_grammar(
    ag: AttributeGrammar,
    raw_functions: Dict[int, List[RawFunction]],
    sink: DiagnosticSink,
) -> None:
    """Resolve ``raw_functions`` onto ``ag``'s productions, inserting
    implicit copy-rules; report all static errors to ``sink``."""
    _check_symbol_rules(ag, sink)
    for prod in ag.productions:
        _validate_production(ag, prod, raw_functions.get(prod.index, []), sink)


# ---------------------------------------------------------------------------


def _check_symbol_rules(ag: AttributeGrammar, sink: DiagnosticSink) -> None:
    if ag.start not in ag.symbols:
        sink.error(f"start symbol {ag.start!r} is not declared")
        return
    start = ag.symbols[ag.start]
    if start.kind is not SymbolKind.NONTERMINAL:
        sink.error(f"start symbol {ag.start!r} must be a nonterminal")
    for attr in start.inherited:
        sink.error(f"start symbol has inherited attribute {attr.name!r} (forbidden)")
    for sym in ag.terminals:
        for attr in sym.inherited:
            sink.error(
                f"terminal {sym.name!r} has inherited attribute {attr.name!r}; "
                "terminal leaves carry only intrinsic attributes"
            )
    defined_lhs: Set[str] = {p.lhs for p in ag.productions}
    for sym in ag.nonterminals:
        if sym.name not in defined_lhs:
            sink.error(f"nonterminal {sym.name!r} has no productions")


def _validate_production(
    ag: AttributeGrammar,
    prod: Production,
    raw: List[RawFunction],
    sink: DiagnosticSink,
) -> None:
    defined: Dict[Tuple[int, str], SemanticFunction] = {}

    for rf in raw:
        targets: List[AttributeOccurrence] = []
        ok = True
        for occ_name, attr_name in rf.targets:
            target = _resolve_target(ag, prod, occ_name, attr_name, sink, rf.location)
            if target is None:
                ok = False
                continue
            targets.append(target)
        expr = _resolve_expr(ag, prod, rf.expr, sink, rf.location)
        if not ok or expr is None:
            continue
        if not _check_arity(targets, expr, sink, rf.location):
            continue
        func = SemanticFunction(targets, expr, implicit=False, location=rf.location)
        for t in targets:
            key = (t.position, t.attr_name)
            if key in defined:
                sink.error(
                    f"attribute-occurrence {t} defined twice in production "
                    f"{prod.index} ({prod})",
                    rf.location,
                )
            else:
                defined[key] = func
        prod.functions.append(func)

    _insert_implicit_copies(ag, prod, defined, sink)
    _check_completeness(ag, prod, defined, sink)


def _resolve_target(
    ag: AttributeGrammar,
    prod: Production,
    occ_name: str,
    attr_name: str,
    sink: DiagnosticSink,
    location: SourceLocation,
) -> Optional[AttributeOccurrence]:
    if not occ_name:
        # Bare target: must be a limb attribute of this production.
        if prod.limb:
            limb_sym = ag.symbol(prod.limb)
            if attr_name in limb_sym.attributes:
                return AttributeOccurrence(
                    prod.index, LIMB_POSITION, limb_sym.attributes[attr_name]
                )
        sink.error(
            f"{attr_name!r} is not a limb attribute of production {prod.index} "
            f"({prod}); a bare semantic-function target must name one",
            location,
        )
        return None

    occ = prod.occurrence_named(occ_name)
    if occ is None:
        sink.error(
            f"no occurrence named {occ_name!r} in production {prod.index} ({prod})",
            location,
        )
        return None
    sym = ag.symbol(occ.symbol)
    attr = sym.attributes.get(attr_name)
    if attr is None:
        sink.error(
            f"symbol {sym.name!r} has no attribute {attr_name!r}", location
        )
        return None
    target = AttributeOccurrence(prod.index, occ.position, attr)
    # Target-legality: LHS synthesized / RHS inherited / limb local.
    if attr.kind is AttrKind.INTRINSIC:
        sink.error(
            f"semantic function may not define intrinsic attribute {target}",
            location,
        )
        return None
    if occ.position == LHS_POSITION and attr.kind is not AttrKind.SYNTHESIZED:
        sink.error(
            f"{target}: only synthesized attributes of the left-hand side "
            "may be defined here",
            location,
        )
        return None
    if occ.position >= 1 and attr.kind is not AttrKind.INHERITED:
        sink.error(
            f"{target}: only inherited attributes of right-hand-side "
            "occurrences may be defined here",
            location,
        )
        return None
    if occ.position == LIMB_POSITION and attr.kind is not AttrKind.LOCAL:
        sink.error(f"{target}: limb occurrences carry only local attributes", location)
        return None
    return target


def _resolve_expr(
    ag: AttributeGrammar,
    prod: Production,
    expr: Expr,
    sink: DiagnosticSink,
    location: SourceLocation,
) -> Optional[Expr]:
    """Rewrite ``expr`` with every :class:`AttrRef` resolved to a position
    (or demoted to a symbolic constant).  Returns None on hard errors."""
    failed = []

    def resolve(node: Expr) -> Expr:
        if isinstance(node, Const):
            return node
        if isinstance(node, AttrRef):
            return resolve_ref(node)
        if isinstance(node, Not):
            return Not(resolve(node.body))
        if isinstance(node, BinOp):
            return BinOp(node.op, resolve(node.left), resolve(node.right))
        if isinstance(node, Call):
            return Call(node.func, tuple(resolve(a) for a in node.args))
        if isinstance(node, If):
            then_branch = tuple(resolve(e) for e in node.then_branch)
            if isinstance(node.else_branch, If):
                else_branch = resolve(node.else_branch)
            else:
                else_branch = tuple(resolve(e) for e in node.else_branch)
            return If(resolve(node.cond), then_branch, else_branch)
        raise TypeError(f"unknown expression node {node!r}")

    def resolve_ref(ref: AttrRef) -> Expr:
        if not ref.occ_name:
            # Bare identifier: limb attribute if declared, else constant.
            if prod.limb:
                limb_sym = ag.symbol(prod.limb)
                if ref.attr_name in limb_sym.attributes:
                    return AttrRef(prod.limb, ref.attr_name, LIMB_POSITION)
            return Const(ref.attr_name, is_symbolic=True)
        occ = prod.occurrence_named(ref.occ_name)
        if occ is None:
            failed.append(ref)
            sink.error(
                f"no occurrence named {ref.occ_name!r} in production "
                f"{prod.index} ({prod})",
                location,
            )
            return ref
        sym = ag.symbol(occ.symbol)
        attr = sym.attributes.get(ref.attr_name)
        if attr is None:
            failed.append(ref)
            sink.error(
                f"symbol {sym.name!r} has no attribute {ref.attr_name!r}",
                location,
            )
            return ref
        return AttrRef(ref.occ_name, ref.attr_name, occ.position)

    resolved = resolve(expr)
    return None if failed else resolved


def _check_arity(
    targets: List[AttributeOccurrence],
    expr: Expr,
    sink: DiagnosticSink,
    location: SourceLocation,
) -> bool:
    if expr.arity() == 1:
        # One value shared by every target (§IV: "interpreted as the
        # common value of all attribute-occurrences").
        return True
    if expr.arity() != len(targets):
        sink.error(
            f"semantic function defines {len(targets)} occurrence(s) but its "
            f"if-expression produces {expr.arity()} value(s)",
            location,
        )
        return False
    return True


# ---------------------------------------------------------------------------
# Implicit copy-rules (§IV, two flavors).
# ---------------------------------------------------------------------------


def _insert_implicit_copies(
    ag: AttributeGrammar,
    prod: Production,
    defined: Dict[Tuple[int, str], SemanticFunction],
    sink: DiagnosticSink,
) -> None:
    lhs_sym = ag.symbol(prod.lhs)

    # Flavor 1: R.A inherited of RHS symbol R undefined, and the LHS has
    # an attribute of the same name A  =>  R.A = L.A.
    for position in prod.rhs_positions():
        rhs_sym = ag.symbol(prod.rhs[position - 1])
        for attr in rhs_sym.inherited:
            if (position, attr.name) in defined:
                continue
            lhs_attr = lhs_sym.attributes.get(attr.name)
            if lhs_attr is None:
                continue
            target = AttributeOccurrence(prod.index, position, attr)
            lhs_occ = prod.occurrence_at(LHS_POSITION)
            source = AttrRef(lhs_occ.name, attr.name, LHS_POSITION)
            func = SemanticFunction([target], source, implicit=True, location=prod.location)
            prod.functions.append(func)
            defined[(position, attr.name)] = func

    # Flavor 2: L.B synthesized undefined, exactly one RHS symbol R has a
    # synthesized attribute named B and R occurs exactly once  =>  L.B = R.B.
    for attr in lhs_sym.synthesized:
        if (LHS_POSITION, attr.name) in defined:
            continue
        candidates = []
        for position in prod.rhs_positions():
            rhs_sym = ag.symbol(prod.rhs[position - 1])
            rattr = rhs_sym.attributes.get(attr.name)
            if rattr is not None and rattr.kind is AttrKind.SYNTHESIZED:
                candidates.append((position, rhs_sym.name))
        if len(candidates) != 1:
            continue
        position, rname = candidates[0]
        if prod.rhs.count(rname) != 1:
            continue
        target = AttributeOccurrence(prod.index, LHS_POSITION, attr)
        occ = prod.occurrence_at(position)
        source = AttrRef(occ.name, attr.name, position)
        func = SemanticFunction([target], source, implicit=True, location=prod.location)
        prod.functions.append(func)
        defined[(LHS_POSITION, attr.name)] = func


def _check_completeness(
    ag: AttributeGrammar,
    prod: Production,
    defined: Dict[Tuple[int, str], SemanticFunction],
    sink: DiagnosticSink,
) -> None:
    lhs_sym = ag.symbol(prod.lhs)
    for attr in lhs_sym.synthesized:
        if (LHS_POSITION, attr.name) not in defined:
            sink.error(
                f"production {prod.index} ({prod}) does not define synthesized "
                f"attribute {prod.lhs}.{attr.name} and no implicit copy-rule applies",
                prod.location,
            )
    for position in prod.rhs_positions():
        rhs_sym = ag.symbol(prod.rhs[position - 1])
        for attr in rhs_sym.inherited:
            if (position, attr.name) not in defined:
                sink.error(
                    f"production {prod.index} ({prod}) does not define inherited "
                    f"attribute {attr.name!r} of occurrence "
                    f"{prod.occurrence_at(position).name!r} and no implicit "
                    "copy-rule applies",
                    prod.location,
                )
    # Limb attributes: referenced-but-undefined is an error.
    if prod.limb:
        limb_sym = ag.symbol(prod.limb)
        referenced: Set[str] = set()
        for func in prod.functions:
            for ref in func.expr.refs():
                if ref.position == LIMB_POSITION:
                    referenced.add(ref.attr_name)
        for attr in limb_sym.attributes.values():
            have = (LIMB_POSITION, attr.name) in defined
            if attr.name in referenced and not have:
                sink.error(
                    f"limb attribute {prod.limb}.{attr.name} is referenced but "
                    f"never defined in production {prod.index}",
                    prod.location,
                )
            elif not have and attr.name not in referenced:
                sink.warning(
                    f"limb attribute {prod.limb}.{attr.name} is never defined "
                    f"(production {prod.index})",
                    prod.location,
                )
