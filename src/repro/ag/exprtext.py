"""Hand-written recursive-descent parser for semantic-function expressions.

This is the programmatic convenience used by :class:`GrammarBuilder`
(grammars defined in Python).  Attribute grammars supplied as ``.ag``
source files are parsed whole — expressions included — by the
LALR-generated frontend in :mod:`repro.frontend`; both produce the same
:mod:`repro.ag.expr` AST, and the frontend test suite cross-checks them.

Grammar (paper §IV):  ``if`` never occurs inside an infix operand or a
call argument; the layered precedence below enforces that structurally.

    exprlist :=  expr (',' expr)*
    expr     :=  ifexpr | simple
    ifexpr   :=  'if' simple 'then' branch ('elsif' simple 'then' branch)*
                 'else' branch 'endif'
    branch   :=  expr (',' expr)*          -- elements may be ifexpr
    simple   :=  disj
    disj     :=  conj ('OR' conj)*
    conj     :=  cmp ('AND' cmp)*
    cmp      :=  add (('='|'<>'|'<'|'>'|'<='|'>=') add)?
    add      :=  mul (('+'|'-') mul)*
    mul      :=  unary (('*'|'DIV') unary)*
    unary    :=  'NOT' unary | '-' unary | primary
    primary  :=  number | string | 'true' | 'false'
               | IDENT '(' (simple (',' simple)*)? ')'
               | IDENT '.' IDENT | IDENT | '(' simple ')'
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.ag.expr import AttrRef, BinOp, Call, Const, Expr, If, Not
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z][A-Za-z0-9$_]*)
  | (?P<op><>|<=|>=|[=<>+\-*(),.])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"if", "then", "elsif", "else", "endif", "and", "or", "not", "div", "true", "false"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"bad character {text[pos]!r} in expression {text!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        value = m.group()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append((value.lower(), value))
        else:
            tokens.append((kind, value))
    tokens.append(("$end", ""))
    return tokens


class _ExprParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos][0]

    def take(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        if tok[0] != "$end":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> str:
        k, v = self.take()
        if k != kind:
            raise ParseError(
                f"expected {kind!r} but found {v or 'end of expression'!r} in {self.text!r}"
            )
        return v

    def at_op(self, *ops: str) -> Optional[str]:
        k, v = self.tokens[self.pos]
        if k == "op" and v in ops:
            return v
        return None

    # ------------------------------------------------------------------

    def parse_exprlist(self) -> List[Expr]:
        out = [self.parse_expr()]
        while self.at_op(","):
            self.take()
            out.append(self.parse_expr())
        return out

    def parse_expr(self) -> Expr:
        if self.peek() == "if":
            return self.parse_if()
        return self.parse_simple()

    def parse_if(self) -> If:
        self.expect("if")
        cond = self.parse_simple()
        self.expect("then")
        then_branch = tuple(self.parse_branch())
        if self.peek() == "elsif":
            # Desugar: elsif chain becomes a nested If in the else slot.
            self.take()
            nested = self._continue_if()
            return If(cond, then_branch, nested)
        self.expect("else")
        else_branch = tuple(self.parse_branch())
        self.expect("endif")
        if len(then_branch) != len(else_branch):
            raise ParseError(
                f"if-expression branches have different lengths "
                f"({len(then_branch)} vs {len(else_branch)}) in {self.text!r}"
            )
        return If(cond, then_branch, else_branch)

    def _continue_if(self) -> If:
        """Parse the rest of an elsif chain (cond already pending)."""
        cond = self.parse_simple()
        self.expect("then")
        then_branch = tuple(self.parse_branch())
        if self.peek() == "elsif":
            self.take()
            nested = self._continue_if()
            result = If(cond, then_branch, nested)
        else:
            self.expect("else")
            else_branch = tuple(self.parse_branch())
            self.expect("endif")
            if len(then_branch) != len(else_branch):
                raise ParseError(
                    f"elsif branches have different lengths in {self.text!r}"
                )
            result = If(cond, then_branch, else_branch)
        return result

    def parse_branch(self) -> List[Expr]:
        out = [self.parse_expr()]
        while self.at_op(","):
            self.take()
            out.append(self.parse_expr())
        return out

    # -- the if-free layer ----------------------------------------------

    def parse_simple(self) -> Expr:
        if self.peek() == "if":
            raise ParseError(
                "control-flow construct may not occur inside an infix operand "
                f"or function argument: {self.text!r}"
            )
        return self.parse_disj()

    def parse_disj(self) -> Expr:
        node = self.parse_conj()
        while self.peek() == "or":
            self.take()
            node = BinOp("OR", node, self.parse_conj())
        return node

    def parse_conj(self) -> Expr:
        node = self.parse_cmp()
        while self.peek() == "and":
            self.take()
            node = BinOp("AND", node, self.parse_cmp())
        return node

    def parse_cmp(self) -> Expr:
        node = self.parse_add()
        op = self.at_op("=", "<>", "<", ">", "<=", ">=")
        if op:
            self.take()
            node = BinOp(op, node, self.parse_add())
        return node

    def parse_add(self) -> Expr:
        node = self.parse_mul()
        while True:
            op = self.at_op("+", "-")
            if not op:
                return node
            self.take()
            node = BinOp(op, node, self.parse_mul())

    def parse_mul(self) -> Expr:
        node = self.parse_unary()
        while True:
            if self.at_op("*"):
                self.take()
                node = BinOp("*", node, self.parse_unary())
            elif self.peek() == "div":
                self.take()
                node = BinOp("DIV", node, self.parse_unary())
            else:
                return node

    def parse_unary(self) -> Expr:
        if self.peek() == "not":
            self.take()
            return Not(self.parse_unary())
        if self.at_op("-"):
            self.take()
            return BinOp("-", Const(0), self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        kind, value = self.take()
        if kind == "number":
            return Const(int(value))
        if kind == "string":
            return Const(value[1:-1].replace("''", "'"))
        if kind == "true":
            return Const(True)
        if kind == "false":
            return Const(False)
        if kind == "op" and value == "(":
            node = self.parse_simple()
            self.expect_close()
            return node
        if kind == "ident":
            if self.at_op("("):
                self.take()
                args: List[Expr] = []
                if not self.at_op(")"):
                    args.append(self.parse_simple())
                    while self.at_op(","):
                        self.take()
                        args.append(self.parse_simple())
                self.expect_close()
                return Call(value, tuple(args))
            if self.at_op("."):
                self.take()
                attr = self.expect("ident")
                return AttrRef(value, attr)
            # Bare identifier: a limb attribute or an uninterpreted
            # constant — validation decides which.
            return AttrRef("", value)
        raise ParseError(f"unexpected {value or 'end of expression'!r} in {self.text!r}")

    def expect_close(self) -> None:
        if not self.at_op(")"):
            k, v = self.tokens[self.pos]
            raise ParseError(f"expected ')' but found {v!r} in {self.text!r}")
        self.take()


def parse_expression(text: str) -> Expr:
    """Parse ``text`` into a single (possibly multi-valued ``if``) expression."""
    p = _ExprParser(text)
    node = p.parse_expr()
    if p.peek() != "$end":
        k, v = p.tokens[p.pos]
        raise ParseError(f"trailing {v!r} after expression in {text!r}")
    return node


def parse_expression_list(text: str) -> List[Expr]:
    """Parse a comma-separated expression list (single-function RHS lists
    are only legal via multi-valued ``if``; this helper serves tests)."""
    p = _ExprParser(text)
    out = p.parse_exprlist()
    if p.peek() != "$end":
        k, v = p.tokens[p.pos]
        raise ParseError(f"trailing {v!r} after expression list in {text!r}")
    return out
