"""Symbols, attributes, productions, occurrences, semantic functions.

Terminology follows §I of the paper.  Positions within a production:
``LHS_POSITION`` (0) is the left-hand-side occurrence, 1…n are the
right-hand-side occurrences, and ``LIMB_POSITION`` (-1) is the
production's limb symbol (§IV: "LINGUIST-86 expects every production
that has non-trivial semantics to have a limb symbol").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ag.expr import AttrRef, Expr
from repro.errors import SemanticError, SourceLocation, NOWHERE

LHS_POSITION = 0
LIMB_POSITION = -1


class SymbolKind(enum.Enum):
    TERMINAL = "terminal"
    NONTERMINAL = "nonterminal"
    LIMB = "limb"


class AttrKind(enum.Enum):
    INHERITED = "inherited"
    SYNTHESIZED = "synthesized"
    #: Set by the parser before any evaluation pass (§IV).
    INTRINSIC = "intrinsic"
    #: Limb attribute: a name for a common subexpression, production-local.
    LOCAL = "local"


@dataclass(frozen=True)
class Attribute:
    """An attribute of a grammar symbol.  ``type_name`` is uninterpreted."""

    symbol: str
    name: str
    kind: AttrKind
    type_name: str = "unspecified"

    def __str__(self) -> str:
        return f"{self.symbol}.{self.name}"


@dataclass
class Symbol:
    """A grammar symbol and its attribute dictionary."""

    name: str
    kind: SymbolKind
    attributes: Dict[str, Attribute] = field(default_factory=dict)

    def add_attribute(self, name: str, kind: AttrKind, type_name: str = "unspecified") -> Attribute:
        if name in self.attributes:
            raise SemanticError(f"attribute {name!r} declared twice on symbol {self.name!r}")
        self._check_kind(name, kind)
        attr = Attribute(self.name, name, kind, type_name)
        self.attributes[name] = attr
        return attr

    def _check_kind(self, name: str, kind: AttrKind) -> None:
        if self.kind is SymbolKind.TERMINAL and kind is AttrKind.SYNTHESIZED:
            raise SemanticError(
                f"terminal {self.name!r} may not have synthesized attribute {name!r} "
                "(terminal leaves carry intrinsic attributes instead)"
            )
        if self.kind is SymbolKind.LIMB and kind is not AttrKind.LOCAL:
            raise SemanticError(
                f"limb {self.name!r} may only have local attributes, not {kind.value}"
            )
        if self.kind is not SymbolKind.LIMB and kind is AttrKind.LOCAL:
            raise SemanticError(
                f"{self.kind.value} {self.name!r} may not have a local attribute "
                f"{name!r}; local attributes belong to limb symbols"
            )

    def attrs_of_kind(self, kind: AttrKind) -> List[Attribute]:
        return [a for a in self.attributes.values() if a.kind is kind]

    @property
    def inherited(self) -> List[Attribute]:
        return self.attrs_of_kind(AttrKind.INHERITED)

    @property
    def synthesized(self) -> List[Attribute]:
        return self.attrs_of_kind(AttrKind.SYNTHESIZED)

    @property
    def intrinsic(self) -> List[Attribute]:
        return self.attrs_of_kind(AttrKind.INTRINSIC)


@dataclass(frozen=True)
class SymbolOccurrence:
    """One occurrence of a symbol in a production.

    ``position`` is 0 for the LHS, 1…n for RHS, -1 for the limb.
    ``name`` is the source spelling used to reference this occurrence
    (e.g. ``function$list1`` — bare symbol name when unambiguous).
    """

    symbol: str
    position: int
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AttributeOccurrence:
    """An attribute instance slot of a production: (position, attribute)."""

    production: int
    position: int
    attribute: Attribute

    @property
    def attr_name(self) -> str:
        return self.attribute.name

    @property
    def symbol(self) -> str:
        return self.attribute.symbol

    def __str__(self) -> str:
        where = {LHS_POSITION: "lhs", LIMB_POSITION: "limb"}.get(
            self.position, f"rhs{self.position}"
        )
        return f"{self.symbol}[{where}].{self.attr_name}"


@dataclass
class SemanticFunction:
    """One semantic function: targets ``=`` expression(s).

    ``targets`` are resolved attribute occurrences; ``expr`` produces
    ``len(targets)`` values (a multi-valued :class:`~repro.ag.expr.If`
    or, for a single shared value, any expression).  ``implicit`` marks
    copy-rules inserted by the validator (§IV).
    """

    targets: List[AttributeOccurrence]
    expr: Expr
    implicit: bool = False
    location: SourceLocation = NOWHERE
    #: Pass number assigned by the alternating-pass analysis (0 = unset).
    pass_number: int = 0

    def __str__(self) -> str:
        heads = ", ".join(str(t) for t in self.targets)
        mark = "  # implicit" if self.implicit else ""
        return f"{heads} = {self.expr}{mark}"


@dataclass
class Production:
    """A production with its limb and semantic functions."""

    index: int
    lhs: str
    rhs: Tuple[str, ...]
    limb: str = ""
    functions: List[SemanticFunction] = field(default_factory=list)
    location: SourceLocation = NOWHERE

    #: Occurrence objects, filled by the grammar on registration.
    occurrences: List[SymbolOccurrence] = field(default_factory=list)

    @property
    def tag(self) -> str:
        """Name used for the production-procedure (the limb name)."""
        return self.limb or f"P{self.index}"

    def occurrence_at(self, position: int) -> SymbolOccurrence:
        for occ in self.occurrences:
            if occ.position == position:
                return occ
        raise KeyError(f"production {self.index} has no occurrence at position {position}")

    def occurrence_named(self, name: str) -> Optional[SymbolOccurrence]:
        for occ in self.occurrences:
            if occ.name == name:
                return occ
        return None

    def rhs_positions(self) -> range:
        return range(1, len(self.rhs) + 1)

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else "ε"
        limb = f" -> {self.limb}" if self.limb else ""
        return f"{self.lhs} = {rhs}{limb}."


class AttributeGrammar:
    """The whole attribute grammar: the dictionary overlays 2–3 build."""

    def __init__(self, name: str, start: str):
        self.name = name
        self.start = start
        self.symbols: Dict[str, Symbol] = {}
        self.productions: List[Production] = []
        #: Declared order of external function names (informational).
        self.source_lines: int = 0

    # -- symbols ---------------------------------------------------------

    def add_symbol(self, name: str, kind: SymbolKind) -> Symbol:
        if name in self.symbols:
            raise SemanticError(f"grammar symbol {name!r} declared twice")
        sym = Symbol(name, kind)
        self.symbols[name] = sym
        return sym

    def symbol(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise SemanticError(f"unknown grammar symbol {name!r}") from None

    def symbols_of_kind(self, kind: SymbolKind) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.kind is kind]

    @property
    def terminals(self) -> List[Symbol]:
        return self.symbols_of_kind(SymbolKind.TERMINAL)

    @property
    def nonterminals(self) -> List[Symbol]:
        return self.symbols_of_kind(SymbolKind.NONTERMINAL)

    @property
    def limbs(self) -> List[Symbol]:
        return self.symbols_of_kind(SymbolKind.LIMB)

    # -- productions -----------------------------------------------------

    def add_production(
        self,
        lhs: str,
        rhs: Sequence[str],
        limb: str = "",
        location: SourceLocation = NOWHERE,
    ) -> Production:
        lhs_sym = self.symbol(lhs)
        if lhs_sym.kind is not SymbolKind.NONTERMINAL:
            raise SemanticError(
                f"left-hand side {lhs!r} of a production must be a nonterminal"
            )
        for r in rhs:
            rsym = self.symbol(r)
            if rsym.kind is SymbolKind.LIMB:
                raise SemanticError(
                    f"limb symbol {r!r} may not occur in a production right-hand side"
                )
        if limb:
            limb_sym = self.symbol(limb)
            if limb_sym.kind is not SymbolKind.LIMB:
                raise SemanticError(f"{limb!r} is not declared as a limb symbol")
            for q in self.productions:
                if q.limb == limb:
                    raise SemanticError(
                        f"limb {limb!r} used by two productions ({q.index} and "
                        f"{len(self.productions)}); limbs identify productions"
                    )
        prod = Production(
            index=len(self.productions),
            lhs=lhs,
            rhs=tuple(rhs),
            limb=limb,
            location=location,
        )
        prod.occurrences = self._make_occurrences(prod)
        self.productions.append(prod)
        return prod

    def _make_occurrences(self, prod: Production) -> List[SymbolOccurrence]:
        """Name occurrences by symbol, with numeric suffixes when a symbol
        occurs more than once (LHS counts: ``S0`` is the LHS of
        ``S0 ::= V S1``)."""
        all_syms = [prod.lhs] + list(prod.rhs)
        counts: Dict[str, int] = {}
        for s in all_syms:
            counts[s] = counts.get(s, 0) + 1
        seen: Dict[str, int] = {}
        occurrences: List[SymbolOccurrence] = []
        for position, s in enumerate(all_syms):  # position 0 == LHS
            if counts[s] > 1:
                suffix = seen.get(s, 0)
                seen[s] = suffix + 1
                name = f"{s}{suffix}"
            else:
                name = s
            occurrences.append(SymbolOccurrence(s, position, name))
        if prod.limb:
            occurrences.append(SymbolOccurrence(prod.limb, LIMB_POSITION, prod.limb))
        return occurrences

    # -- attribute occurrences -------------------------------------------

    def attribute_occurrences(self, prod: Production) -> List[AttributeOccurrence]:
        """Every attribute-occurrence of ``prod`` (the paper counts 1202
        of these for its own grammar)."""
        out: List[AttributeOccurrence] = []
        for occ in prod.occurrences:
            sym = self.symbol(occ.symbol)
            for attr in sym.attributes.values():
                out.append(AttributeOccurrence(prod.index, occ.position, attr))
        return out

    def occurrence(self, prod: Production, position: int, attr_name: str) -> AttributeOccurrence:
        if position == LIMB_POSITION:
            sym = self.symbol(prod.limb)
        elif position == LHS_POSITION:
            sym = self.symbol(prod.lhs)
        else:
            sym = self.symbol(prod.rhs[position - 1])
        attr = sym.attributes.get(attr_name)
        if attr is None:
            raise SemanticError(
                f"symbol {sym.name!r} has no attribute {attr_name!r} "
                f"(production {prod.index}: {prod})"
            )
        return AttributeOccurrence(prod.index, position, attr)

    # -- convenience -----------------------------------------------------

    def productions_of(self, lhs: str) -> List[Production]:
        return [p for p in self.productions if p.lhs == lhs]

    def all_attributes(self) -> List[Attribute]:
        out: List[Attribute] = []
        for sym in self.symbols.values():
            out.extend(sym.attributes.values())
        return out

    def attributes_named(self, name: str) -> List[Attribute]:
        return [a for a in self.all_attributes() if a.name == name]

    def underlying_cfg(self):
        """The underlying context-free grammar, for the LALR builder —
        "exactly the same input file" goes to both tools (§IV)."""
        from repro.lalr.grammar import Grammar

        return Grammar(
            self.start,
            [(p.lhs, list(p.rhs), p.tag) for p in self.productions],
            terminals=[t.name for t in self.terminals],
        )

    def __str__(self) -> str:
        lines = [f"attribute grammar {self.name} (start {self.start})"]
        for p in self.productions:
            lines.append(str(p))
            for f in p.functions:
                lines.append(f"    {f}")
        return "\n".join(lines)
