"""Programmatic construction API for attribute grammars.

The ``.ag`` file format (parsed by :mod:`repro.frontend`) is the
system's real input; :class:`GrammarBuilder` is the equivalent Python
API, used by tests and by grammars embedded in example scripts.
:meth:`GrammarBuilder.finish` runs the full validator — including
implicit copy-rule insertion — so a finished grammar is always
well-formed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ag.expr import Expr
from repro.ag.exprtext import parse_expression
from repro.ag.model import AttrKind, AttributeGrammar, Production, SymbolKind
from repro.ag.validate import RawFunction, parse_target_spec, validate_grammar
from repro.errors import DiagnosticSink, SemanticError, SourceLocation, NOWHERE

TargetSpec = Union[str, Sequence[str]]
ExprSpec = Union[str, Expr]


class GrammarBuilder:
    """Fluent builder producing a validated :class:`AttributeGrammar`."""

    def __init__(self, name: str, start: str):
        self.ag = AttributeGrammar(name, start)
        self._raw: Dict[int, List[RawFunction]] = {}
        self._finished = False

    # -- symbol declarations ----------------------------------------------

    def terminal(self, name: str, intrinsic: Optional[Dict[str, str]] = None) -> "GrammarBuilder":
        sym = self.ag.add_symbol(name, SymbolKind.TERMINAL)
        for attr, type_name in (intrinsic or {}).items():
            sym.add_attribute(attr, AttrKind.INTRINSIC, type_name)
        return self

    def nonterminal(
        self,
        name: str,
        inherited: Optional[Dict[str, str]] = None,
        synthesized: Optional[Dict[str, str]] = None,
        intrinsic: Optional[Dict[str, str]] = None,
    ) -> "GrammarBuilder":
        sym = self.ag.add_symbol(name, SymbolKind.NONTERMINAL)
        for attr, type_name in (inherited or {}).items():
            sym.add_attribute(attr, AttrKind.INHERITED, type_name)
        for attr, type_name in (synthesized or {}).items():
            sym.add_attribute(attr, AttrKind.SYNTHESIZED, type_name)
        for attr, type_name in (intrinsic or {}).items():
            sym.add_attribute(attr, AttrKind.INTRINSIC, type_name)
        return self

    def limb(self, name: str, local: Optional[Dict[str, str]] = None) -> "GrammarBuilder":
        sym = self.ag.add_symbol(name, SymbolKind.LIMB)
        for attr, type_name in (local or {}).items():
            sym.add_attribute(attr, AttrKind.LOCAL, type_name)
        return self

    # -- productions -------------------------------------------------------

    def production(
        self,
        lhs: str,
        rhs: Sequence[str],
        limb: str = "",
        functions: Sequence[Tuple[TargetSpec, ExprSpec]] = (),
        location: SourceLocation = NOWHERE,
    ) -> Production:
        """Add a production with its semantic functions.

        Each function is ``(targets, expression)`` where ``targets`` is
        one target spec or a list of them (``"occ.ATTR"``, or a bare
        limb-attribute name) and ``expression`` is expression source
        text or a pre-built :class:`~repro.ag.expr.Expr`.
        """
        prod = self.ag.add_production(lhs, rhs, limb, location)
        raw_list: List[RawFunction] = []
        for targets, expr in functions:
            if isinstance(targets, str):
                targets = [targets]
            parsed_targets = [parse_target_spec(t) for t in targets]
            node = parse_expression(expr) if isinstance(expr, str) else expr
            raw_list.append(RawFunction(parsed_targets, node, location))
        self._raw[prod.index] = raw_list
        return prod

    def add_function(
        self,
        prod: Production,
        targets: TargetSpec,
        expr: ExprSpec,
        location: SourceLocation = NOWHERE,
    ) -> "GrammarBuilder":
        """Attach one more semantic function to an existing production."""
        if isinstance(targets, str):
            targets = [targets]
        parsed_targets = [parse_target_spec(t) for t in targets]
        node = parse_expression(expr) if isinstance(expr, str) else expr
        self._raw.setdefault(prod.index, []).append(
            RawFunction(parsed_targets, node, location)
        )
        return self

    # -- finishing ----------------------------------------------------------

    def finish(self, sink: Optional[DiagnosticSink] = None) -> AttributeGrammar:
        """Validate (inserting implicit copy-rules) and return the grammar.

        Raises :class:`~repro.errors.SemanticError` on any static error;
        pass an explicit ``sink`` to collect warnings.
        """
        if self._finished:
            raise SemanticError("GrammarBuilder.finish() called twice")
        own_sink = sink if sink is not None else DiagnosticSink()
        validate_grammar(self.ag, self._raw, own_sink)
        own_sink.raise_if_errors(SemanticError)
        self._finished = True
        return self.ag
