"""External function library for ``linguist.ag`` (the self-description).

These are the helpers the self-generated evaluator links against —
the role the name-table and list-processing packages play in §V.
"""

from __future__ import annotations

import re
from typing import Any, Dict

from repro.util.lists import Sequence, SetList

_SUFFIX = re.compile(r"\d+$")


def strip_suffix(name: str) -> str:
    """Occurrence spelling -> symbol name (``function$list1`` -> ``function$list``)."""
    return _SUFFIX.sub("", name)


def _make_syms(names: Any, kind: str) -> SetList:
    out = SetList.empty()
    for name in names or ():
        out = out.add((name, kind))
    return out


def _has_symbol(syms: Any, spelling: str) -> bool:
    """Is ``spelling`` (suffixes stripped) a declared symbol?"""
    if syms is None:
        return False
    base = spelling if any(n == spelling for n, _ in syms) else strip_suffix(spelling)
    return any(n == base for n, _ in syms)


def _count_attrs(attrs_pf: Any, spelling: str) -> int:
    """Declared attribute count of the symbol an occurrence names."""
    from repro.util.lists import BOTTOM, PartialFunction

    if not isinstance(attrs_pf, PartialFunction):
        return 0
    n = attrs_pf.lookup(spelling)
    if n is BOTTOM:
        n = attrs_pf.lookup(strip_suffix(spelling))
    return 0 if n is BOTTOM else n


LINGUIST_FUNCTIONS: Dict[str, Any] = {
    "CountAttrs": _count_attrs,
    "MakeSyms": _make_syms,
    "HasSymbol": _has_symbol,
    "StripSuffix": strip_suffix,
    "Spec3": lambda a, b, c: (a, b, c),
    "Report3": lambda a, b, c: (a, b, c),
}
