"""External function library for ``pascal.ag``.

LINGUIST-86 leaves every non-grammar identifier uninterpreted (§IV);
these are the definitions the generated Pascal-subset front end links
against, analogous to the hand-written support packages of §V.
Type names (``int$t`` …) stay uninterpreted constants — their value is
their own spelling.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.util.lists import BOTTOM, CatSeq, PartialFunction, Sequence, SetList

INT_T = "int$t"
BOOL_T = "bool$t"
ERR_T = "err$t"


def _seq(*items: Any) -> Sequence:
    return Sequence.from_iterable(items)


def _as_seq(x: Any) -> Any:
    if isinstance(x, (Sequence, CatSeq)):
        return x
    return Sequence.from_iterable(x or ())


def _is_bottom(x: Any) -> bool:
    return x is BOTTOM


def _bad_operand(t: Any, expected: str) -> bool:
    """An operand is *bad* when it is neither the expected type nor the
    error type (errors propagate silently to avoid message cascades)."""
    return t not in (expected, ERR_T)


def _bad_arith(a: Any, b: Any) -> bool:
    return _bad_operand(a, INT_T) or _bad_operand(b, INT_T)


def _arith_type(a: Any, b: Any) -> str:
    return INT_T if (a == INT_T and b == INT_T) else ERR_T


def _bad_bool(a: Any, b: Any) -> bool:
    return _bad_operand(a, BOOL_T) or _bad_operand(b, BOOL_T)


def _bool_type(a: Any, b: Any) -> str:
    return BOOL_T if (a == BOOL_T and b == BOOL_T) else ERR_T


def _bad_cmp(a: Any, b: Any) -> bool:
    """Comparison operands must agree (errors tolerated)."""
    return a != b and ERR_T not in (a, b)


def _cmp_type(a: Any, b: Any) -> str:
    return BOOL_T if (a == b and a != ERR_T) else ERR_T


def _types_differ(a: Any, b: Any) -> bool:
    return a != b and ERR_T not in (a, b) and not _is_bottom(a)


def _join_pf(a: PartialFunction, b: PartialFunction) -> PartialFunction:
    out = a if isinstance(a, PartialFunction) else PartialFunction.empty()
    if isinstance(b, PartialFunction):
        for k, v in b.items():
            out = out.bind(k, v)
    return out


def _make_defs(names: Sequence, type_name: str) -> PartialFunction:
    pf = PartialFunction.empty()
    for name in _as_seq(names):
        pf = pf.bind(name, type_name)
    return pf


def _dup_msgs(new_defs: PartialFunction, old_defs: PartialFunction, line: int) -> Sequence:
    msgs = Sequence.empty()
    for name, _ in new_defs.items():
        if old_defs.is_bound(name):
            msgs = msgs.cons((line, "variable declared twice", name))
    return msgs.reverse()


def _gen(op: str) -> Sequence:
    return _seq(op)


def _gen1(op: str, arg: Any) -> Sequence:
    return _seq(f"{op} {arg}")


def _gen_label(n: int) -> Sequence:
    return _seq(f"L{n}:")


def _gen_jump(op: str, n: int) -> Sequence:
    return _seq(f"{op} L{n}")


def _cat(*parts: Any) -> Sequence:
    out = Sequence.empty()
    for part in reversed(parts):
        out = _as_seq(part).append(out)
    return out


PASCAL_FUNCTIONS: Dict[str, Any] = {
    "IsBottom": _is_bottom,
    "BadArith": _bad_arith,
    "ArithType": _arith_type,
    "BadBool": _bad_bool,
    "BoolType": _bool_type,
    "BadCmp": _bad_cmp,
    "CmpType": _cmp_type,
    "TypesDiffer": _types_differ,
    "JoinPF": _join_pf,
    "MakeDefs": _make_defs,
    "DupMsgs": _dup_msgs,
    "Gen": _gen,
    "Gen1": _gen1,
    "GenLabel": _gen_label,
    "GenJump": _gen_jump,
    "cat2": lambda a, b: _cat(a, b),
    "cat3": lambda a, b, c: _cat(a, b, c),
    "cat4": lambda a, b, c, d: _cat(a, b, c, d),
    "cat5": lambda a, b, c, d, e: _cat(a, b, c, d, e),
    "cat6": lambda a, b, c, d, e, f: _cat(a, b, c, d, e, f),
    "cat7": lambda a, b, c, d, e, f, g: _cat(a, b, c, d, e, f, g),
}

PASCAL_CONSTANTS: Dict[str, Any] = {
    "int$t": INT_T,
    "bool$t": BOOL_T,
    "err$t": ERR_T,
}
