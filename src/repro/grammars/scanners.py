"""Scanner specs for the described languages of the shipped grammars.

§V: the scanner generator is a separate program fed "a set of regular
expressions"; these are those inputs, one per shipped grammar.
"""

from __future__ import annotations

from repro.regex.generator import ScannerSpec


def binary_scanner_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("ZERO", "0")
    spec.rule("ONE", "1")
    spec.rule("RADIX", r"\.")
    return spec


def calc_scanner_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("COMMENT", r"#[^\n]*", skip=True)
    spec.rule("ID", r"[a-zA-Z][a-zA-Z0-9_]*", intern=True)
    spec.rule("NUM", r"\d+")
    spec.rule("ASSIGN", "=")
    spec.rule("PLUS", r"\+")
    spec.rule("MINUS", r"\-")
    spec.rule("STAR", r"\*")
    spec.rule("LPAR", r"\(")
    spec.rule("RPAR", r"\)")
    spec.rule("SEMI", ";")
    spec.keyword_kinds = {"ID"}
    spec.keywords["let"] = "LET"
    spec.keywords["print"] = "PRINT"
    return spec


def pascal_scanner_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("COMMENT", r"\{[^}]*}", skip=True)
    spec.rule("ID", r"[a-zA-Z][a-zA-Z0-9_]*", intern=True)
    spec.rule("NUM", r"\d+")
    spec.rule("ASSIGN", ":=")
    spec.rule("NE", "<>")
    spec.rule("LE", "<=")
    spec.rule("GE", ">=")
    spec.rule("LT", "<")
    spec.rule("GT", ">")
    spec.rule("EQ", "=")
    spec.rule("PLUS", r"\+")
    spec.rule("MINUS", r"\-")
    spec.rule("STAR", r"\*")
    spec.rule("LPAR", r"\(")
    spec.rule("RPAR", r"\)")
    spec.rule("SEMI", ";")
    spec.rule("COLON", ":")
    spec.rule("COMMA", ",")
    spec.rule("PERIOD", r"\.")
    spec.keyword_kinds = {"ID"}
    for kw in (
        "program", "var", "integer", "boolean", "begin", "end", "if",
        "then", "else", "while", "do", "repeat", "until", "for", "to",
        "writeln", "true", "false", "and", "or", "not", "div",
    ):
        spec.keywords[kw] = kw.upper()
    return spec


def asm_scanner_spec() -> ScannerSpec:
    spec = ScannerSpec()
    spec.rule("WS", r"[ \t\r\n]+", skip=True)
    spec.rule("COMMENT", r";[^\n]*", skip=True)
    spec.rule("LABEL", r"[a-z][a-z0-9]*:", intern=True)
    spec.rule("ID", r"[a-z][a-z0-9]*", intern=True)
    spec.rule("NUM", r"\d+")
    spec.keyword_kinds = {"ID"}
    spec.keywords.update({"add": "ADD", "jmp": "JMP", "halt": "HALT"})
    return spec
