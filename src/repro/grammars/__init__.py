"""Shipped attribute grammars (``.ag`` sources) and their libraries.

* ``binary.ag`` — Knuth's binary-number grammar (the field's canonical
  first example; two alternating passes).
* ``calc.ag`` — a desk-calculator language with let-bindings (an
  environment threads left to right, so the R-to-L first pass forces a
  second pass).
* ``pascal.ag`` — the Pascal-subset front end (type checking, scope
  analysis, stack-code synthesis): the paper's second workload.
* ``asm.ag`` — an assembler with forward label references (three
  alternating passes; also built programmatically in
  ``examples/assembler.py``).
* ``linguist.ag`` — the self-description: the LINGUIST input language
  as an attribute grammar computing its own dictionary (§Intro:
  "LINGUIST-86 is itself written as an 1800 line attribute grammar and
  is self-generating").
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.evalgen.runtime import FunctionLibrary

_HERE = os.path.dirname(__file__)

GRAMMAR_NAMES = ["binary", "calc", "pascal", "asm", "linguist"]


def source_path(name: str) -> str:
    path = os.path.join(_HERE, f"{name}.ag")
    if not os.path.exists(path):
        raise KeyError(f"no shipped grammar {name!r}; have {GRAMMAR_NAMES}")
    return path


def load_source(name: str) -> str:
    """The ``.ag`` source text of a shipped grammar."""
    with open(source_path(name), "r", encoding="utf-8") as f:
        return f.read()


def scanner_and_library(name: str):
    """Scanner spec + function library of a shipped grammar, or (None, None).

    The described language's scanner only exists for the shipped
    grammars; ``trace``/``profile``/``batch`` resolve it by grammar
    name (file stem or ``--grammar``).
    """
    from repro.grammars import scanners

    if name == "linguist":
        from repro.frontend.lexer import LEXICAL_SPEC

        return LEXICAL_SPEC, library_for(name)
    factory = {
        "binary": scanners.binary_scanner_spec,
        "calc": scanners.calc_scanner_spec,
        "pascal": scanners.pascal_scanner_spec,
        "asm": scanners.asm_scanner_spec,
    }.get(name)
    if factory is None:
        return None, None
    return factory(), library_for(name)


def library_for(name: str) -> FunctionLibrary:
    """The function library a shipped grammar's evaluators need."""
    if name == "pascal":
        from repro.grammars.pascal_lib import PASCAL_FUNCTIONS, PASCAL_CONSTANTS

        return FunctionLibrary(PASCAL_FUNCTIONS, PASCAL_CONSTANTS)
    if name == "linguist":
        from repro.grammars.linguist_lib import LINGUIST_FUNCTIONS

        return FunctionLibrary(LINGUIST_FUNCTIONS)
    return FunctionLibrary()
