"""Diagnostics and the exception hierarchy shared by every repro subsystem.

LINGUIST-86 reports errors against source coordinates of the input
attribute grammar (and its generated evaluators carry error *messages*
around the APT as attribute values).  This module supplies the small
amount of shared machinery: a source location, a severity-tagged
diagnostic record, a collector, and one exception class per pipeline
stage so callers can distinguish scan errors from, say, a failure of the
alternating-pass evaluability test.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class Severity(enum.Enum):
    """Severity of a diagnostic, in increasing order of badness."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    def __lt__(self, other: object):
        if not isinstance(other, Severity):
            return NotImplemented
        order = [Severity.NOTE, Severity.WARNING, Severity.ERROR]
        return order.index(self) < order.index(other)


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in an input text: 1-based line and column."""

    line: int = 0
    column: int = 0
    filename: str = "<input>"

    def __str__(self) -> str:
        if self.line == 0:
            return self.filename
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for diagnostics not tied to any source position.
NOWHERE = SourceLocation()


@dataclass(frozen=True)
class Diagnostic:
    """One message produced by some stage of the pipeline."""

    severity: Severity
    message: str
    location: SourceLocation = NOWHERE

    def __str__(self) -> str:
        return f"{self.location}: {self.severity.value}: {self.message}"


class DiagnosticSink:
    """Accumulates diagnostics; the pass-structured driver shares one sink.

    Mirrors LINGUIST-86's intermediate "message file": overlays append
    messages and the listing overlay renders them merged with the source.
    """

    def __init__(self) -> None:
        self._items: List[Diagnostic] = []

    def emit(
        self,
        severity: Severity,
        message: str,
        location: SourceLocation = NOWHERE,
    ) -> Diagnostic:
        diag = Diagnostic(severity, message, location)
        self._items.append(diag)
        return diag

    def note(self, message: str, location: SourceLocation = NOWHERE) -> Diagnostic:
        return self.emit(Severity.NOTE, message, location)

    def warning(self, message: str, location: SourceLocation = NOWHERE) -> Diagnostic:
        return self.emit(Severity.WARNING, message, location)

    def error(self, message: str, location: SourceLocation = NOWHERE) -> Diagnostic:
        return self.emit(Severity.ERROR, message, location)

    @property
    def error_count(self) -> int:
        return sum(1 for d in self._items if d.severity is Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def sorted_by_location(self) -> List[Diagnostic]:
        return sorted(self._items, key=lambda d: d.location)

    def raise_if_errors(self, exc_type: Optional[type] = None) -> None:
        """Raise ``exc_type`` (default :class:`SemanticError`) summarizing errors."""
        if not self.has_errors:
            return
        exc = exc_type or SemanticError
        errors = [d for d in self._items if d.severity is Severity.ERROR]
        raise exc(
            f"{len(errors)} error(s):\n" + "\n".join(str(d) for d in errors),
            diagnostics=errors,
        )


class ReproError(Exception):
    """Base class for every error raised by the repro package."""

    def __init__(self, message: str, diagnostics: Optional[List[Diagnostic]] = None):
        super().__init__(message)
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])


class ScanError(ReproError):
    """Lexical error in some input text."""


class ParseError(ReproError):
    """Syntax error in some input text."""


class GrammarError(ReproError):
    """Structural error in a context-free grammar (for the LALR builder)."""


class ConflictError(GrammarError):
    """The grammar is not LALR(1): the table builder found conflicts."""


class SemanticError(ReproError):
    """The attribute grammar violates a static rule (well-formedness)."""


class CircularityError(SemanticError):
    """The attribute grammar fails the non-circularity test."""


class PassError(ReproError):
    """The attribute grammar is not evaluable in alternating passes."""


class EvaluationError(ReproError):
    """A generated or interpreted evaluator failed at APT-evaluation time."""


class SpoolCorruptionError(EvaluationError):
    """An APT spool file failed an integrity check.

    Carries the precise failure locus so a corrupt record can be
    reported against its position in the linearized tree (the
    *systematic debugging* requirement) instead of surfacing as a blind
    crash: ``record_index`` is the 0-based index of the record whose
    framing or checksum failed (in *forward*, i.e. file, order;
    ``None`` when the damage precedes any record, e.g. a bad header),
    ``byte_offset`` is the file offset where the inconsistency was
    detected, and ``reason`` is a short machine-readable tag
    (``"checksum"``, ``"truncated"``, ``"framing"``, ``"header"``,
    ``"footer"``, ``"nametable"``).

    Block-framed (format v3) spools carry a second, block-relative
    locus: ``block_index`` is the 0-based index of the damaged block
    and ``block_byte_offset`` the offset of the failure *inside* that
    block's payload (``None`` when the damage is the block frame
    itself).  v1/v2 errors leave both ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        byte_offset: Optional[int] = None,
        path: Optional[str] = None,
        reason: str = "corrupt",
        block_index: Optional[int] = None,
        block_byte_offset: Optional[int] = None,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.record_index = record_index
        self.byte_offset = byte_offset
        self.path = path
        self.reason = reason
        self.block_index = block_index
        self.block_byte_offset = block_byte_offset

    def locus(self) -> str:
        """Human-readable ``record N @ byte M`` locator; block-framed
        spools append ``(block B + O)`` — the block-relative locus."""
        rec = "?" if self.record_index is None else str(self.record_index)
        off = "?" if self.byte_offset is None else str(self.byte_offset)
        base = f"record {rec} @ byte {off}"
        if self.block_index is not None:
            if self.block_byte_offset is None:
                base += f" (block {self.block_index})"
            else:
                base += (
                    f" (block {self.block_index}"
                    f" + {self.block_byte_offset})"
                )
        return base


class ResumeError(EvaluationError):
    """A checkpoint manifest could not be used to resume an evaluation
    (missing/garbled manifest, grammar or plan mismatch, or a
    checkpointed spool that fails verification)."""


class CacheCorruptionError(ReproError):
    """A build-cache entry failed an integrity check.

    The persistent grammar-artifact cache (:mod:`repro.buildcache`)
    seals every entry with the same header + CRC discipline as the v2
    spool format; any damage — bad magic, version skew, key mismatch,
    checksum failure, truncation, or an unpicklable payload — raises
    this error *internally* and is translated by
    :meth:`repro.buildcache.BuildCache.load` into a transparent miss
    (the damaged file is removed and the artifacts are rebuilt), never
    a crash.  ``reason`` is a short machine-readable tag (``"header"``,
    ``"footer"``, ``"checksum"``, ``"truncated"``, ``"key"``,
    ``"payload"``, ``"version"``).
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        reason: str = "corrupt",
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.path = path
        self.reason = reason


class PlaneError(ReproError):
    """A shared-memory artifact plane could not be created or attached.

    The plane (:mod:`repro.buildcache.shm`) is the zero-copy channel
    that ships a built translator's read-only artifacts to worker
    processes.  This error covers *operational* failures — the segment
    does not exist (already unlinked, or the exporter died), the
    platform lacks POSIX shared memory, or a payload cannot be
    serialized.  Callers treat it as "plane unavailable" and fall back
    to the build cache, never a crash.
    """

    def __init__(
        self,
        message: str,
        *,
        segment: Optional[str] = None,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.segment = segment


class PlaneCorruptionError(PlaneError):
    """A shared-memory artifact plane failed an integrity check.

    Plane segments are sealed with the same header + per-frame CRC +
    footer discipline as build-cache entries (``L86SEAL``); any damage
    — bad magic, version skew, checksum failure, truncation, frame
    overrun, or an undecodable payload — raises this error so an
    attaching worker *never* hydrates a wrong artifact.  ``reason`` is
    a short machine-readable tag (``"header"``, ``"footer"``,
    ``"checksum"``, ``"truncated"``, ``"framing"``, ``"version"``,
    ``"payload"``).
    """

    def __init__(
        self,
        message: str,
        *,
        segment: Optional[str] = None,
        reason: str = "corrupt",
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, segment=segment, diagnostics=diagnostics)
        self.reason = reason


class ProvenanceError(ReproError):
    """The attribute-provenance subsystem could not record or answer a
    query (missing log, malformed node path, unknown attribute)."""


class ProvenanceCorruptionError(ProvenanceError):
    """A sealed provenance log failed an integrity check.

    Provenance logs are line-framed NDJSON where every record carries
    its own CRC32 and the seal line covers the whole stream; any damage
    is reported against the exact record so ``repro debug`` degrades
    into a diagnosis instead of a crash.  ``record_index`` is the
    0-based line index of the damaged record (``None`` when the file as
    a whole is unusable), and ``reason`` is a short machine-readable
    tag (``"framing"``, ``"checksum"``, ``"header"``, ``"seal"``,
    ``"truncated"``).
    """

    def __init__(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        path: Optional[str] = None,
        reason: str = "corrupt",
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.record_index = record_index
        self.path = path
        self.reason = reason

    def locus(self) -> str:
        """Human-readable ``record N`` locator (matches the spool
        corruption convention so fsck output renders uniformly)."""
        rec = "?" if self.record_index is None else str(self.record_index)
        return f"record {rec}"


class MemoCorruptionError(ReproError):
    """A sealed incremental-translation memo failed an integrity check.

    MEMO1 manifests are line-framed NDJSON where every record carries
    its own CRC32 and the seal line covers the whole stream.  Damage is
    reported against the exact entry, but a corrupt memo is *never*
    fatal to a translation: the loader degrades it to a silent cold
    miss (``incremental.invalidations``) and ``repro fsck``/``doctor``
    surface this error instead.  ``record_index`` is the 0-based line
    index of the damaged record (``None`` when the file as a whole is
    unusable), and ``reason`` is a short machine-readable tag
    (``"framing"``, ``"checksum"``, ``"header"``, ``"seal"``,
    ``"truncated"``, ``"identity"``, ``"stale"``, ``"spool"``,
    ``"range"``, ``"missing"``).
    """

    def __init__(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        path: Optional[str] = None,
        reason: str = "corrupt",
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.record_index = record_index
        self.path = path
        self.reason = reason

    def locus(self) -> str:
        """Human-readable ``record N`` locator (matches the spool
        corruption convention so fsck output renders uniformly)."""
        rec = "?" if self.record_index is None else str(self.record_index)
        return f"record {rec}"


class ServeError(ReproError):
    """Base class for translation-service (``repro serve``) failures."""


class ServerOverloaded(ServeError):
    """Admission control rejected a request: the grammar's bounded queue
    is full.

    The daemon never buffers without bound — a full queue is reported
    to the client immediately with ``retry_after`` (seconds), the
    admission controller's estimate of when capacity frees up (surfaced
    as an HTTP ``Retry-After`` header).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.retry_after = retry_after


class TranslationTimeout(ServeError):
    """A translation exceeded its deadline.

    Raised by ``repro serve`` when a request outlives its per-request
    deadline and by ``repro batch --timeout`` when one input stalls the
    pool; in both cases the worker running the input is killed and
    restarted, so one hung input never wedges the service.  ``seconds``
    is the budget that was exhausted.
    """

    def __init__(
        self,
        message: str,
        *,
        seconds: Optional[float] = None,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.seconds = seconds


class WorkerCrashed(ServeError):
    """A supervised worker process died while holding a request
    (crash, OOM-kill, or SIGKILL).  ``exitcode`` is the process's exit
    status (negative = killed by that signal number, ``None`` = the
    worker stopped responding but the process object outlived it)."""

    def __init__(
        self,
        message: str,
        *,
        exitcode: Optional[int] = None,
        worker_id: Optional[int] = None,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.exitcode = exitcode
        self.worker_id = worker_id


class GrammarUnavailable(ServeError):
    """The grammar's circuit breaker is open: recent requests failed at
    the infrastructure level (worker crashes, timeouts) persistently
    enough that the service degrades this grammar to *unavailable*
    instead of letting it poison the worker pool.  ``retry_after`` is
    the time until the breaker probes again (half-open)."""

    def __init__(
        self,
        message: str,
        *,
        grammar: Optional[str] = None,
        retry_after: float = 1.0,
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.grammar = grammar
        self.retry_after = retry_after


class JournalCorruptionError(ServeError):
    """A request journal failed an integrity check.

    The serve daemon's journal is line-framed NDJSON where every record
    carries its own CRC32 (the PROV1 discipline); damage is reported
    against the exact record so ``repro fsck`` can name the valid
    prefix.  ``record_index`` is the 0-based line index of the damaged
    record (``None`` when the file as a whole is unusable) and
    ``reason`` is a short machine-readable tag (``"framing"``,
    ``"checksum"``, ``"header"``, ``"seal"``, ``"truncated"``).
    """

    def __init__(
        self,
        message: str,
        *,
        record_index: Optional[int] = None,
        path: Optional[str] = None,
        reason: str = "corrupt",
        diagnostics: Optional[List[Diagnostic]] = None,
    ):
        super().__init__(message, diagnostics=diagnostics)
        self.record_index = record_index
        self.path = path
        self.reason = reason

    def locus(self) -> str:
        """Human-readable ``record N`` locator (matches the spool and
        provenance corruption conventions for uniform fsck output)."""
        rec = "?" if self.record_index is None else str(self.record_index)
        return f"record {rec}"


class GovernanceError(ReproError):
    """Base of resource-governance failures (``repro.governance``)."""


class DiskBudgetExceeded(GovernanceError):
    """A run's disk budget would be overspent by the attempted charge.

    Raised *before* the bytes hit the disk — the budget is admission
    control for storage, not a post-hoc audit.  Carries the budget, the
    bytes already charged, and the charge that pushed it over.
    """

    def __init__(self, budget: int, charged: int, attempted: int,
                 label: str = ""):
        self.budget = budget
        self.charged = charged
        self.attempted = attempted
        self.label = label
        what = f" for {label}" if label else ""
        super().__init__(
            f"disk budget exceeded{what}: {charged} bytes charged "
            f"+ {attempted} attempted > budget {budget}"
        )


class GenerationError(ReproError):
    """Evaluator code generation failed."""


class TelemetryError(ReproError):
    """The telemetry subsystem detected an inconsistency (e.g. a metric
    registered under two kinds, or an unbalanced memory-gauge ledger)."""
