"""APT node records.

Each node carries the fields that correspond to the attributes of its
labelling grammar symbol (§I).  Interior nodes also record the index of
their LHS production — the paper's limb mechanism "synchronizes the
identification of productions with the parser", and our node records
carry the same information explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def estimate_bytes(value: Any) -> int:
    """Rough byte footprint of an attribute value, 8086-record style.

    Scalars cost one machine word; strings their text; recursive list
    structures a word per cell plus their elements.  Used for the
    memory-gauge and file-size accounting that reproduces the paper's
    48K-budget and APT-size claims.
    """
    if value is None or isinstance(value, bool):
        return 2
    if isinstance(value, int):
        return 2
    if isinstance(value, float):
        return 4
    if isinstance(value, str):
        return max(2, len(value))
    if isinstance(value, tuple):
        return 2 + sum(estimate_bytes(v) for v in value)
    # Cons lists, sets, partial functions, and other iterables.
    try:
        return 2 + sum(2 + estimate_bytes(v) for v in value)
    except TypeError:
        return 8


@dataclass
class APTNode:
    """One node of the attributed parse tree.

    ``production`` is the index of the LHS production (the production
    that derives this node); ``None`` for terminal leaves and limb
    nodes.  ``attrs`` maps attribute name to value; absent keys are
    not-yet-evaluated attribute instances.
    """

    symbol: str
    production: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    is_limb: bool = False

    def byte_size(self) -> int:
        """Approximate record size: header word, symbol tag, attributes."""
        total = 4 + max(2, len(self.symbol) // 2)
        for name, value in self.attrs.items():
            total += 2 + estimate_bytes(value)
        return total

    def copy(self) -> "APTNode":
        return APTNode(self.symbol, self.production, dict(self.attrs), self.is_limb)

    def __str__(self) -> str:
        kind = "limb " if self.is_limb else ""
        prod = f" p{self.production}" if self.production is not None else ""
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"<{kind}{self.symbol}{prod} {{{attrs}}}>"
